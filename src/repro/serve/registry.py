"""The model registry: versioned, checksummed predictor artifacts.

Training an architecture-centric predictor is the expensive half of the
paper's workflow (N programs x T simulations, N network trainings, R
responses); serving it should not require re-running any of that.  The
registry is the hand-off point: :meth:`ModelRegistry.publish` freezes a
fitted :class:`~repro.core.predictor.ArchitectureCentricPredictor` into
an immutable, versioned directory entry, and
:meth:`ModelRegistry.load` rebuilds a bit-identical predictor from it —
which the inference server (:mod:`repro.serve.server`) then answers
requests from.

On-disk layout, one directory per model name, one per version::

    <root>/
        <name>/
            v0001/
                artifact.npz     # the predictor (pool + fitted combiner)
                record.json      # provenance: checksum, metric, run info
            v0002/
                ...

Entries are immutable once published: a retrained model becomes the
next version, never an overwrite.  Publishing is atomic — the artifact
and record are staged in a scratch directory and renamed into place —
so a crash mid-publish leaves no half-written version, and concurrent
publishers on one filesystem cannot both claim the same number.

Integrity is layered: ``artifact.npz`` carries the shared archive
checksum (:mod:`repro.runtime.artifact`) over its arrays, and
``record.json`` additionally pins the SHA-256 of the artifact *file*,
so a swapped or re-saved artifact is caught even when the replacement
is internally self-consistent.  Records link back to the run that
produced them (seed, git sha, config checksum) in the same shape the
run manifests (:mod:`repro.obs.manifest`) use, closing the provenance
chain from simulation campaign to served prediction.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.persistence import load_predictor, save_predictor
from repro.core.predictor import ArchitectureCentricPredictor
from repro.obs import get_logger, get_registry, git_sha, span
from repro.runtime.integrity import file_checksum

__all__ = ["ModelRecord", "ModelRegistry", "RECORD_SCHEMA"]

#: record.json schema version, bumped on breaking layout changes.
RECORD_SCHEMA = 1

#: Model names become directory names; keep them boring and portable.
_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

_VERSION_PATTERN = re.compile(r"^v(\d{4,})$")

_ARTIFACT = "artifact.npz"
_RECORD = "record.json"

_log = get_logger("serve.registry")


@dataclass(frozen=True)
class ModelRecord:
    """Provenance for one published model version.

    Attributes:
        name: Registry model name (directory-safe slug).
        version: 1-based version number within the name.
        metric: The target metric the predictor serves.
        programs: Offline training programs in the pool.
        response_count: R, the responses the combiner was fitted on.
        training_error: The fit's rmae (%) — the confidence signal.
        artifact_checksum: SHA-256 of the artifact file's raw bytes.
        created: Publication time, epoch seconds.
        run: Provenance of the producing run — ``run_id``, ``git_sha``,
            ``seed``, ``config_checksum`` — mirroring the run-manifest
            fields so a served prediction traces back to a campaign.
        notes: Free-form operator annotation.
        schema: Record schema version.
    """

    name: str
    version: int
    metric: str
    programs: Tuple[str, ...]
    response_count: int
    training_error: float
    artifact_checksum: str
    created: float
    run: Dict[str, Optional[Union[str, int]]] = field(default_factory=dict)
    notes: str = ""
    schema: int = RECORD_SCHEMA

    def to_json(self) -> Dict:
        """A JSON-ready dict (tuples become lists)."""
        payload = asdict(self)
        payload["programs"] = list(self.programs)
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "ModelRecord":
        schema = int(payload.get("schema", -1))
        if schema != RECORD_SCHEMA:
            raise ValueError(
                f"unsupported registry record schema {schema} "
                f"(this code reads schema {RECORD_SCHEMA})"
            )
        return cls(
            name=str(payload["name"]),
            version=int(payload["version"]),
            metric=str(payload["metric"]),
            programs=tuple(str(p) for p in payload["programs"]),
            response_count=int(payload["response_count"]),
            training_error=float(payload["training_error"]),
            artifact_checksum=str(payload["artifact_checksum"]),
            created=float(payload["created"]),
            run=dict(payload.get("run", {})),
            notes=str(payload.get("notes", "")),
            schema=schema,
        )


class ModelRegistry:
    """A directory of versioned, immutable predictor artifacts.

    Args:
        root: Registry root directory; created on first publish.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        predictor: ArchitectureCentricPredictor,
        name: str,
        seed: Optional[int] = None,
        config_checksum: Optional[str] = None,
        run_id: Optional[str] = None,
        notes: str = "",
    ) -> ModelRecord:
        """Freeze a fitted predictor as the next version of ``name``.

        Args:
            predictor: A fitted architecture-centric predictor.
            name: Model name (lowercase slug: letters, digits, ``._-``).
            seed: The producing run's base seed, for provenance.
            config_checksum: Checksum of the producing run's inputs
                (campaigns use their sampled-configuration digest).
            run_id: Identifier linking to the producing run's manifest;
                a fresh UUID4 hex when omitted.
            notes: Free-form annotation stored in the record.

        Returns:
            The published :class:`ModelRecord`.

        Raises:
            ValueError: on an unusable model name.
            RuntimeError: if the predictor is not fitted.
        """
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"unusable model name {name!r}: use a lowercase slug "
                "(letters, digits, '.', '_', '-')"
            )
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        with span("serve.registry.publish", model=name):
            staging = model_dir / f".staging-{uuid.uuid4().hex}"
            staging.mkdir()
            try:
                artifact = save_predictor(predictor, staging / _ARTIFACT)
                digest = file_checksum(artifact)
                # Claim the next free version by rename, which either
                # succeeds atomically or fails because a concurrent
                # publisher got there first — then try the next number.
                while True:
                    version = self._next_version(name)
                    record = ModelRecord(
                        name=name,
                        version=version,
                        metric=predictor.metric.value,
                        programs=tuple(
                            m.program for m in predictor.program_models
                        ),
                        response_count=predictor.response_count_,
                        training_error=float(predictor.training_error_),
                        artifact_checksum=digest,
                        created=time.time(),
                        run={
                            "run_id": (
                                run_id if run_id is not None
                                else uuid.uuid4().hex
                            ),
                            "git_sha": git_sha(),
                            "seed": seed,
                            "config_checksum": config_checksum,
                        },
                        notes=notes,
                    )
                    record_path = staging / _RECORD
                    record_path.write_text(
                        json.dumps(record.to_json(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8",
                    )
                    try:
                        os.rename(staging, self._version_dir(name, version))
                    except OSError:
                        if not self._version_dir(name, version).exists():
                            raise
                        continue  # lost the race; re-stamp and retry
                    break
            except BaseException:
                _cleanup_staging(staging)
                raise
        get_registry().counter("registry.publishes").inc()
        _log.info(
            "published %s v%d (metric=%s, %d programs, rmae %.1f%%)",
            name, record.version, record.metric, len(record.programs),
            record.training_error,
        )
        return record

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def models(self) -> List[str]:
        """Published model names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and _NAME_PATTERN.match(entry.name)
            and self.versions(entry.name)
        )

    def versions(self, name: str) -> List[int]:
        """Published version numbers of ``name``, ascending."""
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            match = _VERSION_PATTERN.match(entry.name)
            if match and entry.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self, name: str) -> int:
        """The newest published version of ``name``.

        Raises:
            KeyError: if the model has no published versions.
        """
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"no published versions of model {name!r}")
        return versions[-1]

    def record(self, name: str, version: Optional[int] = None) -> ModelRecord:
        """The provenance record of ``name`` at ``version`` (or latest).

        Raises:
            KeyError: on an unknown model or version.
            ValueError: on a corrupt record file.
        """
        version = self.latest(name) if version is None else int(version)
        record_path = self._version_dir(name, version) / _RECORD
        if not record_path.is_file():
            raise KeyError(f"model {name!r} has no version {version}")
        try:
            payload = json.loads(record_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as error:
            raise ValueError(
                f"corrupt registry record {record_path}: {error}"
            ) from error
        return ModelRecord.from_json(payload)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(
        self,
        name: str,
        version: Optional[int] = None,
        space=None,
    ) -> Tuple[ArchitectureCentricPredictor, ModelRecord]:
        """Rebuild the predictor published as ``name`` at ``version``.

        The artifact file's digest is checked against the record before
        the archive's own content checksum is verified, so a swapped
        artifact fails even if the replacement is internally valid.

        Args:
            name: Registry model name.
            version: Version to load; the latest when omitted.
            space: Design space override for configuration encoding.

        Returns:
            ``(predictor, record)`` — the predictor is fitted and
            ready to serve.

        Raises:
            KeyError: on an unknown model or version.
            ValueError: on checksum mismatch or a corrupt artifact.
        """
        record = self.record(name, version)
        artifact = self._version_dir(name, record.version) / _ARTIFACT
        with span("serve.registry.load", model=name,
                  version=record.version):
            if not artifact.is_file():
                raise ValueError(
                    f"registry entry {name} v{record.version} has no "
                    f"artifact file {artifact}"
                )
            digest = file_checksum(artifact)
            if digest != record.artifact_checksum:
                raise ValueError(
                    f"registry artifact {artifact} failed its checksum: "
                    "the file does not match its published record"
                )
            predictor = load_predictor(artifact, space=space)
        if predictor.metric.value != record.metric:
            raise ValueError(
                f"registry entry {name} v{record.version} record says "
                f"metric {record.metric!r} but the artifact holds "
                f"{predictor.metric.value!r}"
            )
        get_registry().counter("registry.loads").inc()
        _log.info("loaded %s v%d (metric=%s)", name, record.version,
                  record.metric)
        return predictor, record

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _version_dir(self, name: str, version: int) -> pathlib.Path:
        return self.root / name / f"v{version:04d}"

    def _next_version(self, name: str) -> int:
        versions = self.versions(name)
        return versions[-1] + 1 if versions else 1


def _cleanup_staging(staging: pathlib.Path) -> None:
    """Best-effort removal of an abandoned staging directory."""
    try:
        for entry in staging.iterdir():
            entry.unlink(missing_ok=True)
        staging.rmdir()
    except OSError:
        pass
