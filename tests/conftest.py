"""Shared fixtures: a design space, a small suite, and small datasets.

Dataset and pool fixtures are session-scoped because the interval
simulations and ANN trainings they run are the expensive part of the
suite; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.training import TrainingPool
from repro.designspace import DesignSpace, sample_configurations
from repro.exploration import DesignSpaceDataset
from repro.sim import IntervalSimulator, Metric
from repro.workloads import mibench_suite, spec2000_suite

#: Programs used by the reduced suite: a spread of behaviours plus the
#: art outlier.
SMALL_PROGRAMS = ("gzip", "crafty", "applu", "swim", "mesa", "art")


@pytest.fixture(scope="session")
def space() -> DesignSpace:
    return DesignSpace()


@pytest.fixture(scope="session")
def spec_suite():
    return spec2000_suite()


@pytest.fixture(scope="session")
def mibench():
    return mibench_suite()


@pytest.fixture(scope="session")
def small_suite(spec_suite):
    return spec_suite.subset(SMALL_PROGRAMS)


@pytest.fixture(scope="session")
def simulator(space) -> IntervalSimulator:
    return IntervalSimulator(space)


@pytest.fixture(scope="session")
def configs(space):
    return sample_configurations(space, 700, seed=101)


@pytest.fixture(scope="session")
def small_dataset(small_suite, configs, simulator) -> DesignSpaceDataset:
    return DesignSpaceDataset(small_suite, configs, simulator)


@pytest.fixture(scope="session")
def cycles_pool(small_dataset) -> TrainingPool:
    pool = TrainingPool(
        small_dataset, Metric.CYCLES, training_size=400, seed=7
    )
    pool.train_all()
    return pool
