"""Tests closing the loop between profiles and generated traces."""

import pytest

from repro.workloads import (
    characterise_trace,
    generate_trace,
    mix_deviation,
    reuse_histogram,
    spec2000_profile,
)


@pytest.fixture(scope="module")
def gzip_profile():
    return spec2000_profile("gzip")


@pytest.fixture(scope="module")
def gzip_trace(gzip_profile):
    return generate_trace(gzip_profile, 20000, seed=42)


@pytest.fixture(scope="module")
def characteristics(gzip_trace):
    return characterise_trace(gzip_trace)


class TestCharacterisation:
    def test_mix_tracks_the_profile(self, characteristics, gzip_profile):
        assert mix_deviation(characteristics, gzip_profile) < 0.02

    def test_memory_fraction(self, characteristics, gzip_profile):
        assert characteristics.memory_fraction == pytest.approx(
            gzip_profile.mix.memory, abs=0.02
        )

    def test_code_reuse_present(self, characteristics):
        """Loops revisit PCs heavily."""
        assert characteristics.pc_reuse > 0.5

    def test_footprints_positive(self, characteristics):
        assert characteristics.data_footprint_bytes > 0
        assert characteristics.code_footprint_bytes > 0

    def test_branch_sites_bounded_by_static_population(
        self, characteristics, gzip_profile
    ):
        assert (characteristics.branch_sites
                <= gzip_profile.branches.static_branches)

    def test_memory_bound_program_has_bigger_data_footprint(self):
        art = characterise_trace(
            generate_trace(spec2000_profile("art"), 20000, seed=42)
        )
        gzip = characterise_trace(
            generate_trace(spec2000_profile("gzip"), 20000, seed=42)
        )
        assert art.data_footprint_bytes > gzip.data_footprint_bytes

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            characterise_trace([])


class TestReuseHistogram:
    def test_buckets_cover_all_memory_accesses(self, gzip_trace):
        histogram = reuse_histogram(gzip_trace)
        from repro.workloads import OpClass
        memory_ops = sum(1 for t in gzip_trace if t.op.is_memory)
        assert sum(histogram.values()) == memory_ops

    def test_short_distances_dominate(self, gzip_trace):
        """Power-law region reuse concentrates mass at short distances."""
        histogram = reuse_histogram(gzip_trace)
        short = histogram["<=1"] + histogram["<=8"] + histogram["<=64"]
        total = sum(histogram.values())
        assert short > 0.4 * total

    def test_cold_fraction_small_for_cacheable_code(self, gzip_trace):
        histogram = reuse_histogram(gzip_trace)
        assert histogram["cold"] < 0.3 * sum(histogram.values())
