"""Admission control: token buckets, the in-flight cap, and the
503 + Retry-After surface clients actually see."""

from __future__ import annotations

import pytest

from repro.serve import (
    AdmissionController,
    PredictionClient,
    ServerError,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert [bucket.try_take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(1.0)

    def test_lazy_refill(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) > 0.0
        # Half a second refills one token at 2/s.
        assert bucket.try_take(1.0) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        # A long idle stretch must not bank more than `burst` tokens.
        assert bucket.try_take(100.0) == 0.0
        assert bucket.try_take(100.0) == 0.0
        assert bucket.try_take(100.0) > 0.0

    def test_retry_hint_shrinks_with_refill(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        bucket.try_take(0.0)
        first = bucket.try_take(0.0)
        later = bucket.try_take(0.5)
        assert 0 < later < first

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_quota_is_per_client(self):
        clock = FakeClock()
        admission = AdmissionController(
            client_rate=1.0, client_burst=1, clock=clock
        )
        assert admission.try_admit("alice").admitted
        refused = admission.try_admit("alice")
        assert not refused.admitted
        assert refused.reason == "quota"
        assert refused.retry_after > 0
        # Bob's bucket is untouched by Alice's spending.
        assert admission.try_admit("bob").admitted

    def test_quota_refills(self):
        clock = FakeClock()
        admission = AdmissionController(
            client_rate=2.0, client_burst=1, clock=clock
        )
        assert admission.try_admit("alice").admitted
        assert not admission.try_admit("alice").admitted
        clock.advance(0.6)
        assert admission.try_admit("alice").admitted

    def test_inflight_cap_and_release(self):
        admission = AdmissionController(max_inflight=2)
        assert admission.try_admit("a").admitted
        assert admission.try_admit("b").admitted
        refused = admission.try_admit("c")
        assert not refused.admitted
        assert refused.reason == "inflight-cap"
        assert refused.retry_after > 0
        admission.release()
        assert admission.inflight == 1
        assert admission.try_admit("c").admitted

    def test_refused_quota_does_not_consume_inflight(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_inflight=8, client_rate=1.0, client_burst=1, clock=clock
        )
        admission.try_admit("alice")
        before = admission.inflight
        assert not admission.try_admit("alice").admitted
        assert admission.inflight == before

    def test_client_bucket_lru_eviction(self):
        clock = FakeClock()
        admission = AdmissionController(
            client_rate=1.0, client_burst=1, max_clients=2, clock=clock
        )
        assert admission.try_admit("alice").admitted
        assert admission.try_admit("bob").admitted
        # Carol's arrival evicts Alice (least recently seen), so Alice
        # comes back to a fresh, full bucket.
        assert admission.try_admit("carol").admitted
        assert admission.try_admit("alice").admitted

    def test_burst_defaults_to_rate_ceiling(self):
        admission = AdmissionController(client_rate=2.5)
        assert admission.client_burst == 3


class TestHTTPSurface:
    def test_quota_503_carries_retry_after_and_request_id(self, harness):
        started = harness(
            admission=AdmissionController(
                client_rate=0.001, client_burst=1
            ),
        )
        with started.client() as client:
            client.client_id = "greedy"
            assert client.predict_one({}) > 0
            with pytest.raises(ServerError) as excinfo:
                client.predict_one({})
        error = excinfo.value
        assert error.status == 503
        assert error.retry_after is not None and error.retry_after > 0
        assert error.request_id
        assert "quota" in error.message

    def test_clients_are_isolated_by_header(self, harness):
        started = harness(
            admission=AdmissionController(
                client_rate=0.001, client_burst=1
            ),
        )
        first = PredictionClient(
            "127.0.0.1", started.port, client_id="first"
        )
        second = PredictionClient(
            "127.0.0.1", started.port, client_id="second"
        )
        with first, second:
            assert first.predict_one({}) > 0
            # First exhausted its bucket; second still has its burst.
            with pytest.raises(ServerError):
                first.predict_one({})
            assert second.predict_one({}) > 0

    def test_health_and_metrics_are_never_shed(self, harness):
        started = harness(
            admission=AdmissionController(
                client_rate=0.001, client_burst=1
            ),
        )
        with started.client() as client:
            client.client_id = "greedy"
            client.predict_one({})
            with pytest.raises(ServerError):
                client.predict_one({})
            # The operational endpoints bypass admission entirely.
            assert client.healthz()["status"] == "ok"
            assert "serve_requests" in client.metrics_text()

    def test_shed_counter_labels_reason(self, harness):
        from repro.obs import scoped_registry

        # A scoped registry so rejections from other tests in this
        # process do not leak into the asserted count.
        with scoped_registry():
            started = harness(
                admission=AdmissionController(
                    client_rate=0.001, client_burst=1
                ),
            )
            with started.client() as client:
                client.client_id = "greedy"
                client.predict_one({})
                for _ in range(3):
                    with pytest.raises(ServerError):
                        client.predict_one({})
                text = client.metrics_text()
        assert 'serve_rejected{reason="quota"} 3' in text
