"""Restricted cubic spline regression (the Lee & Brooks baseline family).

The paper's related work (Section 9.4) spans three program-specific
model families: linear regression on the raw parameters (Joseph et al.,
HPCA 2006), spline-based regression (Lee & Brooks, ASPLOS/HPCA
2006-2007) and ANNs (Ipek et al., the paper's comparison target).  This
module supplies the spline family: each feature is expanded into a
restricted (natural) cubic spline basis — linear beyond the boundary
knots, cubic between them — and a ridge-regularised linear model is
fitted on the concatenated bases.

The standard restricted-cubic-spline construction with knots
``t_1 < ... < t_K`` contributes, per feature, the identity plus ``K-2``
basis functions

    C_j(x) = d_j(x) - d_{K-1}(x),
    d_j(x) = [(x - t_j)+^3 - (x - t_K)+^3 * (t_K - t_j)/(t_K - t_{K-1})]
             / (t_K - t_1)^2

which guarantees linearity outside [t_1, t_K] — important here because
predictions are made across the whole grid while training samples may
not cover the corners.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .linear import LinearRegressor


def restricted_cubic_basis(
    values: np.ndarray, knots: np.ndarray
) -> np.ndarray:
    """Spline basis columns (excluding the identity) for one feature.

    Args:
        values: Length-n feature values.
        knots: K >= 3 strictly increasing knot positions.

    Returns:
        (n, K-2) matrix of restricted cubic basis functions.
    """
    values = np.asarray(values, dtype=float).reshape(-1)
    knots = np.asarray(knots, dtype=float).reshape(-1)
    if knots.size < 3:
        raise ValueError("restricted cubic splines need at least 3 knots")
    if np.any(np.diff(knots) <= 0):
        raise ValueError("knots must be strictly increasing")
    first, last, penultimate = knots[0], knots[-1], knots[-2]
    scale = (last - first) ** 2

    def plus_cubed(x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0) ** 3

    columns = []
    for knot in knots[:-2]:
        term = (
            plus_cubed(values - knot)
            - plus_cubed(values - penultimate)
            * (last - knot)
            / (last - penultimate)
            + plus_cubed(values - last)
            * (penultimate - knot)
            / (last - penultimate)
        )
        columns.append(term / scale)
    return np.stack(columns, axis=1)


class SplineRegressor:
    """Additive restricted-cubic-spline regression over many features.

    Args:
        knots: Knots per feature (placed at training quantiles).
            Features with too few distinct values fall back to identity
            (pure linear) terms.
        ridge: L2 penalty of the underlying linear fit.
    """

    def __init__(self, knots: int = 4, ridge: float = 1e-6) -> None:
        if knots < 3:
            raise ValueError("at least 3 knots are required")
        self.knots = knots
        self.ridge = ridge
        self._knot_positions: List[Optional[np.ndarray]] = []
        self._regressor = LinearRegressor(fit_intercept=True, ridge=ridge)
        self._fitted = False

    def _design(self, features: np.ndarray) -> np.ndarray:
        columns = [features]
        for index, knots in enumerate(self._knot_positions):
            if knots is None:
                continue
            columns.append(
                restricted_cubic_basis(features[:, index], knots)
            )
        return np.hstack(columns)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SplineRegressor":
        """Place knots at training quantiles and fit the linear model."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float).reshape(-1)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        if features.shape[0] < self.knots:
            raise ValueError("need at least as many samples as knots")

        quantiles = np.linspace(5.0, 95.0, self.knots)
        self._knot_positions = []
        for column in features.T:
            knots = np.unique(np.percentile(column, quantiles))
            if knots.size < 3:
                self._knot_positions.append(None)  # linear-only feature
            else:
                self._knot_positions.append(knots)
        self._regressor.fit(self._design(features), targets)
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for raw feature vectors."""
        if not self._fitted:
            raise RuntimeError("the spline regressor has not been fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return self._regressor.predict(self._design(features))
