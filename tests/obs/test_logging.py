"""Structured logging: formats, level resolution, handler hygiene."""

import io
import json
import logging

import pytest

from repro.obs import configure_logging, get_logger, resolve_level
from repro.obs.logging import ROOT_LOGGER_NAME


@pytest.fixture(autouse=True)
def _restore_handlers():
    """Leave the package logger exactly as we found it."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]


class TestGetLogger:
    def test_default_is_package_root(self):
        assert get_logger().name == ROOT_LOGGER_NAME

    def test_names_are_rooted_under_repro(self):
        assert get_logger("runtime.retry").name == "repro.runtime.retry"

    def test_dunder_name_used_as_is(self):
        assert get_logger("repro.runtime.retry").name == "repro.runtime.retry"

    def test_children_inherit_the_package_handler(self):
        stream = io.StringIO()
        configure_logging(level="info", fmt="human", stream=stream)
        get_logger("sub.module").info("hello from a child")
        assert "hello from a child" in stream.getvalue()


class TestResolveLevel:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "error")
        assert resolve_level("debug") == logging.DEBUG

    def test_environment_is_the_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "info")
        assert resolve_level() == logging.INFO

    def test_default_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert resolve_level() == logging.WARNING

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("loud")

    def test_case_insensitive(self):
        assert resolve_level("DEBUG") == logging.DEBUG


class TestConfigureLogging:
    def test_idempotent_single_handler(self):
        configure_logging(level="info")
        configure_logging(level="debug")
        root = logging.getLogger(ROOT_LOGGER_NAME)
        ours = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1
        assert root.level == logging.DEBUG

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown log format"):
            configure_logging(fmt="xml")

    def test_format_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        get_logger().info("probe")
        assert json.loads(stream.getvalue())["msg"] == "probe"

    def test_json_lines_carry_extra_fields(self):
        stream = io.StringIO()
        configure_logging(level="debug", fmt="json", stream=stream)
        get_logger("campaign").info(
            "cell done", extra={"cell": "gzip:3", "attempts": 2}
        )
        record = json.loads(stream.getvalue())
        assert record["msg"] == "cell done"
        assert record["logger"] == "repro.campaign"
        assert record["level"] == "info"
        assert record["cell"] == "gzip:3"
        assert record["attempts"] == 2

    def test_json_unserialisable_extra_degrades_to_repr(self):
        stream = io.StringIO()
        configure_logging(level="info", fmt="json", stream=stream)
        get_logger().info("probe", extra={"payload": {1, 2}})
        record = json.loads(stream.getvalue())
        assert "1" in record["payload"]  # repr of the set

    def test_human_format_is_single_line(self):
        stream = io.StringIO()
        configure_logging(level="warning", fmt="human", stream=stream)
        get_logger("retry").warning("breaker opened")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "breaker opened" in lines[0]
        assert "repro.retry" in lines[0]

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(level="warning", fmt="human", stream=stream)
        get_logger().debug("hidden")
        get_logger().info("hidden too")
        assert stream.getvalue() == ""
