"""Load-test fixtures: reuse the serving harness and fitted predictor.

The serve suite already owns a session-scoped fitted predictor and the
in-thread :class:`ServerHarness`; importing the fixture functions here
re-registers them for this directory, so load tests drive a real
server through the real socket path.
"""

from __future__ import annotations

from tests.serve.conftest import (  # noqa: F401 — fixture re-export
    ServerHarness,
    fitted_predictor,
    harness,
    holdout_configs,
)
