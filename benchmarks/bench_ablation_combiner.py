"""Ablation A2: the linear regressor vs alternative combining stages.

DESIGN.md calls out the combiner as the paper's key design choice: the
architecture-centric stage is "a simple linear regressor" over the
program models' outputs.  This ablation pits it against the obvious
alternatives under the same 32 responses:

* mean-of-models (no learning at all),
* nearest-program (copy the training model closest on the responses),
* ridge sweep (how sensitive is the fit to regularisation?).
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import ArchitectureCentricPredictor
from repro.exploration import format_table, scale_banner
from repro.ml import correlation, rmae
from repro.sim import Metric

PROGRAMS = ("gzip", "applu", "swim", "art")


def _score(predictions, actual):
    return rmae(predictions, actual), correlation(predictions, actual)


def test_ablation_combiner(benchmark, spec_dataset, pools, record_artifact):
    pool = pools(Metric.CYCLES)

    def run():
        per_variant = {}
        for program in PROGRAMS:
            models = pool.models(exclude=[program])
            response_idx, holdout_idx = spec_dataset.split_indices(
                RESPONSES, seed=515
            )
            response_configs = spec_dataset.subset_configs(response_idx)
            response_values = spec_dataset.subset_values(
                program, Metric.CYCLES, response_idx
            )
            holdout_configs = spec_dataset.subset_configs(holdout_idx)
            actual = spec_dataset.subset_values(
                program, Metric.CYCLES, holdout_idx
            )

            # Linear regressor (the paper) at several ridge strengths.
            for ridge in (1e-3, 5e-2, 5e-1):
                predictor = ArchitectureCentricPredictor(models, ridge=ridge)
                predictor.fit_responses(response_configs, response_values)
                per_variant.setdefault(f"linear (ridge={ridge:g})", []).append(
                    _score(predictor.predict(holdout_configs), actual)
                )

            # Mean of models.
            stack = np.stack(
                [model.predict(holdout_configs) for model in models]
            )
            per_variant.setdefault("mean-of-models", []).append(
                _score(stack.mean(axis=0), actual)
            )

            # Nearest program by response rmae, rescaled on the responses.
            response_errors = [
                rmae(model.predict(response_configs), response_values)
                for model in models
            ]
            nearest = models[int(np.argmin(response_errors))]
            scale = np.median(
                response_values / nearest.predict(response_configs)
            )
            per_variant.setdefault("nearest-program", []).append(
                _score(scale * nearest.predict(holdout_configs), actual)
            )
        return per_variant

    per_variant = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    summary = {}
    for variant, scores in per_variant.items():
        mean_rmae = float(np.mean([s[0] for s in scores]))
        mean_corr = float(np.mean([s[1] for s in scores]))
        summary[variant] = (mean_rmae, mean_corr)
        rows.append((variant, round(mean_rmae, 1), round(mean_corr, 3)))
    text = (
        scale_banner(
            "Ablation A2 — combining stage alternatives",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            programs=len(PROGRAMS),
        )
        + "\n"
        + format_table(("combiner", "rmae%", "corr"), rows)
    )
    record_artifact("ablation_combiner", text)

    linear_rmae = summary["linear (ridge=0.05)"][0]
    # The paper's choice must beat both non-learning alternatives.
    assert linear_rmae < summary["mean-of-models"][0]
    assert linear_rmae < summary["nearest-program"][0]
    # And must not hinge on a delicate ridge setting.
    ridge_errors = [
        value[0] for key, value in summary.items() if key.startswith("linear")
    ]
    assert max(ridge_errors) < 2.5 * min(ridge_errors)
