"""Golden-value regression pins.

Every simulator and workload constant in this repository is
deterministic, so a handful of exact values can be pinned to catch
accidental model drift: a change to any calibration constant, locality
curve or energy coefficient will trip these before it silently shifts
every experiment in EXPERIMENTS.md.  When a drift is *intentional*,
update the pins and re-run the benchmark harness so the recorded
artefacts move together.
"""

import pytest

from repro.designspace import DesignSpace
from repro.sim import IntervalSimulator
from repro.workloads import spec2000_profile


@pytest.fixture(scope="module")
def sim():
    return IntervalSimulator(DesignSpace())


@pytest.fixture(scope="module")
def baseline(sim):
    return sim.space.baseline


class TestSimulatorGoldenValues:
    """Exact interval-model outputs at the baseline machine."""

    def test_gzip_baseline_cycles(self, sim, baseline):
        result = sim.simulate(spec2000_profile("gzip"), baseline)
        assert result.cycles == pytest.approx(9.42526e6, rel=1e-3)

    def test_gzip_baseline_energy(self, sim, baseline):
        result = sim.simulate(spec2000_profile("gzip"), baseline)
        assert result.energy == pytest.approx(3.66873e7, rel=1e-3)

    def test_art_baseline_cycles(self, sim, baseline):
        result = sim.simulate(spec2000_profile("art"), baseline)
        assert result.cycles == pytest.approx(3.68664e7, rel=1e-3)

    def test_mcf_baseline_cycles(self, sim, baseline):
        result = sim.simulate(spec2000_profile("mcf"), baseline)
        assert result.cycles == pytest.approx(1.14268e8, rel=1e-3)


class TestSpaceGoldenValues:
    def test_exact_space_sizes(self):
        space = DesignSpace()
        assert space.raw_size == 62_668_800_000
        assert space.legal_size == 18_952_704_000

    def test_baseline_window(self, sim, baseline):
        result = sim.simulate(spec2000_profile("gzip"), baseline)
        assert result.breakdown["window"] == pytest.approx(85.29, abs=0.5)


class TestProfileGoldenValues:
    """Seeded profile constants (jitter is part of the contract)."""

    def test_gzip_ilp(self):
        assert spec2000_profile("gzip").ilp_max == pytest.approx(
            2.515, abs=0.01
        )

    def test_art_idiosyncrasy_amplitude(self):
        assert spec2000_profile("art").idiosyncrasy_performance.amplitude \
            == pytest.approx(0.50)

    def test_mcf_mlp_cap(self):
        assert spec2000_profile("mcf").mlp_max == pytest.approx(1.337, abs=0.01)
