"""Deep-dive one machine with the detailed pipeline simulator.

The interval model answers "how good is this configuration?"; the
trace-driven out-of-order pipeline simulator answers "*why*?".  This
example runs the same synthetic workload through three machines and
breaks down where the cycles go: stall causes, misprediction rates,
cache miss ratios and the energy bill.

Run:  python examples/pipeline_deep_dive.py
"""

from repro.designspace import DesignSpace
from repro.sim.pipeline import PipelineSimulator, compare_runs, describe_run
from repro.workloads import generate_trace, spec2000_suite

PROGRAM = "twolf"
TRACE_LENGTH = 40_000
WARMUP = 20_000


def main() -> None:
    space = DesignSpace()
    profile = spec2000_suite()[PROGRAM]
    print(f"Workload: {PROGRAM} ({profile.mix.branch * 100:.0f}% branches, "
          f"{profile.mix.memory * 100:.0f}% memory ops), "
          f"{TRACE_LENGTH} instructions, {WARMUP} warmup")

    baseline = space.baseline
    machines = {
        "embedded-class": baseline.replace(
            width=2, rob_size=32, iq_size=16, lsq_size=16, rf_size=48,
            rf_read_ports=4, rf_write_ports=2, gshare_size=1024,
            btb_size=1024, max_branches=8, icache_kb=8, dcache_kb=8,
            l2cache_kb=256,
        ),
        "baseline": baseline,
        "server-class": baseline.replace(
            width=8, rob_size=160, iq_size=80, lsq_size=80, rf_size=160,
            rf_read_ports=16, rf_write_ports=8, gshare_size=32768,
            max_branches=32, icache_kb=64, dcache_kb=64, l2cache_kb=4096,
        ),
    }

    trace = generate_trace(profile, TRACE_LENGTH)
    results = {}
    for name, config in machines.items():
        results[name] = PipelineSimulator(config).run(trace, warmup=WARMUP)
        print(f"\n--- {name} ---")
        print(describe_run(results[name], config))

    print("\n" + compare_runs(list(results), list(results.values())))


if __name__ == "__main__":
    main()
