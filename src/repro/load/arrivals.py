"""Seeded deterministic arrival processes for the open-loop load plane.

An open-loop load generator schedules request *arrival times* before
the run starts and never waits for completions — so when the server
slows down, requests queue up exactly as real independent users would
pile on, and the measured latency includes the queueing delay a
closed-loop generator hides (coordinated omission).

Every process here is a pure function of its parameters (plus, for
Poisson, a caller-supplied :class:`numpy.random.Generator`): the same
plan and seed always produce the same schedule, so a below-knee run
replays bit-identically — the same determinism contract as
:mod:`repro.distrib.chaos`.

Arrival kinds:

* ``constant`` — evenly spaced at ``1/rate``: the harshest steady
  load, no lucky gaps for the server to catch its breath in.
* ``poisson`` — exponential inter-arrival gaps: the classic model of
  many independent users, with natural bursts.
* ``burst`` — a square-wave intensity: each ``burst_period`` seconds
  spends ``burst_fraction`` of the cycle at ``burst_factor`` times the
  base intensity, with the off-phase rate chosen so the *mean* rate
  stays ``rate``.  Stresses queue absorption and admission control.
* ``ramp`` — intensity rises linearly from ``ramp_from`` to ``rate``
  over the stage: the canonical knee-finding sweep inside one stage.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["ARRIVAL_KINDS", "arrival_offsets"]

#: The supported arrival process names, in documentation order.
ARRIVAL_KINDS = ("constant", "poisson", "burst", "ramp")


def arrival_offsets(
    kind: str,
    rate: float,
    duration: float,
    rng: Optional[np.random.Generator] = None,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.25,
    burst_period: float = 1.0,
    ramp_from: float = 0.0,
) -> np.ndarray:
    """Arrival offsets (seconds from stage start) for one stage.

    Args:
        kind: One of :data:`ARRIVAL_KINDS`.
        rate: Mean arrival rate in requests/second (the ramp's *end*
            rate).
        duration: Stage length in seconds; every offset lands in
            ``[0, duration)``.
        rng: Required for ``poisson`` (deterministic given the same
            generator state); the other kinds are draw-free.
        burst_factor / burst_fraction / burst_period: Square-wave shape
            for ``burst`` (see the module docstring).
        ramp_from: Starting rate for ``ramp``.

    Returns:
        A sorted float64 array of offsets.
    """
    if kind not in ARRIVAL_KINDS:
        raise ValueError(
            f"unknown arrival kind {kind!r}; expected one of "
            f"{', '.join(ARRIVAL_KINDS)}"
        )
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if kind == "constant":
        return _even(0.0, duration, rate)
    if kind == "poisson":
        if rng is None:
            raise ValueError("the poisson process needs an rng")
        return _poisson(rate, duration, rng)
    if kind == "burst":
        return _burst(
            rate, duration, burst_factor, burst_fraction, burst_period
        )
    return _ramp(rate, duration, ramp_from)


def _even(start: float, end: float, rate: float) -> np.ndarray:
    """Evenly spaced arrivals at ``rate`` over ``[start, end)``."""
    count = int(math.floor((end - start) * rate + 1e-9))
    if count <= 0:
        return np.empty(0, dtype=float)
    return start + np.arange(count, dtype=float) / rate


def _poisson(
    rate: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    chunks = []
    clock = 0.0
    # Draw gaps in bulk and keep going until the process crosses the
    # stage end; the expected draw count is rate*duration, so one or
    # two chunks almost always suffice.
    chunk = max(16, int(rate * duration * 1.25) + 16)
    while True:
        times = clock + np.cumsum(rng.exponential(1.0 / rate, size=chunk))
        chunks.append(times[times < duration])
        if times[-1] >= duration:
            break
        clock = float(times[-1])
    return np.concatenate(chunks)


def _burst(
    rate: float,
    duration: float,
    factor: float,
    fraction: float,
    period: float,
) -> np.ndarray:
    if factor < 1.0:
        raise ValueError("burst_factor must be at least 1")
    if not 0.0 < fraction < 1.0:
        raise ValueError("burst_fraction must be within (0, 1)")
    if period <= 0:
        raise ValueError("burst_period must be positive")
    if factor * fraction > 1.0 + 1e-12:
        raise ValueError(
            "burst_factor * burst_fraction must be <= 1 so the "
            "off-phase rate stays non-negative"
        )
    # Off-phase rate that keeps the cycle mean at `rate`.
    base = rate * (1.0 - fraction * factor) / (1.0 - fraction)
    pieces = []
    start = 0.0
    while start < duration - 1e-12:
        on_end = min(start + fraction * period, duration)
        pieces.append(_even(start, on_end, rate * factor))
        off_end = min(start + period, duration)
        if base > 0 and off_end > on_end:
            pieces.append(_even(on_end, off_end, base))
        start += period
    if not pieces:
        return np.empty(0, dtype=float)
    return np.concatenate(pieces)


def _ramp(rate: float, duration: float, ramp_from: float) -> np.ndarray:
    if ramp_from < 0:
        raise ValueError("ramp_from must be non-negative")
    r0, r1 = float(ramp_from), float(rate)
    if abs(r1 - r0) < 1e-12:
        return _even(0.0, duration, r1)
    # Inversion of the cumulative intensity
    # lambda(t) = r0*t + (r1-r0)*t^2/(2T): arrival k happens when the
    # expected count first reaches k.
    slope = (r1 - r0) / duration
    total = (r0 + r1) * duration / 2.0
    count = int(math.floor(total + 1e-9))
    if count <= 0:
        return np.empty(0, dtype=float)
    targets = np.arange(count, dtype=float)
    offsets = (np.sqrt(r0 * r0 + 2.0 * slope * targets) - r0) / slope
    return np.clip(offsets, 0.0, np.nextafter(duration, 0.0))
