"""Benchmark substrate: statistical workload profiles and suites.

Public surface:

* :class:`WorkloadProfile` and its component models.
* :func:`spec2000_suite` / :func:`mibench_suite` — the two suites.
* :func:`decompose` — SimPoint-like phase decomposition.
* :func:`generate_trace` — synthetic traces for the pipeline simulator.
"""

from .builders import make_mix, make_profile
from .mibench import mibench_profile, mibench_suite
from .optimization import (
    OPTIMIZATION_LEVELS,
    optimization_family,
    optimization_variant,
)
from .phases import Phase, combine_phase_metrics, decompose
from .profile import (
    BranchBehaviour,
    Idiosyncrasy,
    InstructionMix,
    LocalityModel,
    WorkloadProfile,
    stable_seed,
)
from .spec2000 import SPEC_FP, SPEC_INT, spec2000_profile, spec2000_suite
from .suite import BenchmarkSuite
from .synthetic import drift_study_suites, random_profile, synthetic_suite
from .trace_stats import (
    TraceCharacteristics,
    characterise_trace,
    mix_deviation,
    reuse_histogram,
)
from .tracegen import (
    LINE_BYTES,
    LOGICAL_REGISTERS,
    OpClass,
    TraceGenerator,
    TraceInstruction,
    generate_trace,
)

__all__ = [
    "BenchmarkSuite",
    "BranchBehaviour",
    "Idiosyncrasy",
    "InstructionMix",
    "LINE_BYTES",
    "LOGICAL_REGISTERS",
    "LocalityModel",
    "OPTIMIZATION_LEVELS",
    "OpClass",
    "Phase",
    "SPEC_FP",
    "SPEC_INT",
    "TraceCharacteristics",
    "TraceGenerator",
    "TraceInstruction",
    "WorkloadProfile",
    "characterise_trace",
    "combine_phase_metrics",
    "decompose",
    "drift_study_suites",
    "generate_trace",
    "make_mix",
    "make_profile",
    "mibench_profile",
    "mix_deviation",
    "mibench_suite",
    "optimization_family",
    "optimization_variant",
    "random_profile",
    "reuse_histogram",
    "spec2000_profile",
    "spec2000_suite",
    "stable_seed",
    "synthetic_suite",
]
