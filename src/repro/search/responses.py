"""Active-learning response selection for fitting new programs.

The paper fits the architecture-centric combiner on R = 32 responses
drawn *uniformly at random* (Section 5.3).  This module is the search
subsystem's front door to the smarter policy: choose the response
configurations where the offline per-program models *disagree* most
(greedy, with a diversity term so picks spread out), which is exactly
where simulating the new program buys the most information.  The
underlying greedy selector lives in :mod:`repro.core.active`; here it
gains the stacked-ensemble fast path (one batched forward pass instead
of N per-model loops, bit-identical per the ensemble's contract) and a
strategy switch so experiments can compare policies at equal budget.

``bench_ablation_response_selection`` and ``bench_search`` both lean on
this module to show the disagreement picker beating the paper's random
choice at R = 32.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.active import model_disagreement, select_responses
from repro.designspace.configuration import Configuration

__all__ = [
    "RESPONSE_STRATEGIES",
    "ensemble_disagreement",
    "pick_response_indices",
]

#: Strategies accepted by :func:`pick_response_indices`.
RESPONSE_STRATEGIES = ("disagreement", "random", "hybrid")


def ensemble_disagreement(
    models: Sequence,
    configs: Sequence[Configuration],
) -> np.ndarray:
    """Per-configuration disagreement across the model ensemble.

    The standard deviation of the members' log10 predictions — the
    uncertainty signal behind the ``disagreement`` strategy.  Rides the
    stacked-ensemble batched forward pass when the pool stacks, with a
    bit-identical per-model fallback otherwise.

    Args:
        models: Trained per-program predictors.
        configs: Configurations to score.
    """
    return model_disagreement(models, configs)


def pick_response_indices(
    models: Sequence,
    candidates: Sequence[Configuration],
    count: int,
    strategy: str = "disagreement",
    seed: Optional[int] = None,
    diversity_weight: float = 0.5,
) -> List[int]:
    """Pick ``count`` response configurations out of ``candidates``.

    Args:
        models: The offline-trained program models whose disagreement
            guides the informed strategies.
        candidates: Configurations to choose from (e.g. the sampled
            pool an experiment shares).
        count: Number of responses (the paper's R).
        strategy: One of :data:`RESPONSE_STRATEGIES` —
            ``"disagreement"`` is the greedy uncertainty+diversity
            picker, ``"random"`` reproduces the paper's uniform draw,
            and ``"hybrid"`` spends half the budget on each (random
            half first, disagreement filling the rest without
            duplicates).
        seed: Seed for the random draws and greedy tie-breaks; a fixed
            seed makes every strategy fully deterministic.
        diversity_weight: Spread/informativeness trade-off forwarded to
            the greedy picker.

    Returns:
        ``count`` distinct indices into ``candidates``.

    Raises:
        ValueError: on an unknown strategy or an out-of-range count.
    """
    if strategy not in RESPONSE_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; "
            f"known: {', '.join(RESPONSE_STRATEGIES)}"
        )
    if count < 1 or count > len(candidates):
        raise ValueError(f"count must be in [1, {len(candidates)}]")
    if strategy == "disagreement":
        return select_responses(
            models,
            candidates,
            count,
            diversity_weight=diversity_weight,
            seed=seed,
        )
    rng = np.random.default_rng(seed)
    if strategy == "random":
        picks = rng.choice(len(candidates), size=count, replace=False)
        return [int(i) for i in picks]
    # hybrid: random half first, then greedy disagreement over the rest.
    random_count = count // 2
    informed_count = count - random_count
    random_picks = set(
        int(i)
        for i in rng.choice(len(candidates), size=random_count, replace=False)
    ) if random_count else set()
    remaining = [
        i for i in range(len(candidates)) if i not in random_picks
    ]
    informed_local = select_responses(
        models,
        [candidates[i] for i in remaining],
        informed_count,
        diversity_weight=diversity_weight,
        seed=seed,
    )
    return sorted(random_picks) + [remaining[i] for i in informed_local]
