"""Tests for trained-pool save/load round-tripping."""

import numpy as np
import pytest

from repro.core import ArchitectureCentricPredictor, load_models, save_models
from repro.sim import Metric


@pytest.fixture()
def archive(tmp_path, cycles_pool):
    models = cycles_pool.models()
    return save_models(models, tmp_path / "pool.npz"), models


class TestRoundTrip:
    def test_predictions_identical(self, archive, small_dataset, space):
        path, originals = archive
        restored = load_models(path, space)
        probe = list(small_dataset.configs[:30])
        for original, clone in zip(originals, restored):
            assert clone.program == original.program
            assert np.allclose(clone.predict(probe), original.predict(probe))

    def test_metadata_restored(self, archive, space):
        path, originals = archive
        restored = load_models(path, space)
        for original, clone in zip(originals, restored):
            assert clone.metric is original.metric
            assert clone.training_size_ == original.training_size_
            assert clone.log_target == original.log_target

    def test_restored_pool_drives_the_predictor(self, archive,
                                                small_dataset, space):
        path, _ = archive
        restored = [
            model for model in load_models(path, space)
            if model.program != "applu"
        ]
        predictor = ArchitectureCentricPredictor(restored)
        idx, rest = small_dataset.split_indices(32, seed=44)
        predictor.fit_responses(
            small_dataset.subset_configs(idx),
            small_dataset.subset_values("applu", Metric.CYCLES, idx),
        )
        scores = predictor.evaluate(
            small_dataset.subset_configs(rest),
            small_dataset.subset_values("applu", Metric.CYCLES, rest),
        )
        assert scores["correlation"] > 0.8


class TestValidation:
    def test_empty_pool_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_models([], tmp_path / "pool.npz")

    def test_mixed_metrics_rejected(self, tmp_path, cycles_pool,
                                    small_dataset):
        from repro.core import TrainingPool
        energy_pool = TrainingPool(
            small_dataset, Metric.ENERGY, training_size=64, seed=1
        )
        mixed = [cycles_pool.model("gzip"), energy_pool.model("gzip")]
        with pytest.raises(ValueError, match="same metric"):
            save_models(mixed, tmp_path / "pool.npz")

    def test_untrained_network_export_rejected(self):
        from repro.ml import MultilayerPerceptron
        with pytest.raises(RuntimeError):
            MultilayerPerceptron().get_weights()

    def test_incomplete_weights_rejected(self):
        from repro.ml import MultilayerPerceptron
        with pytest.raises(ValueError, match="missing"):
            MultilayerPerceptron().set_weights({"hidden_weights": np.ones(2)})
