"""Load-plan schema tests: strict JSON in, the same JSON out."""

from __future__ import annotations

import pytest

from repro.load import LoadPlan, LoadStage


def _plan(**overrides) -> LoadPlan:
    stage = LoadStage(
        name="steady", duration=2.0, rate=50.0,
        mix=(("predict_hot", 0.7), ("predict_cold", 0.25),
             ("search", 0.05)),
    )
    fields = {"stages": (stage,), "seed": 2007,
              "description": "unit fixture"}
    fields.update(overrides)
    return LoadPlan(**fields)


class TestRoundTrip:
    def test_json_round_trip(self):
        plan = _plan()
        again = LoadPlan.from_json(plan.to_json())
        assert again == plan

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = _plan()
        plan.save(path)
        assert LoadPlan.load(path) == plan

    def test_with_seed(self):
        plan = _plan()
        reseeded = plan.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.stages == plan.stages

    def test_total_duration(self):
        plan = _plan(stages=(
            LoadStage(name="a", duration=2.0, rate=10.0),
            LoadStage(name="b", duration=3.0, rate=10.0),
        ))
        assert plan.total_duration == pytest.approx(5.0)

    def test_weights_normalised(self):
        stage = LoadStage(
            name="s", duration=1.0, rate=1.0,
            mix=(("predict_hot", 3.0), ("search", 1.0)),
        )
        assert stage.weights == pytest.approx(
            {"predict_hot": 0.75, "search": 0.25}
        )


class TestValidation:
    def test_unknown_stage_key_rejected(self):
        with pytest.raises(ValueError, match="unknown stage keys"):
            LoadStage.from_dict(
                {"name": "s", "duration": 1.0, "rate": 1.0, "ratee": 2.0}
            )

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(ValueError, match="unknown plan keys"):
            LoadPlan.from_dict({"stages": [], "sed": 1})

    def test_missing_required_stage_key(self):
        with pytest.raises(ValueError, match='"rate"'):
            LoadStage.from_dict({"name": "s", "duration": 1.0})

    def test_plan_needs_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            LoadPlan(stages=())

    def test_duplicate_stage_names(self):
        stage = LoadStage(name="dup", duration=1.0, rate=1.0)
        with pytest.raises(ValueError, match="duplicate stage names"):
            LoadPlan(stages=(stage, stage))

    def test_non_integer_seed(self):
        with pytest.raises(ValueError, match="seed"):
            _plan(seed="7")

    def test_unknown_mix_kind(self):
        with pytest.raises(ValueError, match="unknown mix kind"):
            LoadStage(name="s", duration=1.0, rate=1.0,
                      mix=(("predict_warm", 1.0),))

    def test_non_positive_mix_weight(self):
        with pytest.raises(ValueError, match="must be positive"):
            LoadStage(name="s", duration=1.0, rate=1.0,
                      mix=(("predict_hot", 0.0),))

    def test_duplicate_mix_kind(self):
        with pytest.raises(ValueError, match="duplicate mix kinds"):
            LoadStage(name="s", duration=1.0, rate=1.0,
                      mix=(("predict_hot", 1.0), ("predict_hot", 2.0)))

    def test_bad_arrival(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            LoadStage(name="s", duration=1.0, rate=1.0, arrival="spiky")

    def test_search_budget_bounds(self):
        with pytest.raises(ValueError, match="search_budget"):
            LoadStage(name="s", duration=1.0, rate=1.0, search_budget=1)

    def test_not_json(self):
        with pytest.raises(ValueError, match="not JSON"):
            LoadPlan.from_json("{nope")
