"""Tests for the cross-validation result aggregation objects."""

import pytest

from repro.core import CrossValidationResult, PredictionScore, ProgramSummary
from repro.sim import Metric


def _score(program, rmae, corr, train=1.0):
    return PredictionScore(
        program=program, metric=Metric.CYCLES, rmae=rmae,
        correlation=corr, training_error=train, responses=32,
    )


@pytest.fixture()
def result():
    summaries = {
        "alpha": ProgramSummary(
            "alpha", [_score("alpha", 10.0, 0.9), _score("alpha", 14.0, 0.8)]
        ),
        "beta": ProgramSummary(
            "beta", [_score("beta", 20.0, 0.7), _score("beta", 24.0, 0.6)]
        ),
    }
    return CrossValidationResult(metric=Metric.CYCLES, summaries=summaries)


class TestProgramSummary:
    def test_mean_rmae(self, result):
        assert result.program("alpha").mean_rmae == pytest.approx(12.0)

    def test_std_rmae(self, result):
        assert result.program("alpha").std_rmae == pytest.approx(2.0)

    def test_mean_correlation(self, result):
        assert result.program("beta").mean_correlation == pytest.approx(0.65)

    def test_mean_training_error(self, result):
        assert result.program("alpha").mean_training_error == pytest.approx(1.0)


class TestCrossValidationResult:
    def test_mean_rmae_averages_programs(self, result):
        # (12 + 22) / 2 — per-program means first, then across programs,
        # matching the paper's per-program bar charts.
        assert result.mean_rmae == pytest.approx(17.0)

    def test_mean_correlation(self, result):
        assert result.mean_correlation == pytest.approx(0.75)

    def test_unknown_program_rejected(self, result):
        with pytest.raises(KeyError, match="no summary"):
            result.program("gamma")
