"""Admission control: shed load *before* latency collapses.

A saturated queue already answers 503 (:class:`ServerSaturated`), but
by the time the queue is full every queued request is paying the full
backlog's latency.  Admission control refuses work earlier and more
fairly:

* **Per-client token buckets** — each client (the ``X-Client-Id``
  header, else the peer address) gets a refill rate and a burst
  allowance, so one greedy client exhausts *its* bucket instead of
  everyone's queue.
* **A global in-flight cap** — a hard bound on requests concurrently
  inside the server, independent of which clients sent them.

Rejections carry a ``Retry-After`` hint computed from the bucket state
(time until the next token), which the
:class:`~repro.serve.client.PredictionClient` retry path honours.

Everything here is synchronous, allocation-light and driven by an
injectable clock (tests use a fake one); it runs on the event loop, so
no locking — the same single-threaded contract as
:class:`~repro.serve.batching.LRUCache`.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["AdmissionController", "AdmissionDecision", "TokenBucket"]

#: Retry hint when the in-flight cap rejects: there is no bucket to
#: consult, and in-flight work drains quickly.
_INFLIGHT_RETRY_AFTER = 0.5


class TokenBucket:
    """A standard token bucket (``rate`` tokens/second, ``burst`` cap).

    The bucket starts full, so a well-behaved client gets its burst
    immediately; refill is computed lazily from elapsed time, so an
    idle bucket costs nothing.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise ValueError("the bucket rate must be positive")
        if burst < 1:
            raise ValueError("the bucket burst must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._stamp: Optional[float] = None

    def try_take(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else the seconds
        until one becomes available."""
        if self._stamp is not None:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate,
            )
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict for one request."""

    admitted: bool
    reason: str = ""           # "quota" | "inflight-cap" when refused
    retry_after: float = 0.0   # seconds; the 503 Retry-After hint


_ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Per-client quotas plus a global in-flight cap.

    Args:
        max_inflight: Most requests concurrently admitted; 0 disables
            the cap.
        client_rate: Per-client token refill rate in requests/second;
            0 disables quotas.
        client_burst: Per-client burst allowance (default: the refill
            rate rounded up, so a client can always spend one second
            of quota at once).
        max_clients: Most client buckets kept; the least recently seen
            bucket is evicted past this, bounding memory against
            client-id cardinality abuse (an evicted client simply
            starts a fresh, full bucket).
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_inflight: int = 0,
        client_rate: float = 0.0,
        client_burst: int = 0,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 0:
            raise ValueError("max_inflight must be non-negative")
        if client_rate < 0:
            raise ValueError("client_rate must be non-negative")
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.max_inflight = int(max_inflight)
        self.client_rate = float(client_rate)
        self.client_burst = (
            int(client_burst) if client_burst > 0
            else max(1, math.ceil(client_rate))
        )
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        """Requests admitted and not yet released."""
        return self._inflight

    def try_admit(self, client_id: str) -> AdmissionDecision:
        """Admit one request for ``client_id`` (pair with
        :meth:`release` in a ``finally``) or refuse with a hint."""
        if self.client_rate > 0:
            wait = self._bucket(client_id).try_take(self._clock())
            if wait > 0:
                return AdmissionDecision(
                    admitted=False, reason="quota", retry_after=wait
                )
        if self.max_inflight and self._inflight >= self.max_inflight:
            return AdmissionDecision(
                admitted=False,
                reason="inflight-cap",
                retry_after=_INFLIGHT_RETRY_AFTER,
            )
        self._inflight += 1
        return _ADMITTED

    def release(self) -> None:
        """Return an admitted request's in-flight slot."""
        self._inflight = max(0, self._inflight - 1)

    def _bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.client_rate, self.client_burst)
            self._buckets[client_id] = bucket
        self._buckets.move_to_end(client_id)
        while len(self._buckets) > self.max_clients:
            self._buckets.popitem(last=False)
        return bucket
