"""Client-side resilience: seeded 503 retries and stale keep-alive
recovery."""

from __future__ import annotations

import json
import random
import socket
import threading

import pytest

from repro.serve import PredictionClient, ServerError
from repro.serve.client import _RETRY_BASE


def _fake_exchange(responses):
    """An ``_exchange`` stand-in replaying canned (status, headers,
    payload) triples."""
    queue = list(responses)

    def exchange(method, path, body):
        status, headers, payload = queue.pop(0)
        return status, headers, json.dumps(payload).encode("utf-8")

    return exchange


class TestSeededRetries:
    def test_delays_replay_the_seed(self, monkeypatch):
        client = PredictionClient(
            "127.0.0.1", 1, retries=3, retry_seed=42
        )
        shed = (503, {"Retry-After": "0.20"}, {"error": "busy"})
        ok = (200, {}, {"predictions": [1.5]})
        monkeypatch.setattr(
            client, "_exchange", _fake_exchange([shed, shed, ok])
        )
        slept = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", slept.append
        )
        assert client.predict([{}]) == [1.5]
        # Full jitter: Retry-After plus uniform(0, base * 2^attempt),
        # replayed exactly from the seed.
        expected_rng = random.Random(42)
        expected = [
            0.20 + expected_rng.uniform(0.0, _RETRY_BASE * (2 ** attempt))
            for attempt in range(2)
        ]
        assert slept == pytest.approx(expected)

    def test_jitter_ceiling_is_capped(self, monkeypatch):
        client = PredictionClient(
            "127.0.0.1", 1, retries=8, retry_seed=7, max_retry_wait=0.1
        )
        shed = (503, {}, {"error": "busy"})
        ok = (200, {}, {"predictions": [1.0]})
        monkeypatch.setattr(
            client, "_exchange",
            _fake_exchange([shed] * 8 + [ok]),
        )
        slept = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", slept.append
        )
        client.predict([{}])
        assert len(slept) == 8
        assert all(delay <= 0.1 for delay in slept)

    def test_retries_zero_fails_fast(self, monkeypatch):
        client = PredictionClient("127.0.0.1", 1)
        monkeypatch.setattr(
            client, "_exchange",
            _fake_exchange([(
                503,
                {"Retry-After": "1.5", "X-Request-Id": "abc-000001"},
                {"error": "busy", "request_id": "abc-000001"},
            )]),
        )
        slept = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", slept.append
        )
        with pytest.raises(ServerError) as excinfo:
            client.predict([{}])
        assert slept == []
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == pytest.approx(1.5)
        assert excinfo.value.request_id == "abc-000001"

    def test_exhausted_retries_surface_the_503(self, monkeypatch):
        client = PredictionClient("127.0.0.1", 1, retries=2, retry_seed=0)
        monkeypatch.setattr(
            client, "_exchange",
            _fake_exchange([(503, {}, {"error": "busy"})] * 3),
        )
        slept = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", slept.append
        )
        with pytest.raises(ServerError):
            client.predict([{}])
        assert len(slept) == 2

    def test_non_503_is_never_retried(self, monkeypatch):
        client = PredictionClient("127.0.0.1", 1, retries=5, retry_seed=0)
        monkeypatch.setattr(
            client, "_exchange",
            _fake_exchange([(400, {}, {"error": "bad config"})]),
        )
        slept = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", slept.append
        )
        with pytest.raises(ServerError) as excinfo:
            client.predict([{}])
        assert excinfo.value.status == 400
        assert slept == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionClient("h", 1, retries=-1)
        with pytest.raises(ValueError):
            PredictionClient("h", 1, max_retry_wait=0.0)


class _OneShotServer:
    """A TCP server that answers each connection's *first* request with
    a keep-alive response, then closes the socket — the rudest legal
    keep-alive peer, exactly what a drained server or an idle-timeout
    proxy looks like to a pooled client."""

    def __init__(self) -> None:
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self.served = 0
        self._alive = True
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while self._alive:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            with connection:
                try:
                    connection.recv(65536)
                except OSError:
                    continue
                body = json.dumps({"status": "ok"}).encode("utf-8")
                connection.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n".encode()
                    + b"Connection: keep-alive\r\n\r\n" + body
                )
                self.served += 1
                # Closing here leaves the client holding a stale
                # keep-alive connection.

    def close(self) -> None:
        self._alive = False
        self._listener.close()
        self._thread.join(timeout=5)


class TestStaleKeepAlive:
    def test_reconnects_transparently(self):
        server = _OneShotServer()
        try:
            with PredictionClient("127.0.0.1", server.port) as client:
                # Each request rides a connection the server closed
                # right after the previous response; the client must
                # reconnect instead of surfacing ConnectionError.
                for _ in range(3):
                    assert client.healthz() == {"status": "ok"}
            assert server.served == 3
        finally:
            server.close()
