"""Declarative load plans: seeded, validated, JSON on disk.

A :class:`LoadPlan` is to the load generator what a
:class:`~repro.distrib.chaos.ChaosPlan` is to the chaos harness — a
small, strict JSON document that fully determines a run.  Stages
execute back to back; each names an arrival process
(:mod:`repro.load.arrivals`), a mean request rate, a client-thread
count, and a traffic *mix* over three request kinds:

* ``predict_hot`` — ``/predict`` over a small pool of configurations
  drawn zipf-skewed (exponent ``zipf_s``), the traffic shape that
  rides the server's LRU cache;
* ``predict_cold`` — ``/predict`` cycling a large pool of distinct
  configurations, the cache-busting flood;
* ``search`` — bounded ``POST /search`` runs, the expensive mixed-in
  workload.

Example::

    {
      "seed": 2007,
      "description": "mixed below-knee smoke",
      "stages": [
        {"name": "steady", "duration": 5.0, "rate": 50.0,
         "arrival": "poisson", "clients": 8,
         "mix": {"predict_hot": 0.7, "predict_cold": 0.28,
                 "search": 0.02}}
      ]
    }

Unknown keys are rejected loudly — a typo'd option must fail the run,
not silently change the experiment.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .arrivals import ARRIVAL_KINDS

__all__ = ["LoadPlan", "LoadStage", "MIX_KINDS"]

#: The request kinds a stage mix may name.
MIX_KINDS = ("predict_hot", "predict_cold", "search")

_STAGE_KEYS = {
    "name", "duration", "rate", "arrival", "mix", "clients", "zipf_s",
    "hot_configs", "cold_configs", "search_agent", "search_budget",
    "burst_factor", "burst_fraction", "burst_period", "ramp_from",
}

_PLAN_KEYS = {"seed", "description", "stages"}


@dataclass(frozen=True)
class LoadStage:
    """One phase of a load plan (see the module docstring).

    Args:
        name: Unique stage identifier; seeds the stage's random
            streams, so renaming a stage reshuffles only that stage.
        duration: Stage length in seconds.
        rate: Mean offered load in requests/second.
        arrival: Arrival process (:data:`~repro.load.arrivals.ARRIVAL_KINDS`).
        mix: ``(kind, weight)`` pairs over :data:`MIX_KINDS`; weights
            are normalised, so any positive scale works.
        clients: Client threads (each owns one keep-alive connection);
            arrivals are dealt round-robin across them.
        zipf_s: Zipf exponent for ``predict_hot`` pool picks (larger
            is more skewed).
        hot_configs / cold_configs: Pool sizes for the hot and cold
            request kinds.
        search_agent / search_budget: Parameters for ``search``
            requests.
        burst_factor / burst_fraction / burst_period / ramp_from:
            Arrival-process shape knobs (ignored by kinds that do not
            use them).
    """

    name: str
    duration: float
    rate: float
    arrival: str = "poisson"
    mix: Tuple[Tuple[str, float], ...] = (("predict_hot", 1.0),)
    clients: int = 4
    zipf_s: float = 1.1
    hot_configs: int = 64
    cold_configs: int = 512
    search_agent: str = "hill"
    search_budget: int = 32
    burst_factor: float = 4.0
    burst_fraction: float = 0.25
    burst_period: float = 1.0
    ramp_from: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("a stage needs a non-empty name")
        if self.duration <= 0:
            raise ValueError(f"stage {self.name!r}: duration must be positive")
        if self.rate <= 0:
            raise ValueError(f"stage {self.name!r}: rate must be positive")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"stage {self.name!r}: unknown arrival {self.arrival!r}; "
                f"expected one of {', '.join(ARRIVAL_KINDS)}"
            )
        if not self.mix:
            raise ValueError(f"stage {self.name!r}: the mix is empty")
        for kind, weight in self.mix:
            if kind not in MIX_KINDS:
                raise ValueError(
                    f"stage {self.name!r}: unknown mix kind {kind!r}; "
                    f"expected one of {', '.join(MIX_KINDS)}"
                )
            if not weight > 0:
                raise ValueError(
                    f"stage {self.name!r}: mix weight for {kind!r} must "
                    "be positive"
                )
        if len({kind for kind, _ in self.mix}) != len(self.mix):
            raise ValueError(f"stage {self.name!r}: duplicate mix kinds")
        # Canonical mix order: the schedule's kind stream draws from
        # the mix in sequence, so `{"a": .5, "b": .5}` and its
        # reordering must produce the same plan (JSON objects are
        # unordered).
        object.__setattr__(
            self, "mix",
            tuple(sorted(
                ((kind, float(weight)) for kind, weight in self.mix),
                key=lambda pair: MIX_KINDS.index(pair[0]),
            )),
        )
        if self.clients < 1:
            raise ValueError(f"stage {self.name!r}: clients must be >= 1")
        if self.zipf_s <= 0:
            raise ValueError(f"stage {self.name!r}: zipf_s must be positive")
        if self.hot_configs < 1 or self.cold_configs < 1:
            raise ValueError(
                f"stage {self.name!r}: config pools must hold at least "
                "one entry"
            )
        if not 2 <= self.search_budget <= 4096:
            raise ValueError(
                f"stage {self.name!r}: search_budget must be in [2, 4096]"
            )

    @property
    def weights(self) -> Dict[str, float]:
        """The mix normalised to sum to one."""
        total = sum(weight for _, weight in self.mix)
        return {kind: weight / total for kind, weight in self.mix}

    def to_dict(self) -> Dict:
        """The JSON form (mix as a mapping)."""
        raw = dataclasses.asdict(self)
        raw["mix"] = {kind: weight for kind, weight in self.mix}
        return raw

    @classmethod
    def from_dict(cls, raw: Mapping) -> "LoadStage":
        """Build one stage from its JSON form; unknown keys are errors."""
        if not isinstance(raw, Mapping):
            raise ValueError("each stage must be a JSON object")
        unknown = set(raw) - _STAGE_KEYS
        if unknown:
            raise ValueError(
                f"unknown stage keys: {sorted(unknown)} "
                f"(known: {sorted(_STAGE_KEYS)})"
            )
        for key in ("name", "duration", "rate"):
            if key not in raw:
                raise ValueError(f'a stage needs a "{key}"')
        mix = raw.get("mix", {"predict_hot": 1.0})
        if isinstance(mix, Mapping):
            mix_pairs = tuple(
                (str(kind), float(weight)) for kind, weight in mix.items()
            )
        else:
            raise ValueError('"mix" must be a {kind: weight} mapping')
        return cls(
            name=str(raw["name"]),
            duration=float(raw["duration"]),
            rate=float(raw["rate"]),
            arrival=str(raw.get("arrival", "poisson")),
            mix=mix_pairs,
            clients=int(raw.get("clients", 4)),
            zipf_s=float(raw.get("zipf_s", 1.1)),
            hot_configs=int(raw.get("hot_configs", 64)),
            cold_configs=int(raw.get("cold_configs", 512)),
            search_agent=str(raw.get("search_agent", "hill")),
            search_budget=int(raw.get("search_budget", 32)),
            burst_factor=float(raw.get("burst_factor", 4.0)),
            burst_fraction=float(raw.get("burst_fraction", 0.25)),
            burst_period=float(raw.get("burst_period", 1.0)),
            ramp_from=float(raw.get("ramp_from", 0.0)),
        )


@dataclass(frozen=True)
class LoadPlan:
    """A seeded sequence of load stages.

    Args:
        stages: Executed back to back in order.
        seed: Root seed; every per-stage random stream is derived from
            ``(seed, stage name, purpose)``, so the same plan file
            replays the same schedule bit for bit.
        description: Free-form annotation echoed in reports.
    """

    stages: Tuple[LoadStage, ...]
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a load plan needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("the plan seed must be an integer")

    @property
    def total_duration(self) -> float:
        """Seconds of scheduled traffic across every stage."""
        return sum(stage.duration for stage in self.stages)

    def with_seed(self, seed: int) -> "LoadPlan":
        """The same plan under a different root seed."""
        return dataclasses.replace(self, seed=int(seed))

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "description": self.description,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Mapping) -> "LoadPlan":
        if not isinstance(raw, Mapping):
            raise ValueError("a load plan must be a JSON object")
        unknown = set(raw) - _PLAN_KEYS
        if unknown:
            raise ValueError(
                f"unknown plan keys: {sorted(unknown)} "
                f"(known: {sorted(_PLAN_KEYS)})"
            )
        stages = raw.get("stages")
        if not isinstance(stages, (list, tuple)):
            raise ValueError('a load plan needs a "stages" list')
        seed = raw.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError("the plan seed must be an integer")
        return cls(
            stages=tuple(LoadStage.from_dict(stage) for stage in stages),
            seed=seed,
            description=str(raw.get("description", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "LoadPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"the load plan is not JSON: {error}") from error
        return cls.from_dict(raw)

    @classmethod
    def load(cls, path) -> "LoadPlan":
        """Read and validate a plan file."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path) -> None:
        """Write the canonical JSON form."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
