"""Prediction-uncertainty estimation for the architecture-centric model.

An extension beyond the paper: the combining regressor is fitted on only
R = 32 responses, so its predictions carry estimation uncertainty that
an architect pruning a design space would like to see.  We estimate it
by bootstrap: refit the combiner on resampled response sets and read the
spread of the resulting predictions.  The per-program ANN pool is fixed
(it is offline and deterministic); only the response fit — the paper's
cheap online stage — is resampled, so the whole procedure costs a few
hundred tiny linear regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration

from .predictor import ArchitectureCentricPredictor


@dataclass(frozen=True)
class UncertainPrediction:
    """Bootstrap prediction summary for a batch of configurations."""

    mean: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    std: np.ndarray
    confidence: float

    def interval_width(self) -> np.ndarray:
        """Relative width of the interval (a unitless noisiness score)."""
        return (self.upper - self.lower) / self.mean


def bootstrap_predict(
    predictor: ArchitectureCentricPredictor,
    response_configs: Sequence[Configuration],
    response_values: np.ndarray,
    configs: Sequence[Configuration],
    resamples: int = 100,
    confidence: float = 0.9,
    seed: Optional[int] = None,
) -> UncertainPrediction:
    """Bootstrap prediction intervals from the response fit.

    Args:
        predictor: A fitted predictor (supplies the model pool and the
            ridge setting; its own fit is not disturbed).
        response_configs: The R response configurations.
        response_values: The new program's measured values there.
        configs: Configurations to predict with uncertainty.
        resamples: Bootstrap refits (each is one small ridge regression).
        confidence: Central interval mass (0.9 = 5th-95th percentile).
        seed: Resampling seed.

    Returns:
        Per-configuration mean, interval bounds and standard deviation
        over the bootstrap distribution.
    """
    if resamples < 2:
        raise ValueError("at least two resamples are required")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    response_values = np.asarray(response_values, dtype=float).reshape(-1)
    count = len(response_configs)
    if count != response_values.shape[0]:
        raise ValueError("configs and values disagree on sample count")
    if count < 2:
        raise ValueError("at least two responses are required")

    rng = np.random.default_rng(seed)
    ridge = predictor._regressor.ridge
    predictions = np.empty((resamples, len(configs)))
    for row in range(resamples):
        while True:
            picks = rng.integers(0, count, size=count)
            # A degenerate resample (a single repeated response) cannot
            # anchor a fit; redraw.
            if len(set(picks.tolist())) >= 2:
                break
        clone = ArchitectureCentricPredictor(
            predictor.program_models, ridge=ridge
        )
        clone.fit_responses(
            [response_configs[i] for i in picks],
            response_values[picks],
        )
        predictions[row] = clone.predict(configs)

    tail = (1.0 - confidence) / 2.0
    lower, upper = np.percentile(
        predictions, (100 * tail, 100 * (1 - tail)), axis=0
    )
    return UncertainPrediction(
        mean=predictions.mean(axis=0),
        lower=lower,
        upper=upper,
        std=predictions.std(axis=0),
        confidence=confidence,
    )


def coverage(
    prediction: UncertainPrediction, actual: np.ndarray
) -> float:
    """Fraction of actual values inside the bootstrap interval.

    A calibration check: for well-calibrated intervals this approaches
    the requested confidence level (bootstrap intervals on a biased
    model undershoot, which the tests document).
    """
    actual = np.asarray(actual, dtype=float).reshape(-1)
    if actual.shape != prediction.mean.shape:
        raise ValueError("actual values must align with the predictions")
    inside = (actual >= prediction.lower) & (actual <= prediction.upper)
    return float(inside.mean())
