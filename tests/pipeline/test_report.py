"""Tests for pipeline run reports."""

import pytest

from repro.sim.pipeline import (
    PipelineSimulator,
    compare_runs,
    describe_machine,
    describe_run,
    stall_breakdown,
)
from repro.workloads import generate_trace, spec2000_profile


@pytest.fixture(scope="module")
def run(space):
    trace = generate_trace(spec2000_profile("gzip"), 6000, seed=2)
    return PipelineSimulator(space.baseline).run(trace, warmup=2000)


class TestDescribe:
    def test_machine_line_mentions_key_parameters(self, space):
        text = describe_machine(space.baseline)
        assert "width=4" in text
        assert "L2=2048KB" in text

    def test_run_report_sections(self, run, space):
        text = describe_run(run, space.baseline)
        for needle in ("machine", "IPC", "branches", "caches", "energy",
                       "stalls"):
            assert needle in text

    def test_stall_breakdown_shares(self, run):
        text = stall_breakdown(run)
        assert "stalls" in text
        assert "%" in text

    def test_wrong_path_line_only_when_present(self, run, space):
        assert "wrong-path" not in describe_run(run, space.baseline)
        trace = generate_trace(spec2000_profile("gzip"), 6000, seed=2)
        speculative = PipelineSimulator(
            space.baseline, wrong_path=True
        ).run(trace, warmup=2000)
        assert "wrong-path" in describe_run(speculative, space.baseline)


class TestCompare:
    def test_side_by_side(self, run, space):
        trace = generate_trace(spec2000_profile("gzip"), 6000, seed=2)
        other = PipelineSimulator(
            space.baseline.replace(width=2, rf_read_ports=4,
                                   rf_write_ports=2)
        ).run(trace, warmup=2000)
        table = compare_runs(["baseline", "narrow"], [run, other])
        assert "baseline" in table and "narrow" in table
        assert table.count("\n") >= 3

    def test_mismatched_lengths_rejected(self, run):
        with pytest.raises(ValueError):
            compare_runs(["a"], [run, run])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_runs([], [])
