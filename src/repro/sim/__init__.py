"""Simulation substrate: machine model, energy model, and simulators.

Public surface:

* :class:`MachineSpec` / :class:`FixedParameters` — Table 2.
* :class:`EnergyModel` — Cacti/Wattch-style energy accounting.
* :class:`IntervalSimulator` — the fast vectorised bulk simulator.
* :class:`Metric` — the four target metrics.
* :mod:`repro.sim.pipeline` — the detailed trace-driven OoO simulator.
"""

from .branch import BranchPenalties, branch_penalties
from .caches import (
    HierarchyMissRatios,
    effective_capacity,
    hierarchy_miss_ratios,
    misses_per_kilo_instruction,
)
from .energy import (
    ALU_ENERGY,
    EnergyModel,
    StructureEnergies,
    array_area,
    array_read_energy,
    array_write_energy,
    cache_access_energy,
    cache_area,
    cam_search_energy,
)
from .interval import BatchResult, IntervalSimulator, SimulationResult, simulate
from .montecarlo import MonteCarloResult, MonteCarloSimulator, noisy_responses
from .machine import (
    FixedParameters,
    MachineSpec,
    functional_units,
    width_scaling_rows,
)
from .metrics import Metric, derive_metrics

__all__ = [
    "ALU_ENERGY",
    "BatchResult",
    "BranchPenalties",
    "EnergyModel",
    "FixedParameters",
    "HierarchyMissRatios",
    "IntervalSimulator",
    "MachineSpec",
    "Metric",
    "MonteCarloResult",
    "MonteCarloSimulator",
    "SimulationResult",
    "StructureEnergies",
    "array_area",
    "array_read_energy",
    "array_write_energy",
    "branch_penalties",
    "cache_access_energy",
    "cache_area",
    "cam_search_energy",
    "derive_metrics",
    "effective_capacity",
    "functional_units",
    "hierarchy_miss_ratios",
    "misses_per_kilo_instruction",
    "noisy_responses",
    "simulate",
]
