"""Detailed trace-driven out-of-order pipeline simulator.

Public surface:

* :class:`PipelineSimulator` — cycle-level simulation of one machine.
* :class:`SetAssociativeCache` / :func:`build_hierarchy` — functional caches.
* :class:`GsharePredictor` / :class:`BranchTargetBuffer` — functional
  branch prediction.
"""

from .cachesim import CacheStats, SetAssociativeCache, build_hierarchy
from .core import PipelineResult, PipelineSimulator, PipelineStats
from .predictor import BranchTargetBuffer, GsharePredictor, PredictorStats
from .report import compare_runs, describe_machine, describe_run, stall_breakdown

__all__ = [
    "BranchTargetBuffer",
    "CacheStats",
    "GsharePredictor",
    "PipelineResult",
    "PipelineSimulator",
    "PipelineStats",
    "PredictorStats",
    "SetAssociativeCache",
    "build_hierarchy",
    "compare_runs",
    "describe_machine",
    "describe_run",
    "stall_breakdown",
]
