"""Serving latency and throughput: the batched inference server under load.

Not a paper artefact — the engineering guarantee behind deploying the
architecture-centric predictor as a service.  A fitted predictor is
published to a throwaway registry, loaded back (the registry round-trip
is part of the measured path's provenance), and served over HTTP; a
multi-threaded load generator then drives concurrent clients and
records per-request latency percentiles and aggregate throughput to
``results/BENCH_serving.json``.

Every response is checked bit-identical against a direct
``predict_invariant`` call, so the numbers describe the *correct*
server, not a fast-but-wrong one.
"""

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import ArchitectureCentricPredictor
from repro.designspace import sample_configurations
from repro.serve import (
    ModelRegistry,
    PredictionClient,
    PredictionServer,
)
from repro.sim import Metric

#: Concurrent client threads (each owns one keep-alive connection).
CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", 16))

#: Requests issued per client thread.
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_SERVE_REQUESTS", 40))

#: Distinct configurations in the request pool; smaller than the total
#: request count so the LRU cache sees a realistic mixed hit/miss load.
UNIQUE_CONFIGS = int(os.environ.get("REPRO_SERVE_UNIQUE", 256))

#: Held-out program whose responses fit the served predictor.
TARGET_PROGRAM = "applu"

RESPONSES = 32


class _ServerThread:
    """A PredictionServer on a private loop thread for the bench."""

    def __init__(self, predictor, **kwargs):
        self._predictor = predictor
        self._kwargs = kwargs
        self._ready = threading.Event()
        self.server = None
        self.loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=120):
            raise RuntimeError("bench server failed to start")

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self.server = PredictionServer(
            self._predictor, port=0, **self._kwargs
        )
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.drain()

    def close(self):
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=120)


def _percentile(samples, q):
    return float(np.percentile(np.asarray(samples), q))


def test_serving_latency(spec_dataset, pools, record_json, tmp_path):
    # -- publish + load: the production provenance path -----------------
    models = pools(Metric.CYCLES).models(exclude=[TARGET_PROGRAM])
    predictor = ArchitectureCentricPredictor(models)
    response_idx, _ = spec_dataset.split_indices(RESPONSES, seed=2007)
    predictor.fit_responses(
        spec_dataset.subset_configs(response_idx),
        spec_dataset.subset_values(
            TARGET_PROGRAM, Metric.CYCLES, response_idx
        ),
    )
    registry = ModelRegistry(tmp_path / "registry")
    publish_start = time.perf_counter()
    record = registry.publish(
        predictor, f"{TARGET_PROGRAM}-cycles", seed=2007, notes="bench"
    )
    publish_seconds = time.perf_counter() - publish_start
    load_start = time.perf_counter()
    served_predictor, _ = registry.load(f"{TARGET_PROGRAM}-cycles")
    load_seconds = time.perf_counter() - load_start

    # A fixed request pool drawn beyond the training sample.
    pool_configs = sample_configurations(
        spec_dataset.simulator.space, UNIQUE_CONFIGS, seed=777
    )
    expected = served_predictor.predict_invariant(pool_configs)

    server = _ServerThread(served_predictor, model_info={
        "name": record.name, "version": record.version,
    })
    try:
        port = server.server.port
        # Warm the connection path once per client thread.
        total = CLIENTS * REQUESTS_PER_CLIENT
        rng = np.random.default_rng(41)
        schedule = rng.integers(0, UNIQUE_CONFIGS, size=total)

        latencies = [None] * total
        mismatches = []

        def client_worker(client_index):
            with PredictionClient("127.0.0.1", port, timeout=60) as client:
                for step in range(REQUESTS_PER_CLIENT):
                    slot = client_index * REQUESTS_PER_CLIENT + step
                    config_index = int(schedule[slot])
                    start = time.perf_counter()
                    value = client.predict_one(pool_configs[config_index])
                    latencies[slot] = time.perf_counter() - start
                    if value != expected[config_index]:
                        mismatches.append(slot)

        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENTS) as executor:
            list(executor.map(client_worker, range(CLIENTS)))
        wall_seconds = time.perf_counter() - wall_start

        with PredictionClient("127.0.0.1", port) as client:
            metrics_text = client.metrics_text()
    finally:
        server.close()

    assert not mismatches, (
        f"{len(mismatches)} served predictions differed from "
        "predict_invariant"
    )
    assert all(sample is not None for sample in latencies)

    batch_lines = {
        line.split()[0]: float(line.split()[-1])
        for line in metrics_text.splitlines()
        if line.startswith(("serve_batch_size_sum", "serve_batch_size_count",
                            "serve_cache_hits", "serve_cache_misses"))
    }
    batch_count = batch_lines.get("serve_batch_size_count", 0.0)
    payload = {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "total_requests": total,
        "unique_configs": UNIQUE_CONFIGS,
        "wall_seconds": wall_seconds,
        "throughput_rps": total / wall_seconds,
        "latency_p50_ms": _percentile(latencies, 50) * 1e3,
        "latency_p95_ms": _percentile(latencies, 95) * 1e3,
        "latency_p99_ms": _percentile(latencies, 99) * 1e3,
        "latency_mean_ms": float(np.mean(latencies)) * 1e3,
        "latency_max_ms": float(np.max(latencies)) * 1e3,
        "mean_batch_size": (
            batch_lines.get("serve_batch_size_sum", 0.0) / batch_count
            if batch_count else None
        ),
        "cache_hits": batch_lines.get("serve_cache_hits"),
        "cache_misses": batch_lines.get("serve_cache_misses"),
        "publish_seconds": publish_seconds,
        "registry_load_seconds": load_seconds,
        "cpu_count": os.cpu_count(),
    }
    record_json("BENCH_serving", payload)

    # Sanity bars, deliberately loose: correctness is asserted above;
    # these only catch a pathologically misconfigured server.
    assert payload["throughput_rps"] > 10
    assert payload["latency_p99_ms"] < 10_000
