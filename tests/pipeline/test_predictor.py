"""Tests for the functional gshare and BTB."""

import pytest

from repro.sim.pipeline import BranchTargetBuffer, GsharePredictor


class TestGshare:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GsharePredictor(1000)

    def test_learns_an_always_taken_branch(self):
        predictor = GsharePredictor(1024)
        pc = 0x400
        for _ in range(8):
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_learns_an_never_taken_branch(self):
        predictor = GsharePredictor(1024)
        pc = 0x400
        for _ in range(8):
            predictor.update(pc, False)
        assert predictor.predict(pc) is False

    def test_update_reports_mispredictions(self):
        predictor = GsharePredictor(1024)
        pc = 0x400
        for _ in range(4):
            predictor.update(pc, False)
        assert predictor.update(pc, True) is True  # mispredicted

    def test_two_bit_hysteresis(self):
        """One contrary outcome must not flip a saturated counter."""
        predictor = GsharePredictor(1024)
        pc = 0x80
        history_probe = []
        for _ in range(8):
            predictor.update(pc, True)
        predictor.update(pc, False)
        # Re-establish the same history the counter saturated under:
        # after many taken updates the history register is all-ones.
        for _ in range(12):
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_stats_counting(self):
        predictor = GsharePredictor(256)
        predictor.update(0, True)
        predictor.update(0, True)
        assert predictor.stats.predictions == 2
        assert 0.0 <= predictor.stats.mispredict_ratio <= 1.0

    def test_learns_a_short_loop_pattern(self):
        """Gshare with history beats a bimodal table on T T T N loops."""
        predictor = GsharePredictor(4096)
        pc = 0x1234
        pattern = [True, True, True, False]
        mispredicts = 0
        for i in range(400):
            outcome = pattern[i % 4]
            mispredicts += predictor.update(pc, outcome)
        # After warmup the pattern is fully predictable.
        late = 0
        for i in range(400, 600):
            late += predictor.update(pc, pattern[i % 4])
        assert late / 200 < 0.10


class TestBtb:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(3000)

    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(1024)
        assert btb.lookup(0x400) is None
        btb.update(0x400, 0x900)
        assert btb.lookup(0x400) == 0x900

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(16)
        btb.update(0x0, 0x100)
        btb.update(16 * 4, 0x200)  # same index, different tag
        assert btb.lookup(0x0) is None
        assert btb.lookup(16 * 4) == 0x200

    def test_stats(self):
        btb = BranchTargetBuffer(16)
        btb.lookup(0)
        btb.update(0, 1)
        btb.lookup(0)
        assert btb.stats.btb_lookups == 2
        assert btb.stats.btb_misses == 1
