"""Tests for the analytic branch model."""

import numpy as np
import pytest

from repro.sim import branch_penalties
from repro.workloads import BranchBehaviour


@pytest.fixture()
def behaviour() -> BranchBehaviour:
    return BranchBehaviour(
        floor=0.05, scale=0.05, alpha=0.5, btb_floor=0.01,
        btb_scale=0.02, taken_fraction=0.65, static_branches=128,
    )


class TestBranchPenalties:
    def test_mispredicts_scale_with_branch_fraction(self, behaviour):
        low = branch_penalties(behaviour, 0.05, 16384, 4096)
        high = branch_penalties(behaviour, 0.20, 16384, 4096)
        assert float(high.mispredicts_per_instruction) == pytest.approx(
            4 * float(low.mispredicts_per_instruction)
        )

    def test_bigger_gshare_reduces_mispredicts(self, behaviour):
        sizes = np.array([1024, 4096, 16384, 32768])
        penalties = branch_penalties(behaviour, 0.14, sizes, 4096)
        assert np.all(np.diff(penalties.mispredicts_per_instruction) < 0)

    def test_bigger_btb_reduces_bubbles(self, behaviour):
        small = branch_penalties(behaviour, 0.14, 16384, 1024)
        large = branch_penalties(behaviour, 0.14, 16384, 4096)
        assert float(large.btb_bubbles_per_instruction) < float(
            small.btb_bubbles_per_instruction
        )

    def test_btb_bubbles_only_for_taken(self, behaviour):
        penalties = branch_penalties(behaviour, 0.14, 16384, 4096)
        assert float(penalties.btb_bubbles_per_instruction) <= (
            0.14 * behaviour.taken_fraction
        )

    def test_invalid_branch_fraction_rejected(self, behaviour):
        with pytest.raises(ValueError):
            branch_penalties(behaviour, 1.2, 16384, 4096)

    def test_vectorised_over_sizes(self, behaviour):
        sizes = np.array([1024, 32768])
        penalties = branch_penalties(behaviour, 0.14, sizes, 4096)
        assert penalties.mispredict_rate.shape == (2,)
