"""Tests for individual design parameters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.designspace.parameters import Parameter, geometric_grid, linear_grid


class TestGrids:
    def test_linear_grid(self):
        assert linear_grid(32, 160, 8) == tuple(range(32, 161, 8))

    def test_linear_grid_endpoints(self):
        grid = linear_grid(8, 80, 8)
        assert grid[0] == 8 and grid[-1] == 80 and len(grid) == 10

    def test_linear_grid_off_grid_stop_rejected(self):
        with pytest.raises(ValueError):
            linear_grid(8, 81, 8)

    def test_linear_grid_bad_step_rejected(self):
        with pytest.raises(ValueError):
            linear_grid(8, 80, 0)

    def test_geometric_grid(self):
        assert geometric_grid(1024, 32768) == (
            1024, 2048, 4096, 8192, 16384, 32768,
        )

    def test_geometric_grid_unreachable_stop_rejected(self):
        with pytest.raises(ValueError):
            geometric_grid(1024, 3000)

    def test_geometric_grid_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            geometric_grid(8, 64, factor=1)


class TestParameter:
    def _width(self) -> Parameter:
        return Parameter("width", "Pipeline width", (2, 4, 6, 8), 4, "insns")

    def test_cardinality(self):
        assert self._width().cardinality == 4

    def test_min_max(self):
        parameter = self._width()
        assert parameter.minimum == 2
        assert parameter.maximum == 8

    def test_index_of(self):
        assert self._width().index_of(6) == 2

    def test_index_of_off_grid_rejected(self):
        with pytest.raises(ValueError, match="not a legal value"):
            self._width().index_of(5)

    def test_baseline_must_be_on_grid(self):
        with pytest.raises(ValueError, match="not .* grid"):
            Parameter("width", "w", (2, 4, 6, 8), 5)

    def test_values_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Parameter("width", "w", (4, 2), 4)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Parameter("width", "w", (), 4)

    def test_encode_uses_divisor(self):
        gshare = Parameter(
            "gshare_size", "Gshare", (1024, 2048), 1024,
            encoding_divisor=1024,
        )
        assert gshare.encode(2048) == 2.0

    def test_encode_validates(self):
        with pytest.raises(ValueError):
            self._width().encode(5)

    def test_decode_snaps_to_grid(self):
        assert self._width().decode(4.9) == 4
        assert self._width().decode(5.1) == 6

    def test_describe_linear_range(self):
        rob = Parameter("rob_size", "ROB", tuple(range(32, 161, 8)), 96)
        assert rob.describe_range() == "32-160 : 8"

    def test_describe_geometric_range(self):
        l2 = Parameter("l2", "L2", (256, 512, 1024), 512)
        assert l2.describe_range() == "256-1024 : x2"

    def test_describe_irregular_range(self):
        p = Parameter("p", "P", (1, 2, 5), 2)
        assert p.describe_range() == "1,2,5"

    def test_describe_single_value(self):
        p = Parameter("p", "P", (7,), 7)
        assert p.describe_range() == "7"

    @given(st.integers(min_value=0, max_value=3))
    def test_encode_decode_roundtrip(self, index):
        parameter = self._width()
        value = parameter.values[index]
        assert parameter.decode(parameter.encode(value)) == value
