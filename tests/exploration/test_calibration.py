"""Tests for the budget-surrogate calibration."""

import numpy as np
import pytest

from repro.exploration import AccuracyModel, fit_accuracy_model
from repro.exploration.calibration import measure_operating_points
from repro.sim import Metric


class TestAccuracyModel:
    def test_monotone_in_all_axes(self):
        model = AccuracyModel(
            base=4.0, training_coefficient=50.0, pool_coefficient=25.0,
            response_coefficient=30.0, residual_rmse=0.5, measurements=6,
        )
        assert model.expected_rmae(512, 10, 32) < model.expected_rmae(64, 10, 32)
        assert model.expected_rmae(512, 20, 32) < model.expected_rmae(512, 5, 32)
        assert model.expected_rmae(512, 10, 64) < model.expected_rmae(512, 10, 8)

    def test_invalid_operating_point_rejected(self):
        model = AccuracyModel(4.0, 50.0, 25.0, 30.0, 0.5, 6)
        with pytest.raises(ValueError):
            model.expected_rmae(1, 10, 32)


class TestFitting:
    @pytest.fixture(scope="class")
    def fitted(self, small_dataset):
        # Tiny designed measurement over the 6-program fixture suite.
        points = ((64, 3, 8), (64, 4, 32), (256, 3, 32), (256, 4, 8),
                  (400, 3, 16))
        return fit_accuracy_model(
            small_dataset, Metric.CYCLES, points=points, seed=1
        )

    def test_fit_reports_residual(self, fitted):
        assert fitted.residual_rmse >= 0.0
        assert fitted.measurements == 5

    def test_fitted_model_predicts_measurements_roughly(self, fitted,
                                                        small_dataset):
        measured = measure_operating_points(
            small_dataset, Metric.CYCLES, [(256, 4, 8)], seed=1
        )[0]
        predicted = fitted.expected_rmae(256, 4, 8)
        assert abs(predicted - measured) < max(6.0, 0.6 * measured)

    def test_too_few_points_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="four"):
            fit_accuracy_model(
                small_dataset, Metric.CYCLES,
                points=((64, 3, 8), (256, 3, 8)),
            )

    def test_oversized_pool_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="pool_size"):
            measure_operating_points(
                small_dataset, Metric.CYCLES,
                [(64, len(small_dataset.programs), 8)],
            )
