"""Trace-driven out-of-order superscalar pipeline simulator.

The detailed counterpart to :mod:`repro.sim.interval`: a cycle-by-cycle
model of the machine of Tables 1 and 2 — fetch through a real I-cache
and real gshare/BTB, rename against a finite physical register file,
dispatch into ROB/IQ/LSQ, oldest-first issue limited by register-file
read ports, functional units and D-cache ports, write-back limited by
register-file write ports, and in-order commit.

Modelling simplifications (standard for trace-driven simulators, and
documented here so the fidelity ablation is honest):

* By default wrong-path instructions are not fetched; a mispredicted
  branch stalls fetch from the following instruction until it resolves,
  then charges the front-end redirect penalty, and wrong-path *energy*
  is charged statistically from the misprediction count.  With
  ``wrong_path=True`` the simulator instead keeps fetching down the
  wrong path (using upcoming trace instructions as statistically
  faithful stand-ins): phantom instructions consume fetch/rename/issue
  resources, pollute the caches and burn measured energy until the
  branch resolves and they are squashed — at which point the rename
  state is restored from a checkpoint.
* Stores retire through a store buffer: they access the cache hierarchy
  for miss statistics but complete in one cycle on the critical path.
* Both register files share one rename pool (the trace uses a unified
  logical register namespace).
* Loads that miss the L1 occupy an MSHR until their data returns;
  when all MSHRs are busy further memory operations cannot issue, so
  memory-level parallelism is genuinely bounded by the MSHR count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.designspace.configuration import Configuration
from repro.sim.energy import EnergyModel
from repro.sim.machine import FixedParameters, MachineSpec, functional_units
from repro.workloads.tracegen import OpClass, TraceInstruction

#: Cycles without a commit after which the simulator declares a hang.
_DEADLOCK_LIMIT = 20000


@dataclass
class _Op:
    """In-flight state of one instruction."""

    __slots__ = (
        "instr",
        "seq",
        "producers",
        "completed",
        "issued",
        "result_cycle",
        "mispredicted",
        "btb_missed",
        "wrong_path",
    )

    instr: TraceInstruction
    seq: int
    producers: List["_Op"]
    completed: bool
    issued: bool
    result_cycle: int
    mispredicted: bool
    btb_missed: bool
    wrong_path: bool

    @property
    def has_dest(self) -> bool:
        return self.instr.dest is not None

    @property
    def is_memory(self) -> bool:
        return self.instr.op.is_memory

    def ready(self) -> bool:
        """All source operands produced?"""
        return all(producer.completed for producer in self.producers)


@dataclass
class PipelineStats:
    """Counters accumulated over a simulation run."""

    cycles: int = 0
    committed: int = 0
    dispatched: int = 0
    issued: int = 0
    rf_reads: int = 0
    rf_writes: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    btb_misses: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    alu_ops: Dict[str, int] = field(default_factory=dict)
    stall_cycles: Dict[str, int] = field(default_factory=dict)
    wrong_path_fetched: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def mispredict_ratio(self) -> float:
        """Mispredictions per executed branch."""
        if self.branches == 0:
            return 0.0
        return self.mispredicts / self.branches


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one pipeline simulation."""

    cycles: int
    energy: float
    stats: PipelineStats

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def ed(self) -> float:
        """Energy-delay product."""
        return self.energy * self.cycles

    @property
    def edd(self) -> float:
        """Energy-delay-squared product."""
        return self.energy * self.cycles * self.cycles


class PipelineSimulator:
    """Cycle-level simulator of one machine configuration."""

    def __init__(
        self,
        config: Configuration,
        fixed: Optional[FixedParameters] = None,
        wrong_path: bool = False,
    ) -> None:
        from .cachesim import build_hierarchy
        from .predictor import BranchTargetBuffer, GsharePredictor

        self.wrong_path = wrong_path
        self.spec = MachineSpec(config, fixed or FixedParameters())
        fixed = self.spec.fixed
        self.caches = build_hierarchy(
            config.icache_kb,
            config.dcache_kb,
            config.l2cache_kb,
            l1_line_bytes=fixed.l1_line_bytes,
            l2_line_bytes=fixed.l2_line_bytes,
            l1_associativity=fixed.l1_associativity,
            l2_associativity=fixed.l2_associativity,
            l1_latency=fixed.l1_latency,
            l2_latency=fixed.l2_latency,
            memory_latency=fixed.memory_latency,
        )
        self.gshare = GsharePredictor(config.gshare_size)
        self.btb = BranchTargetBuffer(config.btb_size)
        self.units = functional_units(config.width)
        self._latency = {
            OpClass.INT_ALU: fixed.int_alu_latency,
            OpClass.INT_MUL: fixed.int_mul_latency,
            OpClass.FP_ALU: fixed.fp_alu_latency,
            OpClass.FP_MUL: fixed.fp_mul_latency,
            OpClass.BRANCH: fixed.int_alu_latency,
            OpClass.STORE: 1,
        }
        self._fu_class = {
            OpClass.INT_ALU: "int_alu",
            OpClass.INT_MUL: "int_mul",
            OpClass.FP_ALU: "fp_alu",
            OpClass.FP_MUL: "fp_mul",
            OpClass.BRANCH: "int_alu",
            OpClass.LOAD: "int_alu",
            OpClass.STORE: "int_alu",
        }

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Sequence[TraceInstruction],
        warmup: int = 0,
    ) -> PipelineResult:
        """Simulate the trace to completion and account energy.

        Args:
            trace: Dynamic instruction stream.
            warmup: Number of leading instructions used only to warm the
                caches and predictors (the paper warms for 10 M
                instructions before each SimPoint interval); counters and
                cycles reported cover the remaining instructions.
        """
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        if not 0 <= warmup < len(trace):
            raise ValueError("warmup must leave at least one measured instruction")
        config = self.spec.configuration
        fixed = self.spec.fixed
        stats = PipelineStats()
        width = config.width
        rename_pool = self.spec.rename_registers
        if rename_pool < 1:
            raise ValueError("register file leaves no rename registers")

        rob: List[_Op] = []
        iq: List[_Op] = []
        executing: List[_Op] = []
        fetch_buffer: List[_Op] = []
        # Outstanding L1 misses: (completion cycle) per busy MSHR.
        mshrs: List[int] = []
        lsq_used = 0
        branches_used = 0
        regs_free = rename_pool
        # Maps logical register -> in-flight producing op (None = in RF).
        rename_map: Dict[int, Optional[_Op]] = {}

        next_fetch = 0  # trace index of the next instruction to fetch
        fetch_resume = 0  # earliest cycle fetch may proceed
        fetch_block: Optional[_Op] = None  # unresolved mispredicted branch
        # Wrong-path episode state (wrong_path mode only): the
        # mispredicted branch being speculated past, the rename-map
        # checkpoint taken at the mispredict, and the phantom counter.
        speculating_past: Optional[_Op] = None
        rename_checkpoint: Optional[Dict[int, Optional[_Op]]] = None
        phantom_offset = 0
        phantom_seq = len(trace)
        now = 0
        last_commit_cycle = 0
        warm_snapshot: Optional[Dict[str, float]] = None

        while stats.committed < len(trace):
            if warm_snapshot is None and stats.committed >= warmup > 0:
                warm_snapshot = self._snapshot(stats, now)
            # ---------------- commit ----------------------------------
            commits = 0
            while rob and rob[0].completed and commits < width:
                op = rob.pop(0)
                if op.is_memory:
                    lsq_used -= 1
                if op.instr.op is OpClass.BRANCH:
                    branches_used -= 1
                if op.has_dest:
                    regs_free += 1
                    if rename_map.get(op.instr.dest) is op:
                        rename_map[op.instr.dest] = None
                stats.committed += 1
                commits += 1
                last_commit_cycle = now

            # ---------------- MSHR release -----------------------------
            if mshrs:
                mshrs = [cycle for cycle in mshrs if cycle > now]

            # ---------------- writeback -------------------------------
            finished = [op for op in executing if op.result_cycle <= now]
            finished.sort(key=lambda op: op.seq)
            writebacks = 0
            speculation_resolved = False
            for op in finished:
                if op.has_dest:
                    if writebacks >= config.rf_write_ports:
                        op.result_cycle = now + 1  # retry next cycle
                        continue
                    writebacks += 1
                    stats.rf_writes += 1
                executing.remove(op)
                op.completed = True
                if op is fetch_block:
                    fetch_resume = now + fixed.branch_redirect_penalty + 1
                    fetch_block = None
                if op is speculating_past:
                    speculation_resolved = True

            if speculation_resolved:
                # Squash every wrong-path op and restore rename state
                # (done after the write-back loop so its iteration list
                # stays valid).
                released_regs = sum(
                    1 for w in rob if w.wrong_path and w.has_dest
                )
                released_lsq = sum(
                    1 for w in rob if w.wrong_path and w.is_memory
                )
                released_branches = sum(
                    1 for w in rob
                    if w.wrong_path and w.instr.op is OpClass.BRANCH
                )
                rob = [w for w in rob if not w.wrong_path]
                iq = [w for w in iq if not w.wrong_path]
                executing = [w for w in executing if not w.wrong_path]
                fetch_buffer = [w for w in fetch_buffer if not w.wrong_path]
                regs_free += released_regs
                lsq_used -= released_lsq
                branches_used -= released_branches
                rename_map = dict(rename_checkpoint)
                rename_checkpoint = None
                speculating_past = None
                fetch_resume = now + fixed.branch_redirect_penalty + 1

            # ---------------- issue ------------------------------------
            issue_budget = width
            read_port_budget = config.rf_read_ports
            dcache_port_budget = self.units["dcache_ports"]
            fu_budget = dict(self.units)
            # Dispatch appends in program order, so the issue queue
            # is already oldest-first.
            for op in list(iq):
                if issue_budget == 0:
                    break
                if not op.ready():
                    continue
                fu = self._fu_class[op.instr.op]
                reads = len(op.instr.sources)
                if fu_budget[fu] == 0 or read_port_budget < reads:
                    continue
                if op.is_memory and dcache_port_budget == 0:
                    continue
                if (
                    op.is_memory
                    and len(mshrs) >= fixed.mshr_entries
                    and not self.caches["l1d"].lookup(op.instr.address)
                ):
                    # The access would miss but no MSHR is free.
                    continue
                # Issue the operation.
                iq.remove(op)
                op.issued = True
                issue_budget -= 1
                fu_budget[fu] -= 1
                read_port_budget -= reads
                stats.issued += 1
                stats.rf_reads += reads
                if op.is_memory:
                    dcache_port_budget -= 1
                    latency = self.caches["l1d"].access(op.instr.address)
                    if latency > fixed.l1_latency:
                        mshrs.append(now + latency)
                    if op.instr.op is OpClass.STORE:
                        stats.stores += 1
                        latency = self._latency[OpClass.STORE]
                    else:
                        stats.loads += 1
                else:
                    latency = self._latency[op.instr.op]
                if op.instr.op is OpClass.BRANCH and not op.wrong_path:
                    stats.branches += 1
                    mispredicted = self.gshare.update(
                        op.instr.pc, op.instr.taken
                    )
                    op.mispredicted = mispredicted
                    if op.instr.taken:
                        self.btb.update(op.instr.pc, 0)
                    if mispredicted:
                        stats.mispredicts += 1
                stats.alu_ops[fu] = stats.alu_ops.get(fu, 0) + 1
                op.result_cycle = now + max(1, latency)
                executing.append(op)

            # ---------------- rename / dispatch ------------------------
            dispatch_budget = width
            while fetch_buffer and dispatch_budget > 0:
                op = fetch_buffer[0]
                if len(rob) >= config.rob_size or len(iq) >= config.iq_size:
                    break
                if op.is_memory and lsq_used >= config.lsq_size:
                    break
                if (
                    op.instr.op is OpClass.BRANCH
                    and branches_used >= config.max_branches
                ):
                    break
                if op.has_dest and regs_free == 0:
                    break
                fetch_buffer.pop(0)
                # Source renaming: find in-flight producers.
                op.producers = [
                    producer
                    for source in op.instr.sources
                    if (producer := rename_map.get(source)) is not None
                    and not producer.completed
                ]
                if op.has_dest:
                    regs_free -= 1
                    rename_map[op.instr.dest] = op
                if op.is_memory:
                    lsq_used += 1
                if op.instr.op is OpClass.BRANCH:
                    branches_used += 1
                rob.append(op)
                iq.append(op)
                dispatch_budget -= 1
                stats.dispatched += 1

            # ---------------- fetch -------------------------------------
            if (
                self.wrong_path
                and speculating_past is not None
                and now >= fetch_resume
            ):
                # Keep fetching down the wrong path: upcoming trace
                # instructions serve as statistically faithful phantoms
                # (short speculation mostly revisits the same loops).
                fetched = 0
                current_line = -1
                while (
                    fetched < width
                    and len(fetch_buffer) < fixed.fetch_buffer_entries
                ):
                    template = trace[
                        (next_fetch + phantom_offset) % len(trace)
                    ]
                    line = template.pc // fixed.l1_line_bytes
                    if line != current_line:
                        stats.icache_accesses += 1
                        latency = self.caches["l1i"].access(template.pc)
                        current_line = line
                        if latency > fixed.l1_latency:
                            fetch_resume = now + latency
                            break
                    fetch_buffer.append(
                        _Op(
                            instr=template,
                            seq=phantom_seq,
                            producers=[],
                            completed=False,
                            issued=False,
                            result_cycle=-1,
                            mispredicted=False,
                            btb_missed=False,
                            wrong_path=True,
                        )
                    )
                    phantom_seq += 1
                    phantom_offset += 1
                    fetched += 1
                    stats.wrong_path_fetched += 1
            elif (
                fetch_block is None
                and speculating_past is None
                and now >= fetch_resume
                and next_fetch < len(trace)
            ):
                fetched = 0
                current_line = -1
                while (
                    fetched < width
                    and len(fetch_buffer) < fixed.fetch_buffer_entries
                    and next_fetch < len(trace)
                ):
                    instr = trace[next_fetch]
                    line = instr.pc // fixed.l1_line_bytes
                    if line != current_line:
                        stats.icache_accesses += 1
                        latency = self.caches["l1i"].access(instr.pc)
                        current_line = line
                        if latency > fixed.l1_latency:
                            # Fetch stalls for the miss; this line's
                            # instructions arrive when it returns.
                            fetch_resume = now + latency
                            break
                    op = _Op(
                        instr=instr,
                        seq=next_fetch,
                        producers=[],
                        completed=False,
                        issued=False,
                        result_cycle=-1,
                        mispredicted=False,
                        btb_missed=False,
                        wrong_path=False,
                    )
                    next_fetch += 1
                    fetched += 1
                    fetch_buffer.append(op)
                    if instr.op is OpClass.BRANCH:
                        predicted_taken = self.gshare.predict(instr.pc)
                        if predicted_taken != instr.taken:
                            if self.wrong_path:
                                # Speculate past it: checkpoint rename
                                # state and start fetching phantoms.
                                speculating_past = op
                                rename_checkpoint = dict(rename_map)
                                phantom_offset = 0
                                break
                            # Default: block fetch until resolution.
                            fetch_block = op
                            break
                        if instr.taken:
                            target = self.btb.lookup(instr.pc)
                            if target is None:
                                op.btb_missed = True
                                stats.btb_misses += 1
                                fetch_resume = (
                                    now + fixed.branch_redirect_penalty + 1
                                )
                            break  # taken branch ends the fetch group

            # ---------------- stall accounting --------------------------
            if commits == 0:
                if not rob:
                    if fetch_block is not None:
                        reason = "mispredict_block"
                    elif now < fetch_resume:
                        reason = "fetch_miss"
                    else:
                        reason = "fetch_supply"
                else:
                    head = rob[0]
                    if not head.issued:
                        reason = "issue_wait"
                    elif head.is_memory:
                        reason = "memory_wait"
                    else:
                        reason = "execute_wait"
                stats.stall_cycles[reason] = stats.stall_cycles.get(reason, 0) + 1

            now += 1
            if now - last_commit_cycle > _DEADLOCK_LIMIT:
                raise RuntimeError(
                    f"pipeline deadlock at cycle {now}: "
                    f"{stats.committed}/{len(trace)} committed, "
                    f"rob={len(rob)} iq={len(iq)} regs_free={regs_free}"
                )

        stats.cycles = now
        self._harvest_cache_stats(stats)
        if warm_snapshot is not None:
            stats = self._subtract_snapshot(stats, warm_snapshot)
        energy = self._account_energy(stats)
        return PipelineResult(cycles=stats.cycles, energy=energy, stats=stats)

    def run_profile(
        self,
        profile,
        length: int = 40_000,
        warmup: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> PipelineResult:
        """Generate a synthetic trace for ``profile`` and simulate it.

        Args:
            profile: A :class:`~repro.workloads.profile.WorkloadProfile`.
            length: Total trace length in instructions.
            warmup: Warmup instructions (defaults to half the trace).
            seed: Trace seed (defaults to the profile's stable seed).
        """
        from repro.workloads.tracegen import generate_trace

        if warmup is None:
            warmup = length // 2
        trace = generate_trace(profile, length, seed=seed)
        return self.run(trace, warmup=warmup)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _snapshot(self, stats: PipelineStats, now: int) -> Dict[str, float]:
        """Capture counters at the end of warmup."""
        snapshot: Dict[str, float] = {"cycles": now}
        for name in (
            "committed", "dispatched", "issued", "rf_reads", "rf_writes",
            "loads", "stores", "branches", "mispredicts", "btb_misses",
            "icache_accesses", "wrong_path_fetched",
        ):
            snapshot[name] = getattr(stats, name)
        for level in ("l1i", "l1d", "l2"):
            snapshot[f"{level}_accesses"] = self.caches[level].stats.accesses
            snapshot[f"{level}_misses"] = self.caches[level].stats.misses
        snapshot["alu_ops"] = dict(stats.alu_ops)
        snapshot["stall_cycles"] = dict(stats.stall_cycles)
        return snapshot

    def _subtract_snapshot(
        self, stats: PipelineStats, snapshot: Dict[str, float]
    ) -> PipelineStats:
        """Report only the post-warmup portion of the run."""
        measured = PipelineStats()
        measured.cycles = stats.cycles - int(snapshot["cycles"])
        for name in (
            "committed", "dispatched", "issued", "rf_reads", "rf_writes",
            "loads", "stores", "branches", "mispredicts", "btb_misses",
            "icache_accesses", "wrong_path_fetched",
        ):
            setattr(measured, name, getattr(stats, name) - int(snapshot[name]))
        measured.icache_misses = stats.icache_misses - int(snapshot["l1i_misses"])
        measured.dcache_accesses = (
            stats.dcache_accesses - int(snapshot["l1d_accesses"])
        )
        measured.dcache_misses = stats.dcache_misses - int(snapshot["l1d_misses"])
        measured.l2_accesses = stats.l2_accesses - int(snapshot["l2_accesses"])
        measured.l2_misses = stats.l2_misses - int(snapshot["l2_misses"])
        measured.alu_ops = {
            fu: count - snapshot["alu_ops"].get(fu, 0)
            for fu, count in stats.alu_ops.items()
        }
        measured.stall_cycles = {
            reason: count - snapshot["stall_cycles"].get(reason, 0)
            for reason, count in stats.stall_cycles.items()
        }
        return measured

    def _harvest_cache_stats(self, stats: PipelineStats) -> None:
        stats.icache_misses = self.caches["l1i"].stats.misses
        stats.dcache_accesses = self.caches["l1d"].stats.accesses
        stats.dcache_misses = self.caches["l1d"].stats.misses
        stats.l2_accesses = self.caches["l2"].stats.accesses
        stats.l2_misses = self.caches["l2"].stats.misses

    def _account_energy(self, stats: PipelineStats) -> float:
        """Wattch-style energy from the run's activity counters."""
        model = EnergyModel(self.spec)
        if self.wrong_path:
            # Speculative work was executed and counted; no inflation.
            wrong_path = 1.0
        else:
            # Wrong-path inflation estimated from misprediction stalls.
            wrong_path = 1.0 + min(
                1.5, 0.4 * stats.mispredicts * self.spec.configuration.width
                / max(1, stats.committed)
            )
        activity: Dict[str, float] = {
            "icache_access": stats.icache_accesses * wrong_path,
            "gshare_access": 2.0 * stats.branches * wrong_path,
            "btb_access": stats.branches * wrong_path,
            "rename_access": stats.dispatched * wrong_path,
            "rob_write": stats.dispatched * wrong_path,
            "rob_read": stats.committed,
            "iq_write": stats.dispatched * wrong_path,
            "iq_wakeup": stats.issued,
            "rf_read": stats.rf_reads,
            "rf_write": stats.rf_writes,
            "lsq_write": stats.loads + stats.stores,
            "lsq_search": stats.loads,
            "dcache_access": stats.dcache_accesses,
            "l2_access": stats.l2_accesses,
        }
        for fu, count in stats.alu_ops.items():
            activity[fu] = activity.get(fu, 0.0) + count
        return model.total_energy(activity, stats.cycles)
