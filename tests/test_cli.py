"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Reorder buffer" in out
        assert "18,952,704,000" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Integer ALUs" in out


class TestSimulate:
    def test_baseline(self, capsys):
        assert main(["simulate", "--program", "gzip"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "IPC" in out

    def test_override_parameters(self, capsys):
        assert main(
            ["simulate", "--program", "art", "--l2cache-kb", "4096"]
        ) == 0
        assert "l2cache_kb=4096" in capsys.readouterr().out

    def test_mibench_program(self, capsys):
        assert main(["simulate", "--program", "sha"]) == 0

    def test_unknown_program(self, capsys):
        assert main(["simulate", "--program", "doom"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_illegal_configuration(self, capsys):
        code = main(
            ["simulate", "--program", "gzip", "--rob-size", "32",
             "--iq-size", "80"]
        )
        assert code == 2
        assert "illegal" in capsys.readouterr().err


class TestPredict:
    def test_small_scale_run(self, capsys):
        code = main(
            ["predict", "--program", "applu", "--samples", "300",
             "--training-size", "200", "--responses", "24"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "held-out rmae" in out
        assert "correlation" in out

    def test_unknown_program(self, capsys):
        assert main(["predict", "--program", "doom", "--samples", "100"]) == 2


class TestAnalyze:
    def test_spec_analysis(self, capsys):
        assert main(
            ["analyze", "--metric", "cycles", "--samples", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "outliers" in out
        assert "most influential parameters" in out

    def test_bad_metric(self):
        with pytest.raises(ValueError):
            main(["analyze", "--metric", "ipc", "--samples", "100"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlan:
    def test_plan_prints_splits(self, capsys):
        assert main(["plan", "--budget", "2000", "--new-programs", "3"]) == 0
        out = capsys.readouterr().out
        assert "best splits" in out
        assert "expected rmae" in out

    def test_impossible_budget(self, capsys):
        assert main(["plan", "--budget", "5"]) == 1
        assert "no admissible split" in capsys.readouterr().err


class TestFullReport:
    def test_full_report(self, capsys):
        assert main(
            ["analyze", "--metric", "energy", "--samples", "250", "--full"]
        ) == 0
        out = capsys.readouterr().out
        assert "design-space report" in out
        assert "hierarchical clustering" in out
        assert "main effects" in out


class TestCheckpointResume:
    def _partial_checkpoint(self, checkpoint_dir, cells):
        """Simulate an interrupted campaign: run only ``cells`` chunks."""
        from repro.designspace import sample_configurations
        from repro.runtime import CampaignRunner, IntervalBackend
        from repro.sim import IntervalSimulator
        from repro.workloads import spec2000_suite

        simulator = IntervalSimulator()
        configs = sample_configurations(simulator.space, 200, seed=0)
        runner = CampaignRunner(
            IntervalBackend(simulator), checkpoint_dir, chunk_size=64
        )
        partial = runner.run(
            [spec2000_suite()["gzip"]], configs, max_cells=cells
        )
        assert not partial.complete
        return partial

    def test_simulate_interrupt_then_resume(self, tmp_path, capsys):
        """A killed campaign resumes from the journal: only the
        unfinished chunks are re-simulated."""
        checkpoint = tmp_path / "ck"
        self._partial_checkpoint(checkpoint, cells=2)

        code = main(
            ["simulate", "--program", "gzip", "--samples", "200",
             "--chunk-size", "64", "--checkpoint-dir", str(checkpoint),
             "--resume"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 resumed" in out
        assert "2 chunk(s) simulated" in out  # 4 cells total, 2 were done
        assert "cycles" in out

    def test_resume_matches_uninterrupted_run(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck"
        self._partial_checkpoint(checkpoint, cells=1)
        assert main(
            ["simulate", "--program", "gzip", "--samples", "200",
             "--chunk-size", "64", "--checkpoint-dir", str(checkpoint),
             "--resume"]
        ) == 0
        resumed_out = capsys.readouterr().out

        assert main(
            ["simulate", "--program", "gzip", "--samples", "200",
             "--chunk-size", "64",
             "--checkpoint-dir", str(tmp_path / "fresh")]
        ) == 0
        fresh_out = capsys.readouterr().out
        # identical metric lines (only the campaign accounting differs)
        assert resumed_out.splitlines()[1:] == fresh_out.splitlines()[1:]

    def test_existing_checkpoint_requires_resume_flag(self, tmp_path,
                                                      capsys):
        checkpoint = tmp_path / "ck"
        self._partial_checkpoint(checkpoint, cells=1)
        code = main(
            ["simulate", "--program", "gzip", "--samples", "200",
             "--chunk-size", "64", "--checkpoint-dir", str(checkpoint)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--resume" in err

    def test_explore_reuses_checkpointed_offline_build(self, tmp_path,
                                                       capsys):
        checkpoint = tmp_path / "offline"
        argv = ["explore", "--program", "applu", "--metric", "cycles",
                "--samples", "300", "--training-size", "200",
                "--candidates", "200",
                "--checkpoint-dir", str(checkpoint)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 resumed" in first

        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 chunk(s) simulated" in second  # everything came from disk
        assert "verdict" in second


class TestTelemetry:
    """--metrics-out / --trace-out / --log-level on the heavy commands."""

    @pytest.fixture(autouse=True)
    def _fresh_telemetry(self):
        """Isolate each test from spans/counters other tests left in the
        process-global tracer and registry (exports are cumulative by
        design)."""
        from repro.obs import scoped_registry, scoped_tracer

        with scoped_registry(), scoped_tracer():
            yield

    def _simulate_argv(self, tmp_path, *extra):
        return [
            "simulate", "--program", "gzip", "--samples", "64",
            "--chunk-size", "32", "--checkpoint-dir", str(tmp_path / "ck"),
            *extra,
        ]

    def test_metrics_out_json(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(
            self._simulate_argv(tmp_path, "--metrics-out", str(metrics_path))
        ) == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["campaign.cells.simulated"]["value"] >= 2
        assert metrics["retry.attempts"]["value"] >= 2
        assert metrics["campaign.chunk.seconds"]["kind"] == "histogram"
        assert str(metrics_path) in capsys.readouterr().err

    def test_metrics_out_prometheus(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        assert main(
            self._simulate_argv(tmp_path, "--metrics-out", str(metrics_path))
        ) == 0
        text = metrics_path.read_text()
        assert "# TYPE campaign_cells_simulated counter" in text
        assert "campaign_chunk_seconds_bucket" in text

    def test_trace_out_chrome_format(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            self._simulate_argv(tmp_path, "--trace-out", str(trace_path))
        ) == 0
        events = json.loads(trace_path.read_text())
        names = {event["name"] for event in events}
        assert "campaign.run" in names
        assert "simulate.chunk" in names
        assert all(event["ph"] == "X" for event in events)

    def test_log_level_debug_emits_structured_lines(self, tmp_path, capsys):
        assert main(
            self._simulate_argv(tmp_path, "--log-level", "debug")
        ) == 0
        err = capsys.readouterr().err
        assert "campaign start" in err
        assert "journalled cell" in err

    def test_default_log_level_is_quiet(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert main(self._simulate_argv(tmp_path)) == 0
        assert "campaign start" not in capsys.readouterr().err

    def test_run_manifest_written_next_to_checkpoint(self, tmp_path, capsys):
        assert main(self._simulate_argv(tmp_path)) == 0
        manifest = json.loads(
            (tmp_path / "ck" / "run_manifest.json").read_text()
        )
        assert manifest["run"]["kind"] == "campaign"
        assert manifest["run"]["simulated_cells"] == 2
        assert manifest["timing"]["simulate.chunk"]["count"] == 2

    def test_parallel_resume_trace_matches_journal(self, tmp_path, capsys):
        """The acceptance scenario at the CLI: a resumed --jobs 2 run's
        trace and manifest agree with the journal."""
        from repro.runtime import CampaignJournal

        checkpoint = tmp_path / "ck"
        assert main(
            ["simulate", "--program", "gzip", "--samples", "64",
             "--chunk-size", "16", "--checkpoint-dir", str(checkpoint)]
        ) == 0
        capsys.readouterr()

        trace_path = tmp_path / "trace.json"
        assert main(
            ["simulate", "--program", "gzip", "--samples", "64",
             "--chunk-size", "16", "--checkpoint-dir", str(checkpoint),
             "--resume", "--jobs", "2", "--trace-out", str(trace_path)]
        ) == 0
        journal = CampaignJournal(checkpoint / "journal.jsonl")
        events = json.loads(trace_path.read_text())
        resumes = [e for e in events if e["name"] == "resume.chunk"]
        # the second run resumed every journalled cell and simulated none
        assert len(resumes) == len(journal.records()) == 4
        manifest = json.loads(
            (checkpoint / "run_manifest.json").read_text()
        )
        assert manifest["run"]["resumed_cells"] == 4
        assert manifest["run"]["simulated_cells"] == 0
        assert manifest["run"]["journal_records"] == 4

    def test_predict_takes_telemetry_options(self, tmp_path, capsys):
        metrics_path = tmp_path / "predict.json"
        code = main(
            ["predict", "--program", "applu", "--samples", "300",
             "--training-size", "200", "--responses", "24",
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["train.models"]["value"] >= 25
        assert metrics["predict.configs"]["value"] > 0


class TestExplore:
    def test_explore_spec_program(self, capsys):
        code = main(
            ["explore", "--program", "applu", "--metric", "cycles",
             "--samples", "300", "--training-size", "200",
             "--candidates", "400"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "sweet spots" in out

    def test_explore_unknown_program(self, capsys):
        assert main(
            ["explore", "--program", "doom", "--samples", "100"]
        ) == 2


class TestPublish:
    def test_publish_creates_registry_entry(self, tmp_path, capsys):
        registry_dir = tmp_path / "registry"
        code = main(
            ["publish", "--registry", str(registry_dir),
             "--program", "applu", "--samples", "300",
             "--training-size", "200", "--responses", "24"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "published" in out
        assert "applu-cycles v1" in out
        assert "artifact sha256" in out
        version_dir = registry_dir / "applu-cycles" / "v0001"
        assert (version_dir / "artifact.npz").is_file()
        assert (version_dir / "record.json").is_file()

    def test_publish_unknown_program(self, tmp_path, capsys):
        code = main(
            ["publish", "--registry", str(tmp_path / "r"),
             "--program", "doom", "--samples", "100"]
        )
        assert code == 2


class TestServeArguments:
    def test_serve_needs_a_model_source(self, capsys):
        assert main(["serve"]) == 2
        assert "--artifact" in capsys.readouterr().err

    def test_serve_missing_artifact(self, tmp_path, capsys):
        code = main(["serve", "--artifact", str(tmp_path / "no.npz")])
        assert code == 2
        assert "cannot load artifact" in capsys.readouterr().err

    def test_serve_unknown_registry_model(self, tmp_path, capsys):
        code = main(
            ["serve", "--registry", str(tmp_path / "empty"),
             "--model", "ghost"]
        )
        assert code == 2
        assert "cannot load model" in capsys.readouterr().err

    def test_serve_rejects_zero_workers(self, tmp_path, capsys):
        code = main(
            ["serve", "--artifact", str(tmp_path / "no.npz"),
             "--workers", "0"]
        )
        assert code == 2
        assert "at least one worker" in capsys.readouterr().err


class TestLoadArguments:
    def test_load_missing_plan_file(self, tmp_path, capsys):
        code = main(
            ["load", "--plan", str(tmp_path / "no-plan.json"),
             "--target", "127.0.0.1:8000"]
        )
        assert code == 2
        assert "load plan error" in capsys.readouterr().err

    def test_load_invalid_plan_rejected(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 1, "stages": [{"name": "s", "duration": 1.0}]}
        ))
        code = main(
            ["load", "--plan", str(path),
             "--target", "127.0.0.1:8000"]
        )
        assert code == 2
        assert "load plan error" in capsys.readouterr().err

    def test_load_unreachable_target_fails_fast(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 1,
            "stages": [{"name": "s", "duration": 1.0, "rate": 5.0}],
        }))
        # A port from the dynamic range with nothing listening.
        code = main(
            ["load", "--plan", str(path),
             "--target", "127.0.0.1:1", "--timeout", "2"]
        )
        assert code == 2
        assert "not healthy" in capsys.readouterr().err


class TestServeSigterm:
    """End to end: serve a saved artifact in a subprocess, answer a
    request, SIGTERM it, and check the graceful path ran — clean exit
    (the loop's handler drains instead of dying) with metrics and
    manifest flushed on the way out."""

    def test_sigterm_drains_and_flushes(self, tmp_path, cycles_pool,
                                        small_dataset):
        import os
        import pathlib
        import signal
        import subprocess
        import sys as _sys
        import time

        import repro
        from repro.core import ArchitectureCentricPredictor, save_predictor
        from repro.serve import PredictionClient
        from repro.sim import Metric

        models = cycles_pool.models(exclude=["gzip"])
        predictor = ArchitectureCentricPredictor(models)
        idx, _ = small_dataset.split_indices(24, seed=5)
        predictor.fit_responses(
            small_dataset.subset_configs(idx),
            small_dataset.subset_values("gzip", Metric.CYCLES, idx),
        )
        artifact = save_predictor(predictor, tmp_path / "fitted.npz")

        metrics_out = tmp_path / "serve_metrics.json"
        manifest_out = tmp_path / "serve_manifest.json"
        stderr_log = tmp_path / "serve_stderr.log"
        src_dir = pathlib.Path(repro.__file__).resolve().parents[1]
        env = {**os.environ, "PYTHONPATH": str(src_dir)}

        with open(stderr_log, "wb") as log:
            process = subprocess.Popen(
                [_sys.executable, "-m", "repro", "serve",
                 "--artifact", str(artifact), "--port", "0",
                 "--metrics-out", str(metrics_out),
                 "--manifest-out", str(manifest_out)],
                stderr=log, env=env,
            )
        try:
            port = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                text = stderr_log.read_text(encoding="utf-8",
                                            errors="replace")
                if "serving on http://" in text:
                    address = text.split("serving on http://")[1]
                    port = int(address.split()[0].rsplit(":", 1)[1])
                    break
                assert process.poll() is None, text
                time.sleep(0.2)
            assert port is not None, "server never reported ready"

            with PredictionClient("127.0.0.1", port, timeout=30) as client:
                value = client.predict_one({"width": 4})
                assert value > 0

            process.send_signal(signal.SIGTERM)
            # The serve loop turns SIGTERM into a graceful drain and a
            # normal return, so the process exits 0 (not 143).
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        metrics = json.loads(metrics_out.read_text(encoding="utf-8"))
        assert metrics["serve.requests{status=200}"]["value"] >= 1
        manifest = json.loads(manifest_out.read_text(encoding="utf-8"))
        assert manifest["run"]["kind"] == "serve"
        assert manifest["run"]["model"]["artifact"] == str(artifact)


class TestVersion:
    def test_version_flag_prints_version_and_sha(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert f"repro {__version__}" in out
        assert "git" in out

    def test_startup_provenance_log_line(self, capsys):
        # Every subcommand logs its version + git sha at startup when
        # structured logging is enabled.
        assert main(["plan", "--budget", "600"]) == 0
        # plan has no --log-level option, so nothing was configured;
        # run a telemetry-capable command with logging on instead.
        from repro import __version__
        from repro.obs import scoped_registry, scoped_tracer

        with scoped_registry(), scoped_tracer():
            assert main(
                ["simulate", "--program", "gzip", "--log-level", "info"]
            ) == 0
        err = capsys.readouterr().err
        assert __version__ in err
        assert "cli.start" in err or "repro" in err


class TestDistributedCli:
    """Coordinator + worker over loopback, driven through main()."""

    @pytest.fixture(autouse=True)
    def _isolate_telemetry(self):
        from repro.obs import scoped_registry, scoped_tracer

        with scoped_registry(), scoped_tracer():
            yield

    @staticmethod
    def _free_port() -> int:
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]

    def test_distributed_flag_requires_checkpoint_dir(self, capsys):
        code = main(
            ["simulate", "--program", "gzip",
             "--distributed", "127.0.0.1:7650"]
        )
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_coordinator_requires_checkpoint_dir(self, capsys):
        assert main(["coordinator", "--program", "gzip"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_worker_bad_address_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker", "--connect", "nonsense"])

    def test_worker_gives_up_when_no_coordinator(self, capsys):
        port = self._free_port()
        code = main(
            ["worker", "--connect", f"127.0.0.1:{port}",
             "--connect-timeout", "0.3"]
        )
        assert code == 1
        assert "could not reach coordinator" in capsys.readouterr().err

    def test_coordinator_and_worker_complete_a_campaign(
        self, tmp_path, capsys
    ):
        import threading

        port = self._free_port()
        checkpoint = tmp_path / "ckpt"
        outcome = {}

        def run_coordinator():
            outcome["code"] = main(
                ["coordinator", "--checkpoint-dir", str(checkpoint),
                 "--program", "gzip", "--samples", "48",
                 "--chunk-size", "16", "--port", str(port)]
            )

        thread = threading.Thread(target=run_coordinator, daemon=True)
        thread.start()
        worker_code = main(["worker", "--connect", f"127.0.0.1:{port}"])
        thread.join(timeout=120)
        assert not thread.is_alive(), "coordinator never finished"
        assert outcome["code"] == 0
        assert worker_code == 0
        out = capsys.readouterr().out
        assert "3 chunk(s) simulated" in out
        assert "worker    : 3 chunk(s) completed" in out
        assert (checkpoint / "journal.jsonl").exists()
        assert (checkpoint / "run_manifest.json").exists()

    def test_simulate_distributed_matches_serial_journal(
        self, tmp_path, capsys
    ):
        import json as json_module
        import threading

        def journal_sums(path):
            return {
                record["cell"]: record["checksum"]
                for record in (
                    json_module.loads(line)
                    for line in path.read_text().splitlines()
                )
                if "cell" in record
            }

        serial_ckpt = tmp_path / "serial"
        assert main(
            ["simulate", "--program", "gzip", "--samples", "48",
             "--chunk-size", "16", "--checkpoint-dir", str(serial_ckpt)]
        ) == 0

        port = self._free_port()
        dist_ckpt = tmp_path / "dist"
        outcome = {}

        def run_distributed():
            outcome["code"] = main(
                ["simulate", "--program", "gzip", "--samples", "48",
                 "--chunk-size", "16", "--checkpoint-dir", str(dist_ckpt),
                 "--distributed", f"127.0.0.1:{port}"]
            )

        thread = threading.Thread(target=run_distributed, daemon=True)
        thread.start()
        assert main(["worker", "--connect", f"127.0.0.1:{port}"]) == 0
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert outcome["code"] == 0
        assert journal_sums(dist_ckpt / "journal.jsonl") == journal_sums(
            serial_ckpt / "journal.jsonl"
        )
