"""Saving and loading trained offline pools.

Offline training is the architecture-centric workflow's one-off expense
(N programs x T simulations plus N network trainings); a production
user trains once and ships the pool.  A pool serialises to a single
``.npz`` archive of network weights and scaler state; loading restores
ready-to-use :class:`ProgramSpecificPredictor` objects without touching
a simulator.
"""

from __future__ import annotations

import pathlib
from typing import List, Sequence, Union

import numpy as np

from repro.designspace.space import DesignSpace
from repro.ml.mlp import MultilayerPerceptron
from repro.sim.metrics import Metric

from .program_model import ProgramSpecificPredictor

_FORMAT_VERSION = 1


def save_models(
    models: Sequence[ProgramSpecificPredictor],
    path: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Serialise trained program models to one ``.npz`` archive."""
    if not models:
        raise ValueError("at least one trained model is required")
    metrics = {model.metric for model in models}
    if len(metrics) != 1:
        raise ValueError("all models must target the same metric")
    path = pathlib.Path(path)
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "metric": np.array(models[0].metric.value),
        "programs": np.array([model.program for model in models]),
        "log_target": np.array([model.log_target for model in models]),
        "training_sizes": np.array(
            [model.training_size_ for model in models]
        ),
    }
    for index, model in enumerate(models):
        weights = model._network.get_weights()
        for name, array in weights.items():
            payload[f"model{index}_{name}"] = array
    np.savez_compressed(path, **payload)
    return path


def load_models(
    path: Union[str, pathlib.Path],
    space: DesignSpace | None = None,
) -> List[ProgramSpecificPredictor]:
    """Restore program models saved by :func:`save_models`.

    Args:
        path: The ``.npz`` archive.
        space: Design space for configuration encoding (defaults to the
            full Table 1 space; pass the same restricted space the pool
            was trained on, if any).
    """
    path = pathlib.Path(path)
    space = space if space is not None else DesignSpace()
    models: List[ProgramSpecificPredictor] = []
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported pool format version {version}")
        metric = Metric.from_name(str(archive["metric"]))
        programs = [str(name) for name in archive["programs"]]
        log_targets = archive["log_target"]
        training_sizes = archive["training_sizes"]
        for index, program in enumerate(programs):
            predictor = ProgramSpecificPredictor(
                space=space,
                metric=metric,
                program=program,
                log_target=bool(log_targets[index]),
            )
            weights = {
                name: archive[f"model{index}_{name}"]
                for name in (
                    "hidden_weights", "hidden_bias", "output_weights",
                    "output_bias", "x_mean", "x_scale", "y_mean", "y_scale",
                )
            }
            network = MultilayerPerceptron()
            network.set_weights(weights)
            predictor._network = network
            predictor._trained = True
            predictor.training_size_ = int(training_sizes[index])
            models.append(predictor)
    return models
