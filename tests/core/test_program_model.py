"""Tests for the program-specific predictor."""

import numpy as np
import pytest

from repro.core import ProgramSpecificPredictor
from repro.sim import Metric


@pytest.fixture(scope="module")
def trained(small_dataset):
    idx, _ = small_dataset.split_indices(256, seed=3)
    predictor = ProgramSpecificPredictor(
        space=small_dataset.simulator.space,
        metric=Metric.CYCLES,
        program="gzip",
        seed=1,
    )
    predictor.fit(
        small_dataset.subset_configs(idx),
        small_dataset.subset_values("gzip", Metric.CYCLES, idx),
    )
    return predictor, idx


class TestTraining:
    def test_predictions_positive(self, trained, small_dataset):
        predictor, _ = trained
        predictions = predictor.predict(list(small_dataset.configs[:50]))
        assert np.all(predictions > 0)

    def test_training_fit_is_tight(self, trained, small_dataset):
        predictor, idx = trained
        from repro.ml import rmae
        predictions = predictor.predict(small_dataset.subset_configs(idx))
        actual = small_dataset.subset_values("gzip", Metric.CYCLES, idx)
        assert rmae(predictions, actual) < 15.0

    def test_generalisation_reasonable(self, trained, small_dataset):
        # gzip has the suite's hardest surface (misprediction-dominated
        # with a small dynamic range); at T=256 a modest positive
        # correlation is the realistic bar.
        predictor, idx = trained
        from repro.ml import correlation
        rest = [i for i in range(len(small_dataset)) if i not in set(idx)]
        predictions = predictor.predict(small_dataset.subset_configs(rest))
        actual = small_dataset.subset_values("gzip", Metric.CYCLES, rest)
        assert correlation(predictions, actual) > 0.35

    def test_generalisation_on_a_smooth_surface(self, small_dataset):
        """applu's memory-dominated surface is learnable at T=256."""
        from repro.ml import correlation
        idx, rest = small_dataset.split_indices(256, seed=17)
        predictor = ProgramSpecificPredictor(
            space=small_dataset.simulator.space,
            metric=Metric.CYCLES,
            program="applu",
            seed=1,
        )
        predictor.fit(
            small_dataset.subset_configs(idx),
            small_dataset.subset_values("applu", Metric.CYCLES, idx),
        )
        predictions = predictor.predict(small_dataset.subset_configs(rest))
        actual = small_dataset.subset_values("applu", Metric.CYCLES, rest)
        assert correlation(predictions, actual) > 0.6

    def test_predict_one(self, trained, space):
        predictor, _ = trained
        value = predictor.predict_one(space.baseline)
        assert value > 0

    def test_training_size_recorded(self, trained):
        predictor, _ = trained
        assert predictor.training_size_ == 256


class TestValidation:
    def test_untrained_predict_rejected(self, space):
        predictor = ProgramSpecificPredictor(space, Metric.CYCLES, "x")
        with pytest.raises(RuntimeError, match="not been trained"):
            predictor.predict([space.baseline])

    def test_shape_mismatch_rejected(self, space):
        predictor = ProgramSpecificPredictor(space, Metric.CYCLES, "x")
        with pytest.raises(ValueError):
            predictor.fit([space.baseline], np.array([1.0, 2.0]))

    def test_non_positive_values_rejected(self, space):
        predictor = ProgramSpecificPredictor(space, Metric.CYCLES, "x")
        with pytest.raises(ValueError, match="positive"):
            predictor.fit(
                [space.baseline, space.baseline.replace(width=8)],
                np.array([1.0, -2.0]),
            )

    def test_raw_target_mode(self, small_dataset):
        idx, _ = small_dataset.split_indices(128, seed=4)
        predictor = ProgramSpecificPredictor(
            space=small_dataset.simulator.space,
            metric=Metric.CYCLES,
            program="gzip",
            seed=1,
            log_target=False,
        )
        predictor.fit(
            small_dataset.subset_configs(idx),
            small_dataset.subset_values("gzip", Metric.CYCLES, idx),
        )
        predictions = predictor.predict(small_dataset.subset_configs(idx))
        assert np.all(np.isfinite(predictions))
