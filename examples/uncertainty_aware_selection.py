"""Pick design candidates the model is *confident* about.

The predictor's point estimates are enough to rank configurations, but
an architect about to commit silicon wants error bars.  This example
fits the architecture-centric model on 32 responses, bootstraps
prediction intervals over a candidate set, and shows how interval width
changes which candidates are safe picks: a configuration predicted
fastest but with a wide interval can lose to a slightly slower one the
model is certain about.

Run:  python examples/uncertainty_aware_selection.py
"""

import numpy as np

from repro import (
    ArchitectureCentricPredictor,
    DesignSpaceDataset,
    Metric,
    TrainingPool,
    sample_configurations,
    spec2000_suite,
)
from repro.core import bootstrap_predict

NEW_PROGRAM = "facerec"
CANDIDATES = 3000
SHORTLIST = 8


def main() -> None:
    suite = spec2000_suite()
    dataset = DesignSpaceDataset.sampled(suite, sample_size=1000, seed=61)
    space = dataset.simulator.space

    pool = TrainingPool(dataset, Metric.CYCLES, training_size=512, seed=0)
    predictor = ArchitectureCentricPredictor(
        pool.models(exclude=[NEW_PROGRAM])
    )
    response_idx, _ = dataset.split_indices(32, seed=3)
    response_configs = dataset.subset_configs(response_idx)
    response_values = dataset.subset_values(
        NEW_PROGRAM, Metric.CYCLES, response_idx
    )
    predictor.fit_responses(response_configs, response_values)
    print(f"Characterised {NEW_PROGRAM} with 32 simulations\n")

    candidates = sample_configurations(space, CANDIDATES, seed=71)
    point = predictor.predict(candidates)
    order = np.argsort(point)[:SHORTLIST]
    shortlist = [candidates[i] for i in order]

    intervals = bootstrap_predict(
        predictor, response_configs, response_values, shortlist,
        resamples=150, confidence=0.9, seed=5,
    )

    print(f"Top {SHORTLIST} by point prediction, with 90% bootstrap "
          "intervals and simulated truth:")
    print(f"{'rank':>4} {'prediction':>12} {'interval':>24} "
          f"{'width':>6} {'actual':>12}")
    profile = suite[NEW_PROGRAM]
    safest, safest_width = None, np.inf
    for rank, (config, index) in enumerate(zip(shortlist, order), start=1):
        width = float(intervals.interval_width()[rank - 1])
        actual = dataset.simulator.simulate(profile, config).cycles
        interval = (f"[{intervals.lower[rank - 1]:.3e}, "
                    f"{intervals.upper[rank - 1]:.3e}]")
        print(f"{rank:>4} {point[index]:>12.3e} {interval:>24} "
              f"{width * 100:>5.0f}% {actual:>12.3e}")
        if width < safest_width:
            safest, safest_width = rank, width

    print(f"\nNarrowest interval in the shortlist: rank {safest} "
          f"({safest_width * 100:.0f}% wide) — the confident pick.")
    print("Wide intervals flag predictions built on shaky response "
          "support; verify those with a real simulation before "
          "committing.")


if __name__ == "__main__":
    main()
