"""Fig. 13: architecture-centric vs program-specific, error and
correlation against the simulation budget.

The paper's central comparison: with 32 simulations our model reaches
~7% error / 0.95 correlation for cycles where the program-specific
predictor sits at ~24% / 0.55, and the program-specific model needs an
order of magnitude more simulations (~350) to catch up.
"""

from scale import SAMPLE_SIZE, TRAINING_SIZE

from repro.exploration import comparison_sweep, format_series, scale_banner
from repro.sim import Metric

PROGRAMS = ("gzip", "crafty", "parser", "applu", "swim", "mesa", "galgel",
            "art")
BUDGETS = (8, 16, 32, 64, 128, 256, 512)
METRICS = (Metric.CYCLES, Metric.EDD)


def test_fig13_comparison(benchmark, spec_dataset, record_artifact):
    def regenerate():
        return {
            metric: comparison_sweep(
                spec_dataset, metric, budgets=BUDGETS,
                training_size=TRAINING_SIZE, repeats=1, programs=PROGRAMS,
            )
            for metric in METRICS
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 13 — accuracy vs simulation budget, ours vs "
            "program-specific",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, programs=len(PROGRAMS),
            repeats=1,
        )
    ]
    for metric, result in results.items():
        ours = result.architecture_centric
        theirs = result.program_specific
        series = format_series(
            "sims",
            ours.budgets(),
            {
                "ours rmae%": [p.rmae_mean for p in ours.points],
                "ps rmae%": [p.rmae_mean for p in theirs.points],
                "ours corr": [p.correlation_mean for p in ours.points],
                "ps corr": [p.correlation_mean for p in theirs.points],
            },
        )
        crossover = result.crossover_budget()
        sections.append(
            f"\n({metric.value}) program-specific catches up at "
            f"{crossover if crossover else '>512'} simulations\n{series}"
        )
    record_artifact("fig13_comparison", "\n".join(sections))

    for metric, result in results.items():
        ours32 = next(p for p in result.architecture_centric.points
                      if p.budget == 32)
        theirs32 = next(p for p in result.program_specific.points
                        if p.budget == 32)
        # The headline: at 32 simulations our model is far more accurate
        # and far better correlated.
        assert ours32.rmae_mean < 0.55 * theirs32.rmae_mean
        assert ours32.correlation_mean > theirs32.correlation_mean + 0.15
        # The baseline needs an order of magnitude more simulations.
        crossover = result.crossover_budget()
        assert crossover is None or crossover >= 256
