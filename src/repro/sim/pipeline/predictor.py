"""Functional branch predictors: gshare and a branch target buffer.

The design space varies the gshare table size, the BTB size and the
number of in-flight branches; the pipeline simulator exercises real
two-bit counters and a real global history register so that predictor
sizing matters through genuine aliasing, not an analytic formula.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class PredictorStats:
    """Prediction outcome counters."""

    predictions: int = 0
    mispredictions: int = 0
    btb_lookups: int = 0
    btb_misses: int = 0

    @property
    def mispredict_ratio(self) -> float:
        """Mispredictions per prediction (0 when never used)."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class GsharePredictor:
    """Gshare: global history XOR PC indexing a 2-bit counter table."""

    def __init__(self, entries: int) -> None:
        if not _is_power_of_two(entries):
            raise ValueError("gshare table size must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._history_bits = max(1, entries.bit_length() - 1)
        self._history = 0
        self._history_mask = (1 << self._history_bits) - 1
        # Two-bit saturating counters, initialised weakly taken.
        self._table = bytearray([2] * entries)
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at ``pc``."""
        # _index() inlined: called once per fetched branch.
        return self._table[((pc >> 2) ^ self._history) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Train on the resolved outcome; returns mispredicted?.

        Updates the counter at the *pre-update* history index and then
        shifts the outcome into the history register, the standard
        in-order training discipline.
        """
        table = self._table
        index = ((pc >> 2) ^ self._history) & self._mask
        counter = table[index]
        prediction = counter >= 2
        if taken:
            table[index] = 3 if counter >= 2 else counter + 1
        else:
            table[index] = 0 if counter <= 1 else counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.stats.predictions += 1
        mispredicted = prediction != taken
        if mispredicted:
            self.stats.mispredictions += 1
        return mispredicted


class BranchTargetBuffer:
    """Direct-mapped BTB storing (tag, target) per entry."""

    def __init__(self, entries: int) -> None:
        if not _is_power_of_two(entries):
            raise ValueError("BTB size must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags = [-1] * entries
        self._targets = [0] * entries
        self.stats = PredictorStats()

    def lookup(self, pc: int) -> int | None:
        """Predicted target for a taken branch, or ``None`` on miss."""
        index = (pc >> 2) & self._mask
        tag = pc >> 2
        self.stats.btb_lookups += 1
        if self._tags[index] == tag:
            return self._targets[index]
        self.stats.btb_misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of a taken branch."""
        index = (pc >> 2) & self._mask
        self._tags[index] = pc >> 2
        self._targets[index] = target
