"""Scale settings shared by the benchmark harnesses.

Reduced defaults (the paper: 3,000 samples, T=512, R=32, 20 repeats) so
the whole harness finishes in minutes; raise them for a paper-scale run.
"""

SAMPLE_SIZE = 1500
TRAINING_SIZE = 512
RESPONSES = 32
REPEATS = 1
