"""Declarative SLOs evaluated from metrics — and enforced as exit codes.

ROADMAP item 3 asks for SLO tracking (p99 latency budgets, error burn
rates) computed from the telemetry the package already exports.  This
module keeps the policy *declarative*: objectives live in a small JSON
config::

    {"objectives": [
      {"name": "chunk-p99", "kind": "latency",
       "metric": "campaign.chunk.seconds", "quantile": 0.99,
       "threshold": 30.0},
      {"name": "reclaim-burn", "kind": "error_rate",
       "numerator": "distrib.lease.reclaimed",
       "denominator": "distrib.tasks.issued", "threshold": 0.5}
    ]}

and :class:`SLOTracker` evaluates them against any of three sources:

* a live :class:`~repro.obs.metrics.MetricsRegistry` (in-process);
* a :class:`~repro.obs.timeseries.TimeSeriesSampler` (the distributed
  coordinator's windowed view);
* a Prometheus text export parsed by
  :meth:`MetricsView.from_prometheus` — so ``repro slo check`` works
  headlessly on the ``--metrics-out`` artifacts a CI run already has.

Each objective reports a *burn rate*: observed value divided by its
threshold, so 1.0 is exactly on budget and anything above it is a
violation.  ``repro slo check`` turns ``ok`` into the process exit
code, which is the whole enforcement story a CI leg needs.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .metrics import Histogram, MetricsRegistry
from .timeseries import TimeSeriesSampler, histogram_quantile

__all__ = ["MetricsView", "SLObjective", "SLOTracker"]

#: Objective kinds.  ``drop_rate`` is semantically identical to
#: ``error_rate`` (numerator/denominator ratio); the distinct name
#: keeps configs self-describing.
_KINDS = ("latency", "error_rate", "drop_rate")

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

LabelPairs = Tuple[Tuple[str, str], ...]


def _normalize(name: str) -> str:
    """Metric names as Prometheus spells them (dots become underscores),
    so dotted registry names and parsed exports compare equal."""
    return _PROM_NAME.sub("_", name)


def _pairs(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    return tuple(sorted((k, str(v)) for k, v in (labels or {}).items()))


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective.

    Args:
        name: Short identifier shown in reports and gauge labels.
        kind: ``latency`` (a histogram quantile must stay under
            ``threshold``) or ``error_rate``/``drop_rate`` (the ratio
            ``numerator / denominator`` must stay under ``threshold``).
        threshold: The budget; burn rate is ``value / threshold``.
        metric: Histogram name (latency objectives).
        quantile: Which quantile of ``metric`` (latency objectives).
        numerator / denominator: Counter names (rate objectives); both
            sum across every label set matching their label filters.
        labels / numerator_labels / denominator_labels: Label subsets
            the matched instruments must carry.
        description: Free-form note echoed in reports.
    """

    name: str
    kind: str
    threshold: float
    metric: str = ""
    quantile: float = 0.99
    numerator: str = ""
    denominator: str = ""
    labels: LabelPairs = ()
    numerator_labels: LabelPairs = ()
    denominator_labels: LabelPairs = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an objective needs a name")
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown objective kind {self.kind!r}; expected one "
                f"of {_KINDS}"
            )
        if self.threshold <= 0:
            raise ValueError(f"{self.name}: threshold must be positive")
        if self.kind == "latency":
            if not self.metric:
                raise ValueError(
                    f"{self.name}: a latency objective needs a metric"
                )
            if not 0.0 <= self.quantile <= 1.0:
                raise ValueError(
                    f"{self.name}: quantile must be within [0, 1]"
                )
        else:
            if not self.numerator or not self.denominator:
                raise ValueError(
                    f"{self.name}: a {self.kind} objective needs a "
                    "numerator and a denominator"
                )

    @classmethod
    def from_dict(cls, raw: Mapping) -> "SLObjective":
        """Build one objective from its JSON form (labels as dicts)."""
        if not isinstance(raw, Mapping):
            raise ValueError("each objective must be a JSON object")
        known = {
            "name", "kind", "threshold", "metric", "quantile",
            "numerator", "denominator", "labels", "numerator_labels",
            "denominator_labels", "description",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"objective {raw.get('name', '?')!r} has unknown "
                f"key(s): {sorted(unknown)}"
            )
        return cls(
            name=str(raw.get("name", "")),
            kind=str(raw.get("kind", "")),
            threshold=float(raw.get("threshold", 0.0)),
            metric=str(raw.get("metric", "")),
            quantile=float(raw.get("quantile", 0.99)),
            numerator=str(raw.get("numerator", "")),
            denominator=str(raw.get("denominator", "")),
            labels=_pairs(raw.get("labels")),
            numerator_labels=_pairs(raw.get("numerator_labels")),
            denominator_labels=_pairs(raw.get("denominator_labels")),
            description=str(raw.get("description", "")),
        )


class MetricsView:
    """A uniform, source-agnostic read view over metric values.

    Holds scalar values per ``(name, labels)`` plus histogram states as
    *per-bucket* counts, whether they came from a live registry or a
    parsed Prometheus text export — so an SLO evaluates identically
    against either.
    """

    def __init__(self) -> None:
        self._values: Dict[Tuple[str, LabelPairs], float] = {}
        # (bounds, per-bucket counts incl. +Inf slot)
        self._hists: Dict[
            Tuple[str, LabelPairs], Tuple[Tuple[float, ...], List[int]]
        ] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "MetricsView":
        """Snapshot a live registry."""
        view = cls()
        for (name, labels), instrument in registry:
            key = (_normalize(name), labels)
            if isinstance(instrument, Histogram):
                view._hists[key] = (
                    tuple(instrument.buckets),
                    list(instrument.bucket_counts),
                )
            else:
                view._values[key] = float(instrument.value)
        return view

    @classmethod
    def from_prometheus(cls, text: str) -> "MetricsView":
        """Parse a text exposition (``--metrics-out metrics.prom``).

        Reconstructs histograms from their cumulative ``_bucket``
        series; ``_sum``/``_count`` lines and plain samples land as
        scalar values.  Unparseable lines are skipped, not fatal — a
        foreign exporter's exotic lines must not break an SLO check.
        """
        view = cls()
        buckets: Dict[Tuple[str, LabelPairs], Dict[float, float]] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            match = _PROM_LINE.match(line)
            if match is None:
                continue
            name, _, raw_labels, raw_value = match.groups()
            try:
                value = float(raw_value)
            except ValueError:
                continue
            labels = {
                k: _unescape(v)
                for k, v in _PROM_LABEL.findall(raw_labels or "")
            }
            if name.endswith("_bucket") and "le" in labels:
                le = labels.pop("le")
                bound = math.inf if le == "+Inf" else float(le)
                key = (name[: -len("_bucket")], _pairs(labels))
                buckets.setdefault(key, {})[bound] = value
            else:
                view._values[(name, _pairs(labels))] = value
        for key, by_bound in buckets.items():
            bounds = sorted(by_bound)
            finite = tuple(b for b in bounds if math.isfinite(b))
            counts: List[int] = []
            previous = 0.0
            for bound in bounds:
                cumulative = by_bound[bound]
                counts.append(int(round(cumulative - previous)))
                previous = cumulative
            if math.inf not in by_bound:
                counts.append(0)  # tolerate a missing +Inf line
            view._hists[key] = (finite, counts)
        return view

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def total(self, name: str, labels: LabelPairs = ()) -> float:
        """Sum of scalar values matching ``name`` + label subset.

        NaN when nothing matches (no data is distinct from zero).
        """
        name = _normalize(name)
        wanted = set(labels)
        matched = [
            value
            for (metric, metric_labels), value in self._values.items()
            if metric == name and wanted.issubset(set(metric_labels))
        ]
        return sum(matched) if matched else math.nan

    def quantile(
        self, name: str, q: float, labels: LabelPairs = ()
    ) -> float:
        """Bucket-interpolated quantile over matching histograms."""
        name = _normalize(name)
        wanted = set(labels)
        bounds: Optional[Tuple[float, ...]] = None
        merged: Optional[List[int]] = None
        for (metric, metric_labels), state in self._hists.items():
            if metric != name or not wanted.issubset(set(metric_labels)):
                continue
            if bounds is None:
                bounds = state[0]
                merged = [0] * len(state[1])
            elif state[0] != bounds:
                raise ValueError(
                    f"histogram {name!r} label sets use different "
                    "buckets; quantiles cannot merge them"
                )
            for index, count in enumerate(state[1]):
                merged[index] += count  # type: ignore[index]
        if bounds is None or merged is None:
            return math.nan
        return histogram_quantile(bounds, merged, q)


@dataclass
class SLOStatus:
    """One objective's evaluation result (JSON-ready via
    :meth:`to_payload`)."""

    objective: SLObjective
    value: float
    burn: float
    ok: bool
    no_data: bool

    def to_payload(self) -> Dict:
        return {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "threshold": self.objective.threshold,
            "value": None if math.isnan(self.value) else round(self.value, 6),
            "burn": None if math.isnan(self.burn) else round(self.burn, 4),
            "ok": self.ok,
            "no_data": self.no_data,
            "description": self.objective.description,
        }


class SLOTracker:
    """Evaluate a set of objectives against any metrics source.

    An objective with *no data* (the metric never appeared, or a rate's
    denominator is still zero) evaluates as ``ok`` with ``no_data``
    flagged — a campaign that has not started must not page anyone.
    """

    def __init__(self, objectives: Sequence[SLObjective]) -> None:
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        self.objectives: Tuple[SLObjective, ...] = tuple(objectives)

    @classmethod
    def from_config(
        cls, source: Union[str, pathlib.Path, Mapping, Sequence]
    ) -> "SLOTracker":
        """Load objectives from a JSON file, dict or bare list."""
        if isinstance(source, (str, pathlib.Path)):
            raw = json.loads(pathlib.Path(source).read_text("utf-8"))
        else:
            raw = source
        if isinstance(raw, Mapping):
            raw = raw.get("objectives", [])
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ValueError(
                'SLO config must be {"objectives": [...]} or a list'
            )
        return cls([SLObjective.from_dict(entry) for entry in raw])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        source: Union[MetricsView, MetricsRegistry, TimeSeriesSampler],
        window: Optional[float] = None,
    ) -> List[SLOStatus]:
        """Evaluate every objective; ``window`` only applies to
        time-series sources (views and registries are point-in-time)."""
        if isinstance(source, MetricsRegistry):
            source = MetricsView.from_registry(source)
        statuses = []
        for objective in self.objectives:
            if isinstance(source, TimeSeriesSampler):
                value = self._from_sampler(objective, source, window)
            else:
                value = self._from_view(objective, source)
            statuses.append(self._status(objective, value))
        return statuses

    def check(
        self,
        source: Union[MetricsView, MetricsRegistry, TimeSeriesSampler],
        window: Optional[float] = None,
    ) -> Tuple[bool, List[SLOStatus]]:
        """``(all objectives ok, statuses)`` — the exit-code shape."""
        statuses = self.evaluate(source, window)
        return all(status.ok for status in statuses), statuses

    @staticmethod
    def _from_view(objective: SLObjective, view: MetricsView) -> float:
        if objective.kind == "latency":
            return view.quantile(
                objective.metric, objective.quantile, objective.labels
            )
        numerator = view.total(
            objective.numerator, objective.numerator_labels
        )
        denominator = view.total(
            objective.denominator, objective.denominator_labels
        )
        return _ratio(numerator, denominator)

    @staticmethod
    def _from_sampler(
        objective: SLObjective,
        sampler: TimeSeriesSampler,
        window: Optional[float],
    ) -> float:
        if objective.kind == "latency":
            return sampler.quantile(
                objective.metric,
                objective.quantile,
                window,
                **dict(objective.labels),
            )
        numerator = sampler.increase(
            objective.numerator, window, **dict(objective.numerator_labels)
        )
        denominator = sampler.increase(
            objective.denominator,
            window,
            **dict(objective.denominator_labels),
        )
        return _ratio(numerator, denominator)

    @staticmethod
    def _status(objective: SLObjective, value: float) -> SLOStatus:
        no_data = math.isnan(value)
        burn = math.nan if no_data else value / objective.threshold
        ok = no_data or burn <= 1.0
        return SLOStatus(
            objective=objective,
            value=value,
            burn=burn,
            ok=ok,
            no_data=no_data,
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_gauges(
        self, statuses: Sequence[SLOStatus], registry: MetricsRegistry
    ) -> None:
        """Mirror statuses as ``slo.*`` gauges so the Prometheus and
        JSON exporters (and anything scraping ``/metrics``) see SLO
        state without a second protocol."""
        for status in statuses:
            name = status.objective.name
            registry.gauge("slo.ok", slo=name).set(1.0 if status.ok else 0.0)
            if not status.no_data:
                registry.gauge("slo.value", slo=name).set(status.value)
                registry.gauge("slo.burn", slo=name).set(status.burn)


def _ratio(numerator: float, denominator: float) -> float:
    if math.isnan(denominator) or denominator <= 0:
        return math.nan
    if math.isnan(numerator):
        numerator = 0.0  # the numerator counter simply never fired
    return numerator / denominator
