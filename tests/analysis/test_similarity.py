"""Tests for program-similarity measurement (Section 4.2)."""

import numpy as np
import pytest

from repro.analysis import (
    distance_matrix,
    nearest_neighbours,
    normalised_behaviour_matrix,
    outlier_scores,
)
from repro.sim import Metric


@pytest.fixture(scope="module")
def distances(small_dataset):
    return distance_matrix(small_dataset, Metric.CYCLES)


class TestBehaviourMatrix:
    def test_shape(self, small_dataset):
        matrix, programs = normalised_behaviour_matrix(
            small_dataset, Metric.CYCLES
        )
        assert matrix.shape == (len(programs), len(small_dataset))

    def test_normalised_to_baseline(self, small_dataset):
        matrix, _ = normalised_behaviour_matrix(small_dataset, Metric.CYCLES)
        # Values hover around 1 (the baseline machine's level).
        assert 0.1 < np.median(matrix) < 10.0


class TestDistanceMatrix:
    def test_metric_properties(self, distances):
        matrix, programs = distances
        assert matrix.shape == (len(programs), len(programs))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.all(matrix >= 0.0)

    def test_triangle_inequality(self, distances):
        matrix, _ = distances
        n = matrix.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-9

    def test_matches_bruteforce(self, small_dataset, distances):
        matrix, programs = distances
        reference, _ = normalised_behaviour_matrix(
            small_dataset, Metric.CYCLES
        )
        brute = np.linalg.norm(reference[0] - reference[1])
        assert matrix[0, 1] == pytest.approx(brute)


class TestOutliers:
    def test_art_is_the_outlier(self, distances):
        matrix, programs = distances
        scores = outlier_scores(matrix, programs)
        assert max(scores, key=scores.get) == "art"

    def test_nearest_neighbours_consistent(self, distances):
        matrix, programs = distances
        neighbours = nearest_neighbours(matrix, programs)
        for program, (other, distance) in neighbours.items():
            assert other != program
            assert distance >= 0

    def test_shape_mismatch_rejected(self, distances):
        matrix, programs = distances
        with pytest.raises(ValueError):
            outlier_scores(matrix, programs[:-1])
        with pytest.raises(ValueError):
            nearest_neighbours(matrix, programs[:-1])
