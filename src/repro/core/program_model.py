"""Program-specific predictors (the state-of-the-art baseline).

A program-specific predictor (Ipek et al., ASPLOS 2006 — reference [7]
of the paper) maps a microarchitectural configuration vector to one
target metric for one program, using a one-hidden-layer artificial
neural network trained on simulations of that program.  It is both a
building block of the architecture-centric model (Section 5.2) and the
baseline it is compared against (Section 7.4).

Targets are learned in log10 space: the design space spans more than an
order of magnitude for the heavier metrics (EDD covers several decades)
and relative error — the paper's rmae — is exactly what a log-space
squared loss optimises for.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.space import DesignSpace
from repro.ml.mlp import MultilayerPerceptron
from repro.sim.metrics import Metric


class ProgramSpecificPredictor:
    """ANN predictor of one metric for one program.

    Args:
        space: Design space used to encode configurations.
        metric: Which target metric this predictor models.
        program: Program name, for bookkeeping and reporting.
        hidden_neurons: Hidden-layer width (the paper uses 10).
        seed: Seed for the network's initialisation.
        log_target: Learn log10(metric) rather than the raw value.
    """

    def __init__(
        self,
        space: DesignSpace,
        metric: Metric,
        program: str = "",
        hidden_neurons: int = 10,
        seed: Optional[int] = None,
        log_target: bool = True,
    ) -> None:
        self.space = space
        self.metric = metric
        self.program = program
        self.log_target = log_target
        self._network = MultilayerPerceptron(
            hidden_neurons=hidden_neurons, seed=seed
        )
        self._trained = False
        self.training_size_: int = 0

    def training_arrays(
        self,
        configs: Sequence[Configuration],
        values: np.ndarray,
    ) -> tuple:
        """Validate and encode a training set into (features, targets).

        The exact preprocessing :meth:`fit` applies, exposed so callers
        that train the network elsewhere (e.g. the parallel training
        pool, which fits in worker processes) produce bit-identical
        inputs to an in-process fit.
        """
        values = np.asarray(values, dtype=float).reshape(-1)
        if len(configs) != values.shape[0]:
            raise ValueError("configs and values disagree on sample count")
        if np.any(values <= 0.0):
            raise ValueError("metric values must be positive")
        features = self.space.encode_many(configs)
        targets = np.log10(values) if self.log_target else values
        return features, targets

    def fit(
        self,
        configs: Sequence[Configuration],
        values: np.ndarray,
    ) -> "ProgramSpecificPredictor":
        """Train on simulated (configuration, metric value) pairs."""
        return self.fit_prepared(*self.training_arrays(configs, values))

    def fit_prepared(
        self, features: np.ndarray, targets: np.ndarray
    ) -> "ProgramSpecificPredictor":
        """Train on arrays produced by :meth:`training_arrays`.

        Splitting preparation from fitting lets the training pool encode
        once in the parent process and fit in workers; the combined path
        is bit-identical to :meth:`fit`.
        """
        self._network.fit(features, targets)
        self._trained = True
        self.training_size_ = features.shape[0]
        return self

    def predict(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Predict the metric for a batch of configurations."""
        if not self._trained:
            raise RuntimeError(
                f"program-specific predictor for {self.program!r} "
                "has not been trained"
            )
        features = self.space.encode_many(configs)
        raw = self._network.predict(features)
        if self.log_target:
            # Clip the exponent so a wild extrapolation cannot overflow.
            return np.power(10.0, np.clip(raw, -30.0, 30.0))
        return raw

    def predict_one(self, config: Configuration) -> float:
        """Predict the metric for a single configuration."""
        return float(self.predict([config])[0])

    # ------------------------------------------------------------------
    # Weight transport (persistence, parallel training, stacking)
    # ------------------------------------------------------------------
    def network_weights(self) -> dict:
        """Export the trained network's weights and scaler state.

        Raises:
            RuntimeError: if the predictor has not been trained.
        """
        if not self._trained:
            raise RuntimeError(
                f"program-specific predictor for {self.program!r} "
                "has not been trained"
            )
        return self._network.get_weights()

    def adopt_network_weights(
        self,
        weights: dict,
        training_size: int,
        training_record=None,
    ) -> "ProgramSpecificPredictor":
        """Install weights exported by :meth:`network_weights`.

        The inverse of :meth:`network_weights`: restores a network
        trained elsewhere (another process, a serialised pool) so the
        predictor behaves exactly as if :meth:`fit` had run in-process.
        """
        self._network.set_weights(weights)
        if training_record is not None:
            self._network.training_record_ = training_record
        self._trained = True
        self.training_size_ = int(training_size)
        return self
