"""Retry with exponential backoff, timeouts and a circuit breaker.

One flaky backend call must cost one retry, not one campaign.  This
module wraps a single backend invocation in the classic resilience
trio:

* **retry with exponential backoff + jitter** — transient failures are
  retried up to ``max_attempts`` times with deterministically seeded
  jitter, so two runs with the same seed back off identically;
* **a per-call timeout guard** — a call that stalls past
  ``timeout`` seconds is discarded and counted as a failure even though
  it eventually returned;
* **a circuit breaker** — after K *consecutive* failures the breaker
  trips and further calls fail fast with :class:`CircuitOpenError`
  instead of hammering a downed backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

import numpy as np

from repro.obs import get_logger, get_registry

from .backend import SimulationError

T = TypeVar("T")

_log = get_logger(__name__)


class SimulationTimeoutError(SimulationError):
    """A backend call exceeded the per-call timeout."""


class CircuitOpenError(SimulationError):
    """The circuit breaker is open; the call was not attempted."""


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the per-call retry loop.

    Attributes:
        max_attempts: Total tries per call (first attempt included).
        base_delay: Backoff before the second attempt (seconds).
        multiplier: Backoff growth factor per further attempt.
        jitter: Uniform jitter as a fraction of the delay (0.25 means
            the actual delay is drawn from [0.75d, 1.25d]).  Ignored
            under ``jitter_mode="full"``.
        timeout: Per-call wall-clock budget in seconds; ``None``
            disables the guard.
        jitter_mode: ``"proportional"`` (the default) jitters around
            the exponential delay; ``"full"`` draws uniformly from
            ``[0, d]`` (AWS full jitter) — the right choice when many
            clients back off from the *same* moment, e.g. a whole
            worker fleet reconnecting after a coordinator restart,
            where proportional jitter would thundering-herd.
    """

    max_attempts: int = 4
    base_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.25
    timeout: Optional[float] = None
    jitter_mode: str = "proportional"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.jitter_mode not in ("proportional", "full"):
            raise ValueError(
                'jitter_mode must be "proportional" or "full"'
            )

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        base = self.base_delay * self.multiplier ** (attempt - 1)
        if self.jitter_mode == "full":
            return base * rng.random()
        if self.jitter == 0.0:
            return base
        spread = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base * spread


class CircuitBreaker:
    """Trips open after K consecutive failures; a success resets it.

    State is inspectable after a run — :attr:`state` reads ``"open"``
    or ``"closed"``, :attr:`trips` counts how many times the breaker
    opened — and every open/close transition is logged and counted in
    the metrics registry, so a campaign that went dark explains itself.

    Args:
        failure_threshold: Consecutive failures that open the circuit.
    """

    def __init__(self, failure_threshold: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.consecutive_failures = 0
        self.total_failures = 0
        self.trips = 0

    @property
    def open(self) -> bool:
        """True once tripped (further calls must fail fast)."""
        return self.consecutive_failures >= self.failure_threshold

    @property
    def state(self) -> str:
        """``"open"`` or ``"closed"`` — the breaker's current state."""
        return "open" if self.open else "closed"

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` if the circuit is open."""
        if self.open:
            raise CircuitOpenError(
                f"circuit breaker open after "
                f"{self.consecutive_failures} consecutive failures"
            )

    def record_success(self) -> None:
        """Reset the consecutive-failure count after a clean call."""
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        """Count one more failure; the breaker opens at the threshold."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures == self.failure_threshold:
            self.trips += 1
            get_registry().counter("breaker.trips").inc()
            get_registry().gauge("breaker.open").set(1)
            _log.warning(
                "circuit breaker opened after %d consecutive failures",
                self.consecutive_failures,
                extra={"event": "breaker.open",
                       "failures": self.consecutive_failures},
            )

    def reset(self) -> None:
        """Close the circuit manually (e.g. after replacing the backend)."""
        was_open = self.open
        self.consecutive_failures = 0
        if was_open:
            get_registry().counter("breaker.resets").inc()
            get_registry().gauge("breaker.open").set(0)
            _log.info(
                "circuit breaker reset to closed",
                extra={"event": "breaker.reset"},
            )


def call_with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    *,
    seed: int = 0,
    breaker: Optional[CircuitBreaker] = None,
    validate: Optional[Callable[[T], T]] = None,
    sleep: Optional[Callable[[float], None]] = None,
    clock: Optional[Callable[[], float]] = None,
) -> T:
    """Invoke ``fn`` under the retry/timeout/breaker policy.

    Args:
        fn: The zero-argument call (usually a bound backend batch).
        policy: Retry policy (defaults to :class:`RetryPolicy()`).
        seed: Seed of the jitter stream — same seed, same backoff.
        breaker: Optional shared circuit breaker; checked before every
            attempt and updated after each outcome.
        validate: Optional check applied to a successful return value;
            raising from it counts as a failed attempt (used to treat
            corrupted results exactly like exceptions).
        sleep: Sleep hook (defaults to :func:`time.sleep`).
        clock: Monotonic clock hook for the timeout guard (defaults to
            :func:`time.monotonic`).

    Returns:
        ``fn()``'s value from the first attempt that succeeds, passes
        ``validate`` and beats the timeout.

    Raises:
        CircuitOpenError: immediately once the breaker is open.
        SimulationError: the last failure once attempts are exhausted.
    """
    policy = policy if policy is not None else RetryPolicy()
    sleep = sleep if sleep is not None else time.sleep
    clock = clock if clock is not None else time.monotonic
    rng = np.random.default_rng(seed)
    registry = get_registry()

    last_error: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        if breaker is not None:
            breaker.check()
        registry.counter("retry.attempts").inc()
        start = clock()
        try:
            result = fn()
            elapsed = clock() - start
            if policy.timeout is not None and elapsed > policy.timeout:
                raise SimulationTimeoutError(
                    f"call took {elapsed:.1f}s, budget was "
                    f"{policy.timeout:.1f}s"
                )
            if validate is not None:
                result = validate(result)
        except Exception as error:  # noqa: BLE001 — every failure retries
            last_error = error
            registry.counter("retry.failures").inc()
            if breaker is not None:
                breaker.record_failure()
                if breaker.open:
                    break
            if attempt + 1 < policy.max_attempts:
                delay = policy.delay(attempt + 1, rng)
                registry.counter("retry.retries").inc()
                _log.debug(
                    "attempt %d/%d failed (%s); retrying in %.3fs",
                    attempt + 1, policy.max_attempts, error, delay,
                    extra={"event": "retry.backoff",
                           "attempt": attempt + 1, "delay": delay},
                )
                sleep(delay)
            continue
        if breaker is not None:
            breaker.record_success()
        return result

    assert last_error is not None
    registry.counter("retry.exhausted").inc()
    _log.warning(
        "call failed permanently after %d attempt(s): %s",
        min(policy.max_attempts, int(attempt) + 1), last_error,
        extra={"event": "retry.exhausted", "error": str(last_error)},
    )
    if isinstance(last_error, SimulationError):
        raise last_error
    raise SimulationError(
        f"call failed after {policy.max_attempts} attempts: {last_error}"
    ) from last_error
