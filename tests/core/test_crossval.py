"""Tests for the cross-validation harnesses (at reduced scale)."""

import pytest

from repro.core import (
    cross_suite,
    evaluate_on_program,
    leave_one_out,
    program_specific_score,
)
from repro.exploration import DesignSpaceDataset
from repro.sim import Metric


class TestEvaluateOnProgram:
    def test_score_fields(self, cycles_pool, small_dataset):
        models = cycles_pool.models(exclude=["swim"])
        score = evaluate_on_program(models, small_dataset, "swim",
                                    responses=32, seed=5)
        assert score.program == "swim"
        assert score.metric is Metric.CYCLES
        assert score.responses == 32
        assert 0 <= score.rmae < 100
        assert -1 <= score.correlation <= 1

    def test_seed_changes_split(self, cycles_pool, small_dataset):
        models = cycles_pool.models(exclude=["swim"])
        a = evaluate_on_program(models, small_dataset, "swim", seed=1)
        b = evaluate_on_program(models, small_dataset, "swim", seed=2)
        assert a.rmae != b.rmae


class TestLeaveOneOut:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return leave_one_out(
            small_dataset, Metric.CYCLES, training_size=128,
            responses=32, repeats=2, seed=0,
        )

    def test_covers_every_program(self, result, small_dataset):
        assert set(result.summaries) == set(small_dataset.programs)

    def test_repeats_recorded(self, result):
        assert all(len(s.scores) == 2 for s in result.summaries.values())

    def test_mean_rmae_reasonable(self, result):
        assert 0 < result.mean_rmae < 60

    def test_correlation_positive(self, result):
        assert result.mean_correlation > 0.5

    def test_art_is_harder_than_average(self, result):
        """The outlier must show elevated error (Section 7.2)."""
        assert result.program("art").mean_rmae > result.mean_rmae

    def test_program_lookup_unknown(self, result):
        with pytest.raises(KeyError):
            result.program("doom")

    def test_restricted_targets(self, small_dataset):
        result = leave_one_out(
            small_dataset, Metric.CYCLES, training_size=128,
            responses=16, repeats=1, programs=["gzip"],
        )
        assert set(result.summaries) == {"gzip"}


class TestCrossSuite:
    def test_spec_predicts_mibench(self, small_dataset, mibench, configs,
                                   simulator):
        target = DesignSpaceDataset(
            mibench.subset(["qsort", "sha", "fft"]), configs, simulator
        )
        result = cross_suite(
            small_dataset, target, Metric.CYCLES,
            training_size=128, responses=32, repeats=1, seed=3,
        )
        assert set(result.summaries) == {"qsort", "sha", "fft"}
        assert result.mean_correlation > 0.5


class TestProgramSpecificScore:
    def test_large_training_beats_small(self, small_dataset):
        small = program_specific_score(small_dataset, "gzip",
                                       Metric.CYCLES, 16, seed=9)
        large = program_specific_score(small_dataset, "gzip",
                                       Metric.CYCLES, 256, seed=9)
        assert large.rmae < small.rmae
        assert large.correlation > small.correlation

    def test_training_error_reported(self, small_dataset):
        score = program_specific_score(small_dataset, "gzip",
                                       Metric.CYCLES, 64, seed=9)
        assert score.training_error >= 0
