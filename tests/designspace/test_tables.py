"""Tests for Table 1 / Table 2 rendering."""

from repro.designspace import render_table1, render_table2
from repro.sim.machine import FixedParameters, width_scaling_rows


class TestTable1:
    def test_mentions_every_parameter(self, space):
        table = render_table1(space)
        for parameter in space.parameters:
            assert parameter.label in table

    def test_reports_space_sizes(self, space):
        table = render_table1(space)
        assert f"{space.raw_size:,}" in table
        assert f"{space.legal_size:,}" in table

    def test_reports_baselines(self, space):
        table = render_table1(space)
        assert "96" in table  # ROB baseline
        assert "2048" in table  # L2 baseline in KB


class TestTable2:
    def test_both_parts_render(self):
        table = render_table2(
            FixedParameters().as_rows(), width_scaling_rows()
        )
        assert "(a) Constant" in table
        assert "(b) Related to width" in table
        assert "Integer ALUs" in table
        assert "MSHR entries" in table
