"""Predictor throughput: the stacked ensemble and the parallel pool.

Not a paper artefact — the engineering guarantee behind the paper's
workflow.  The sweet-spot scan evaluates every offline model at
thousands of candidate configurations; the stacked ensemble must beat
the per-model loop by a wide margin *while producing bit-identical
numbers*, and the process-parallel training pool must cut the offline
wall time without changing a single weight.  Results are written
machine-readably to ``results/BENCH_throughput.json``.
"""

import os
import time

import numpy as np

from repro.ml import StackedEnsemble
from repro.obs import get_tracer, span
from repro.sim import Metric

from scale import JOBS, TRAINING_SIZE

#: Candidate configurations for the inference leg (the paper's
#: sweet-spot scan uses 5,000).
CANDIDATES = int(os.environ.get("REPRO_CANDIDATES", 5000))

#: Programs for the training-wall-time leg (a subset keeps the bench
#: quick; the speedup is per-model and does not depend on pool size).
TRAIN_PROGRAMS = ("gzip", "crafty", "applu", "swim", "mesa", "art",
                  "mcf", "equake")


def test_predictor_throughput(benchmark, spec_dataset, pools, record_json):
    from repro.core.training import TrainingPool

    from repro.designspace import sample_configurations

    models = pools(Metric.CYCLES).models()
    # A fresh candidate sample, like the sweet-spot scan's: the batch
    # size must not be capped by the dataset's REPRO_SAMPLE_SIZE.
    configs = sample_configurations(
        spec_dataset.simulator.space, CANDIDATES, seed=4242
    )

    trace_mark = get_tracer().mark()

    # -- inference: per-model loop vs stacked ensemble -----------------
    # Best-of-3 keeps a noisy shared machine from skewing the ratio.
    per_model_seconds = float("inf")
    with span("bench.inference.per_model", candidates=len(configs)):
        for _ in range(3):
            start = time.perf_counter()
            per_model = np.stack(
                [model.predict(configs) for model in models]
            )
            per_model_seconds = min(
                per_model_seconds, time.perf_counter() - start
            )

    ensemble = StackedEnsemble.from_models(models)
    ensemble_seconds = float("inf")
    with span("bench.inference.stacked", candidates=len(configs)):
        for _ in range(3):
            start = time.perf_counter()
            stacked = ensemble.predict(configs)
            ensemble_seconds = min(
                ensemble_seconds, time.perf_counter() - start
            )
    benchmark(lambda: ensemble.predict(configs))

    assert np.array_equal(stacked, per_model), (
        "the stacked ensemble must reproduce the per-model loop bit for "
        "bit"
    )
    speedup = per_model_seconds / ensemble_seconds

    # -- offline training: serial vs process pool ----------------------
    include = [p for p in TRAIN_PROGRAMS if p in spec_dataset.programs]
    serial_pool = TrainingPool(
        spec_dataset, Metric.CYCLES, training_size=TRAINING_SIZE, seed=9
    )
    with span("bench.train.serial", programs=len(include)):
        start = time.perf_counter()
        serial_models = serial_pool.models(include=include)
        train_serial_seconds = time.perf_counter() - start

    parallel_pool = TrainingPool(
        spec_dataset, Metric.CYCLES, training_size=TRAINING_SIZE, seed=9,
        n_jobs=JOBS,
    )
    with span("bench.train.parallel", programs=len(include), jobs=JOBS):
        start = time.perf_counter()
        parallel_models = parallel_pool.models(include=include)
        train_parallel_seconds = time.perf_counter() - start

    for a, b in zip(serial_models, parallel_models):
        wa, wb = a.network_weights(), b.network_weights()
        for key in wa:
            assert np.array_equal(
                np.asarray(wa[key]), np.asarray(wb[key])
            ), (a.program, key)

    payload = {
        "candidates": len(configs),
        "models": len(models),
        "per_model_seconds": per_model_seconds,
        "ensemble_seconds": ensemble_seconds,
        "ensemble_speedup": speedup,
        "configs_per_second": len(configs) / ensemble_seconds,
        "predictions_per_second": (
            len(configs) * len(models) / ensemble_seconds
        ),
        "train_programs": len(include),
        "train_serial_seconds": train_serial_seconds,
        "train_parallel_seconds": train_parallel_seconds,
        "train_speedup": train_serial_seconds / train_parallel_seconds,
        "train_jobs": JOBS,
        "cpu_count": os.cpu_count(),
        # Wall time per bench stage, straight from the tracer: the
        # "bench.*" spans above plus the instrumented library spans
        # that ran inside them (train.fit, predict.fit_responses, ...).
        "stage_seconds": {
            name: stats["total_seconds"]
            for name, stats in get_tracer().summary(trace_mark).items()
        },
    }
    record_json("BENCH_throughput", payload)

    # The ensemble's win is algorithmic (one encode, batched GEMMs), so
    # it holds on any machine.
    assert speedup >= 5.0, f"stacked ensemble only {speedup:.1f}x faster"
    # The training win needs actual CPUs; a 1-core container cannot
    # show wall-time parallelism, so only assert where it can exist.
    if (os.cpu_count() or 1) >= 4 and JOBS >= 4:
        assert train_serial_seconds / train_parallel_seconds >= 2.0
