"""Bounded time-series sampling over a :class:`MetricsRegistry`.

The registry is a point-in-time view; operations questions — "how fast
are cells completing *right now*", "what is the p99 over the last
minute" — need history.  :class:`TimeSeriesSampler` polls a registry on
whatever cadence its owner chooses (the distributed coordinator runs it
from an asyncio loop) and appends each instrument's state to a bounded
ring buffer:

* counters and gauges sample to ``(t, value)`` points, from which
  :meth:`TimeSeriesSampler.increase` and :meth:`TimeSeriesSampler.rate`
  derive windowed deltas and per-second rates;
* histograms sample to ``(t, bucket_counts, sum, count)`` tuples, from
  which :meth:`TimeSeriesSampler.quantile` derives windowed
  p50/p95/p99 via the same bucket interpolation Prometheus'
  ``histogram_quantile`` uses (:func:`histogram_quantile` here).

Sampling only *reads* instruments — it never touches random state or
result arrays, so a sampled campaign stays bit-identical to an
unsampled one.  Ring buffers are ``deque(maxlen=capacity)``, so a
week-long campaign holds the same memory as a minute-long one.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import Histogram, MetricKey, MetricsRegistry, get_registry

__all__ = ["TimeSeriesSampler", "histogram_quantile"]


def histogram_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """The ``q``-quantile estimated from histogram buckets.

    Mirrors Prometheus' ``histogram_quantile``: linear interpolation
    inside the bucket the rank falls in, a lower edge of 0 for the
    first bucket, and the highest *finite* bound when the rank lands in
    the +Inf bucket (an estimate can't exceed what was measured).

    Args:
        bounds: Finite bucket upper bounds, strictly increasing.
        counts: Per-bucket counts, one longer than ``bounds`` (the last
            slot is the implicit +Inf bucket).
    Returns:
        The estimate, or NaN for an empty histogram (or one with no
        finite buckets).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    counts = [int(c) for c in counts]
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"need {len(bounds) + 1} bucket counts for {len(bounds)} "
            f"bounds, got {len(counts)}"
        )
    if any(c < 0 for c in counts):
        raise ValueError("bucket counts must be non-negative")
    total = sum(counts)
    if total == 0:
        return math.nan
    rank = q * total
    cumulative = 0
    previous = 0.0
    for bound, count in zip(bounds, counts):
        if count > 0 and cumulative + count >= rank:
            if rank <= cumulative:
                return previous
            fraction = (rank - cumulative) / count
            return previous + (bound - previous) * fraction
        cumulative += count
        previous = bound
    # The rank falls in the +Inf bucket; the highest finite bound is
    # the best (and the Prometheus-compatible) answer.
    return bounds[-1] if bounds else math.nan


class TimeSeriesSampler:
    """Poll a registry into per-instrument ring buffers.

    Args:
        registry: The registry to sample.  ``None`` resolves the
            process-global registry *at each sample*, so a
            :func:`~repro.obs.metrics.scoped_registry` swap is honoured.
        capacity: Points retained per instrument (ring buffer size).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capacity: int = 720,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self._registry = registry
        self.capacity = capacity
        self.samples_taken = 0
        self._kinds: Dict[MetricKey, str] = {}
        self._points: Dict[MetricKey, Deque[Tuple[float, float]]] = {}
        self._bounds: Dict[MetricKey, Tuple[float, ...]] = {}
        self._hists: Dict[
            MetricKey, Deque[Tuple[float, Tuple[int, ...], float, int]]
        ] = {}

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def sample(self, now: Optional[float] = None) -> float:
        """Record one sample of every instrument; returns its timestamp."""
        registry = (
            self._registry if self._registry is not None else get_registry()
        )
        stamp = time.time() if now is None else float(now)
        for (name, labels), instrument in registry:
            key = (name, labels)
            if isinstance(instrument, Histogram):
                self._bounds.setdefault(key, tuple(instrument.buckets))
                ring = self._hists.setdefault(
                    key, deque(maxlen=self.capacity)
                )
                ring.append(
                    (
                        stamp,
                        tuple(instrument.bucket_counts),
                        instrument.sum,
                        instrument.count,
                    )
                )
            else:
                self._kinds[key] = instrument.kind
                ring = self._points.setdefault(
                    key, deque(maxlen=self.capacity)
                )
                ring.append((stamp, float(instrument.value)))
        self.samples_taken += 1
        return stamp

    # ------------------------------------------------------------------
    # Point series (counters / gauges)
    # ------------------------------------------------------------------
    def _matching(self, store: Dict, name: str, labels: Dict[str, str]):
        """Keys in ``store`` named ``name`` whose labels ⊇ ``labels``."""
        wanted = {(k, str(v)) for k, v in labels.items()}
        return [
            key
            for key in store
            if key[0] == name and wanted.issubset(set(key[1]))
        ]

    def series(
        self, name: str, **labels: str
    ) -> List[Tuple[float, float]]:
        """The raw ``(t, value)`` points for one exact instrument."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return list(self._points.get(key, ()))

    def latest(self, name: str, **labels: str) -> float:
        """The most recently sampled value (NaN when never sampled)."""
        points = self.series(name, **labels)
        return points[-1][1] if points else math.nan

    def increase(
        self, name: str, window: Optional[float] = None, **labels: str
    ) -> float:
        """Summed growth of matching counters over ``window`` seconds.

        Sums over every sampled label set whose labels are a superset
        of ``labels`` (so ``increase("serve.requests")`` totals all
        statuses).  ``window=None`` spans the whole buffer.  Negative
        per-series deltas (a registry swap mid-run) clamp to zero.
        Returns NaN when nothing matching was ever sampled.
        """
        keys = self._matching(self._points, name, labels)
        if not keys:
            return math.nan
        total = 0.0
        for key in keys:
            ring = self._points[key]
            t_last, v_last = ring[-1]
            if window is None:
                # Counters are born at zero, so the all-time increase
                # is the absolute total — which makes it agree exactly
                # with the registry's raw Prometheus export.
                total += max(0.0, v_last)
            else:
                _, v_ref = self._reference(ring, t_last, window)
                total += max(0.0, v_last - v_ref)
        return total

    def rate(
        self, name: str, window: Optional[float] = None, **labels: str
    ) -> float:
        """Per-second growth of matching counters over ``window``.

        The denominator is the observed sampling span (at most
        ``window``), so rates stay honest when sampling just started.
        Zero when no time has passed; NaN when never sampled.
        """
        keys = self._matching(self._points, name, labels)
        if not keys:
            return math.nan
        delta = 0.0
        span = 0.0
        for key in keys:
            ring = self._points[key]
            t_last, v_last = ring[-1]
            t_ref, v_ref = self._reference(ring, t_last, window)
            delta += max(0.0, v_last - v_ref)
            span = max(span, t_last - t_ref)
        return delta / span if span > 0 else 0.0

    @staticmethod
    def _reference(
        ring: Deque[Tuple[float, float]],
        t_last: float,
        window: Optional[float],
    ) -> Tuple[float, float]:
        """The oldest in-window sample (the whole buffer when None)."""
        if window is None:
            return ring[0]
        cutoff = t_last - window
        chosen = ring[-1]
        for point in reversed(ring):
            if point[0] < cutoff:
                break
            chosen = point
        return chosen

    # ------------------------------------------------------------------
    # Histogram series
    # ------------------------------------------------------------------
    def quantile(
        self,
        name: str,
        q: float,
        window: Optional[float] = None,
        **labels: str,
    ) -> float:
        """Bucket-interpolated ``q``-quantile over matching histograms.

        With a ``window``, the estimate covers only observations that
        arrived inside it (latest bucket counts minus the oldest
        in-window sample's); without one it covers everything sampled —
        which, right after a :meth:`sample`, agrees exactly with a
        quantile computed from the registry's raw Prometheus export.
        """
        keys = self._matching(self._hists, name, labels)
        if not keys:
            return math.nan
        bounds: Optional[Tuple[float, ...]] = None
        merged: Optional[List[int]] = None
        for key in keys:
            if bounds is None:
                bounds = self._bounds[key]
                merged = [0] * (len(bounds) + 1)
            elif self._bounds[key] != bounds:
                raise ValueError(
                    f"histogram {name!r} label sets use different "
                    "buckets; quantiles cannot merge them"
                )
            ring = self._hists[key]
            t_last, counts_last, _, _ = ring[-1]
            counts_ref: Sequence[int] = (0,) * len(counts_last)
            if window is not None:
                cutoff = t_last - window
                for stamp, counts, _, _ in reversed(ring):
                    if stamp < cutoff:
                        counts_ref = counts
                        break
            assert merged is not None
            for index, (last, ref) in enumerate(
                zip(counts_last, counts_ref)
            ):
                merged[index] += max(0, last - ref)
        assert bounds is not None and merged is not None
        return histogram_quantile(bounds, merged, q)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_payload(
        self,
        names: Optional[Sequence[str]] = None,
        limit: int = 120,
    ) -> Dict[str, Dict]:
        """A JSON-ready dump of the point series (status endpoints).

        Args:
            names: Restrict to these metric names (all when ``None``).
            limit: At most this many trailing points per series.
        """
        wanted = set(names) if names is not None else None
        out: Dict[str, Dict] = {}
        for (name, labels), ring in sorted(self._points.items()):
            if wanted is not None and name not in wanted:
                continue
            suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
                if labels
                else ""
            )
            points = list(ring)[-limit:]
            out[name + suffix] = {
                "kind": self._kinds[(name, labels)],
                "t": [round(t, 3) for t, _ in points],
                "v": [v for _, v in points],
            }
        return out
