"""Restricting the design space to a subrange of interest.

Architects rarely explore the full Table 1 space; an embedded-core study
caps the width at 4 and the L2 at a megabyte, a server study floors
them.  :func:`restrict` builds a new, fully functional
:class:`~repro.designspace.space.DesignSpace` whose parameter grids are
clipped to given (min, max) windows — every downstream component
(sampling, datasets, predictors, search) works on the restricted space
unchanged, because they only ever talk to the ``DesignSpace`` interface.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from .parameters import Parameter
from .space import DesignSpace


def restrict(
    space: DesignSpace, **windows: Tuple[int, int]
) -> DesignSpace:
    """Clip parameter grids to inclusive (low, high) windows.

    Args:
        space: The space to restrict.
        windows: ``parameter_name=(low, high)`` keyword arguments; values
            outside the window are dropped from that parameter's grid.
            Baselines falling outside a window snap to the nearest
            surviving grid value.

    Returns:
        A new design space over the clipped grids.

    Raises:
        KeyError: for an unknown parameter name.
        ValueError: if a window empties a parameter's grid.

    Example::

        embedded = restrict(
            DesignSpace(), width=(2, 4), l2cache_kb=(256, 1024)
        )
    """
    known = {parameter.name for parameter in space.parameters}
    unknown = set(windows) - known
    if unknown:
        raise KeyError(f"unknown parameters: {sorted(unknown)}")

    new_parameters = []
    for parameter in space.parameters:
        if parameter.name not in windows:
            new_parameters.append(parameter)
            continue
        low, high = windows[parameter.name]
        if low > high:
            raise ValueError(
                f"{parameter.name}: window low {low} exceeds high {high}"
            )
        values = tuple(v for v in parameter.values if low <= v <= high)
        if not values:
            raise ValueError(
                f"{parameter.name}: window ({low}, {high}) leaves no grid "
                f"values out of {parameter.values}"
            )
        baseline = parameter.baseline
        if not low <= baseline <= high:
            baseline = min(values, key=lambda v: abs(v - parameter.baseline))
        new_parameters.append(
            replace(parameter, values=values, baseline=baseline)
        )
    return DesignSpace(new_parameters)


def embedded_space(space: DesignSpace | None = None) -> DesignSpace:
    """A ready-made embedded-class subspace (narrow, small memories)."""
    return restrict(
        space if space is not None else DesignSpace(),
        width=(2, 4),
        rob_size=(32, 96),
        iq_size=(8, 48),
        lsq_size=(8, 48),
        rf_size=(40, 104),
        rf_read_ports=(2, 8),
        rf_write_ports=(1, 4),
        gshare_size=(1024, 8192),
        icache_kb=(8, 32),
        dcache_kb=(8, 32),
        l2cache_kb=(256, 1024),
    )


def server_space(space: DesignSpace | None = None) -> DesignSpace:
    """A ready-made server-class subspace (wide, large memories)."""
    return restrict(
        space if space is not None else DesignSpace(),
        width=(4, 8),
        rob_size=(96, 160),
        rf_size=(96, 160),
        gshare_size=(8192, 32768),
        icache_kb=(32, 128),
        dcache_kb=(32, 128),
        l2cache_kb=(1024, 4096),
    )
