"""Residual analysis: where in the space does a predictor go wrong?

A fitted predictor's mean error hides structure: a model that is 7 %
off on average may be 2 % off in the bulk of the space and 30 % off on
narrow machines with tiny register files.  This module locates such
structure:

* :func:`residual_profile` — signed relative residuals against
  simulated truth, plus summary statistics;
* :func:`residuals_by_parameter` — mean absolute residual conditioned
  on each value of each parameter (where the bias lives);
* :func:`worst_regions` — the configurations with the largest errors,
  for eyeballing what they have in common.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.space import DesignSpace


@dataclass(frozen=True)
class ResidualProfile:
    """Signed relative residuals of a predictor over a config set."""

    residuals: np.ndarray  # (prediction - actual) / actual
    mean_absolute: float
    bias: float  # mean signed residual: systematic over/under-prediction
    worst: float

    @property
    def percent(self) -> float:
        """Mean absolute residual in percent (equals rmae)."""
        return self.mean_absolute * 100.0


def residual_profile(
    predictions: np.ndarray, actual: np.ndarray
) -> ResidualProfile:
    """Summarise the signed relative residuals of a prediction batch."""
    predictions = np.asarray(predictions, dtype=float).reshape(-1)
    actual = np.asarray(actual, dtype=float).reshape(-1)
    if predictions.shape != actual.shape:
        raise ValueError("predictions and actual must align")
    if predictions.size == 0:
        raise ValueError("residuals of zero samples are undefined")
    if np.any(actual <= 0.0):
        raise ValueError("actual values must be positive")
    residuals = (predictions - actual) / actual
    return ResidualProfile(
        residuals=residuals,
        mean_absolute=float(np.mean(np.abs(residuals))),
        bias=float(residuals.mean()),
        worst=float(np.max(np.abs(residuals))),
    )


def residuals_by_parameter(
    space: DesignSpace,
    configs: Sequence[Configuration],
    residuals: np.ndarray,
) -> Dict[str, Dict[int, float]]:
    """Mean absolute residual per parameter value.

    A value whose conditional error is far above the overall mean marks
    a region the predictor handles poorly (e.g. the rf_size = 40 cliff,
    which no smooth model fits perfectly).
    """
    residuals = np.asarray(residuals, dtype=float).reshape(-1)
    if len(configs) != residuals.shape[0]:
        raise ValueError("configs and residuals must align")
    absolute = np.abs(residuals)
    raw = np.array([list(config.values()) for config in configs])
    names = [p.name for p in space.parameters]
    result: Dict[str, Dict[int, float]] = {}
    for column, name in enumerate(names):
        per_value: Dict[int, float] = {}
        for value in np.unique(raw[:, column]):
            mask = raw[:, column] == value
            per_value[int(value)] = float(absolute[mask].mean())
        result[name] = per_value
    return result


def worst_regions(
    configs: Sequence[Configuration],
    residuals: np.ndarray,
    count: int = 10,
) -> List[Tuple[Configuration, float]]:
    """The ``count`` configurations with the largest absolute residuals."""
    residuals = np.asarray(residuals, dtype=float).reshape(-1)
    if len(configs) != residuals.shape[0]:
        raise ValueError("configs and residuals must align")
    if count < 1:
        raise ValueError("count must be at least 1")
    order = np.argsort(-np.abs(residuals))[:count]
    return [(configs[i], float(residuals[i])) for i in order]


def error_hotspots(
    space: DesignSpace,
    configs: Sequence[Configuration],
    residuals: np.ndarray,
    threshold: float = 1.5,
) -> List[Tuple[str, int, float]]:
    """Parameter values whose conditional error exceeds ``threshold``
    times the overall mean, sorted by severity.

    Returns (parameter, value, conditional mean-abs residual) rows.
    """
    overall = float(np.mean(np.abs(np.asarray(residuals, dtype=float))))
    if overall == 0.0:
        return []
    by_parameter = residuals_by_parameter(space, configs, residuals)
    hotspots = [
        (name, value, conditional)
        for name, per_value in by_parameter.items()
        for value, conditional in per_value.items()
        if conditional > threshold * overall
    ]
    hotspots.sort(key=lambda row: -row[2])
    return hotspots
