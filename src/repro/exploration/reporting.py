"""ASCII reporting helpers used by the benchmark harnesses.

The benches regenerate the paper's tables and figures as text: aligned
tables for tabular artefacts and aligned numeric series for the figure
sweeps, each prefixed with the experiment's scale so reduced-scale runs
are never mistaken for paper-scale ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
) -> str:
    """Render one or more y-series against a shared x axis."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(headers, rows)


def format_five_number(
    program: str,
    minimum: float,
    quartile25: float,
    median: float,
    quartile75: float,
    maximum: float,
    baseline: float,
) -> List[object]:
    """One Fig. 4 row."""
    return [program, minimum, quartile25, median, quartile75, maximum, baseline]


def scale_banner(description: str, **scale: object) -> str:
    """A one-line banner stating the scale an experiment ran at."""
    settings = ", ".join(f"{key}={value}" for key, value in scale.items())
    return f"== {description} [{settings}] =="


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars (used for per-program error charts)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty)"
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        length = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(
            f"{label.ljust(label_width)} | {'#' * length} {value:.1f}{unit}"
        )
    return "\n".join(lines)
