"""Classic predictor-guided search strategies (migrated home).

These are the original one-shot strategies from
``repro.exploration.search`` — candidate-scan ranking, steepest-descent
hill climbing, simulated annealing and the two-metric Pareto sweep —
now living in the search subsystem beside their gym-style successors
(:mod:`repro.search.env` + :mod:`repro.search.agents`).  The old import
path keeps working through a deprecation shim.

All strategies work with anything exposing ``predict(configs)`` — the
architecture-centric predictor, a program-specific predictor, or (for
oracle studies) a thin wrapper around a simulator.

Relative to the historical versions, frontier extraction now *fails
loudly* on malformed metric values: NaN/infinite predictions raise
``ValueError`` naming the offending index instead of silently
mis-ranking the frontier (NaN compares false with everything, so a
single bad value used to poison the sweep order unpredictably).
Exact duplicate points are deduplicated deterministically — the first
occurrence wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.sampling import sample_configurations
from repro.designspace.space import DesignSpace

__all__ = [
    "Predictor",
    "RankedCandidate",
    "SearchResult",
    "TradeOffPoint",
    "dominated_fraction",
    "hill_climb",
    "pareto_front",
    "predicted_best",
    "simulated_annealing",
]


class Predictor(Protocol):
    """Anything that maps configurations to predicted metric values."""

    def predict(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Predicted metric values, one per configuration."""
        ...


@dataclass(frozen=True)
class RankedCandidate:
    """A candidate configuration with its predicted (and, if verified,
    simulated) metric value."""

    configuration: Configuration
    predicted: float
    simulated: Optional[float] = None


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a predictor-guided search."""

    best: RankedCandidate
    shortlist: Tuple[RankedCandidate, ...]
    candidates_scanned: int
    simulations_spent: int


def _require_finite(values: np.ndarray, label: str) -> None:
    """Raise ``ValueError`` naming the first non-finite entry."""
    bad = ~np.isfinite(values)
    if bad.any():
        index = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"non-finite {label} value {values[index]!r} at index {index}; "
            "frontier extraction needs finite metrics"
        )


def predicted_best(
    predictor: Predictor,
    space: DesignSpace,
    candidates: int = 10_000,
    shortlist: int = 10,
    seed: Optional[int] = None,
    verify: Optional[Callable[[Configuration], float]] = None,
) -> SearchResult:
    """Scan a random candidate set; optionally verify the short-list.

    Args:
        predictor: Fitted predictor for the target metric (lower=better).
        space: The design space to sample candidates from.
        candidates: Size of the random candidate set.
        shortlist: How many predicted-best candidates to keep/verify.
        seed: Sampling seed.
        verify: Optional ``config -> simulated value`` callable; when
            given, the short-list is re-ranked by simulated values (this
            is where the handful of real simulations is spent).
    """
    if shortlist < 1 or shortlist > candidates:
        raise ValueError("shortlist must be in [1, candidates]")
    pool = sample_configurations(space, candidates, seed=seed)
    predictions = np.asarray(predictor.predict(pool), dtype=float)
    order = np.argsort(predictions)[:shortlist]
    ranked = [
        RankedCandidate(pool[i], float(predictions[i])) for i in order
    ]
    simulations = 0
    if verify is not None:
        ranked = [
            RankedCandidate(
                candidate.configuration,
                candidate.predicted,
                float(verify(candidate.configuration)),
            )
            for candidate in ranked
        ]
        simulations = len(ranked)
        ranked.sort(key=lambda candidate: candidate.simulated)
    best = ranked[0]
    return SearchResult(
        best=best,
        shortlist=tuple(ranked),
        candidates_scanned=candidates,
        simulations_spent=simulations,
    )


def hill_climb(
    predictor: Predictor,
    space: DesignSpace,
    start: Optional[Configuration] = None,
    max_steps: int = 100,
) -> SearchResult:
    """Steepest-descent local search over single-parameter steps.

    Starts from ``start`` (default: the baseline machine) and repeatedly
    moves to the best-predicted legal neighbour until no neighbour
    improves or ``max_steps`` is exhausted.  Purely prediction-driven:
    zero simulations.
    """
    if max_steps < 1:
        raise ValueError("max_steps must be at least 1")
    current = start if start is not None else space.baseline
    space.validate(current)
    current_value = float(predictor.predict([current])[0])
    scanned = 1
    path = [RankedCandidate(current, current_value)]
    for _ in range(max_steps):
        neighbours = space.neighbours(current)
        if not neighbours:
            break
        values = np.asarray(predictor.predict(neighbours), dtype=float)
        scanned += len(neighbours)
        best_index = int(np.argmin(values))
        if values[best_index] >= current_value:
            break
        current = neighbours[best_index]
        current_value = float(values[best_index])
        path.append(RankedCandidate(current, current_value))
    return SearchResult(
        best=path[-1],
        shortlist=tuple(path),
        candidates_scanned=scanned,
        simulations_spent=0,
    )


def simulated_annealing(
    predictor: Predictor,
    space: DesignSpace,
    start: Optional[Configuration] = None,
    steps: int = 400,
    initial_temperature: float = 0.15,
    seed: Optional[int] = None,
) -> SearchResult:
    """Simulated annealing over single-parameter moves.

    Escapes the local optima that :func:`hill_climb` gets stuck in:
    each step proposes a random legal neighbour and accepts it with the
    Metropolis probability ``exp(-relative_worsening / temperature)``,
    with the temperature decaying geometrically to ~1 percent of its
    initial value over the run.  Purely prediction-driven.

    Args:
        predictor: Fitted predictor (lower = better).
        space: The design space.
        start: Starting configuration (default: the baseline machine).
        steps: Proposal count.
        initial_temperature: Relative-worsening scale accepted at the
            start (0.15 = a 15 percent worse neighbour is accepted with
            probability 1/e initially).
        seed: Proposal/acceptance seed.
    """
    if steps < 1:
        raise ValueError("steps must be at least 1")
    if initial_temperature <= 0:
        raise ValueError("initial_temperature must be positive")
    rng = np.random.default_rng(seed)
    current = start if start is not None else space.baseline
    space.validate(current)
    current_value = float(predictor.predict([current])[0])
    best = RankedCandidate(current, current_value)
    scanned = 1
    decay = 0.01 ** (1.0 / steps)
    temperature = initial_temperature
    for _ in range(steps):
        neighbours = space.neighbours(current)
        if not neighbours:
            break
        proposal = neighbours[int(rng.integers(0, len(neighbours)))]
        value = float(predictor.predict([proposal])[0])
        scanned += 1
        worsening = (value - current_value) / max(current_value, 1e-12)
        if worsening <= 0 or rng.random() < np.exp(-worsening / temperature):
            current, current_value = proposal, value
            if current_value < best.predicted:
                best = RankedCandidate(current, current_value)
        temperature *= decay
    return SearchResult(
        best=best,
        shortlist=(best,),
        candidates_scanned=scanned,
        simulations_spent=0,
    )


@dataclass(frozen=True)
class TradeOffPoint:
    """One point of a two-metric trade-off frontier."""

    configuration: Configuration
    cycles: float
    energy: float


def pareto_front(
    cycles_predictor: Predictor,
    energy_predictor: Predictor,
    space: DesignSpace,
    candidates: int = 10_000,
    seed: Optional[int] = None,
) -> List[TradeOffPoint]:
    """Predicted cycles/energy Pareto frontier over a random sample.

    Returns the non-dominated points sorted by cycles (ascending);
    walking the list trades performance for energy.  Exact duplicate
    (cycles, energy) points keep their first occurrence only.

    Raises:
        ValueError: if either predictor emits a NaN or infinite value
            (a single NaN would silently poison the sweep's ordering).
    """
    pool = sample_configurations(space, candidates, seed=seed)
    cycles = np.asarray(cycles_predictor.predict(pool), dtype=float)
    energy = np.asarray(energy_predictor.predict(pool), dtype=float)
    _require_finite(cycles, "cycles")
    _require_finite(energy, "energy")
    order = np.lexsort((energy, cycles))
    front: List[TradeOffPoint] = []
    best_energy = np.inf
    for index in order:
        if energy[index] < best_energy:
            best_energy = energy[index]
            front.append(
                TradeOffPoint(
                    pool[index], float(cycles[index]), float(energy[index])
                )
            )
    return front


def dominated_fraction(
    front: Sequence[TradeOffPoint], points: Sequence[TradeOffPoint]
) -> float:
    """Fraction of ``points`` dominated by some member of ``front``.

    A quality measure for predicted frontiers against simulated truth.

    Raises:
        ValueError: if ``points`` is empty, or any coordinate on either
            side is NaN/infinite (NaN comparisons are silently false,
            which would undercount domination).
    """
    if not points:
        raise ValueError("points must be non-empty")
    for label, group in (("front", front), ("points", points)):
        values = np.asarray(
            [(p.cycles, p.energy) for p in group], dtype=float
        )
        if values.size:
            _require_finite(values.ravel(), label)
    dominated = 0
    for point in points:
        for member in front:
            if (
                member.cycles <= point.cycles
                and member.energy <= point.energy
                and (member.cycles < point.cycles
                     or member.energy < point.energy)
            ):
                dominated += 1
                break
    return dominated / len(points)
