"""Tests for the profile builder helpers."""

import numpy as np
import pytest

from repro.workloads import make_mix, make_profile


class TestMakeMix:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        mix = make_mix(rng, 0.3, 0.15, 0.4)
        assert sum(mix.as_tuple()) == pytest.approx(1.0)

    def test_respects_aggregates(self):
        rng = np.random.default_rng(1)
        mix = make_mix(rng, 0.3, 0.15, 0.0)
        assert mix.memory == pytest.approx(0.3, rel=0.1)
        assert mix.branch == pytest.approx(0.15, rel=0.1)
        assert mix.fp == 0.0

    def test_fp_share_applies_to_compute(self):
        rng = np.random.default_rng(2)
        mix = make_mix(rng, 0.3, 0.1, 0.5)
        compute = 1.0 - mix.memory - mix.branch
        assert mix.fp == pytest.approx(compute * 0.5, rel=0.05)

    def test_impossible_mix_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="no compute"):
            make_mix(rng, 0.7, 0.35, 0.0)


class TestMakeProfile:
    def _profile(self, name="synthetic"):
        return make_profile(
            name, "testsuite", "int",
            memory_fraction=0.3,
            branch_fraction=0.14,
            fp_fraction=0.0,
            ilp_max=2.5,
            ilp_window_scale=50,
            working_sets_kb=[(64, 0.05), (512, 0.03)],
            cold_miss=0.002,
            instruction_footprint_kb=32,
            mispredict_floor=0.05,
            mispredict_scale=0.05,
        )

    def test_profile_is_valid(self):
        profile = self._profile()
        assert profile.name == "synthetic"
        assert profile.suite == "testsuite"
        assert 0 < profile.iq_pressure <= 1

    def test_jitter_is_deterministic_per_name(self):
        assert self._profile() == self._profile()

    def test_jitter_differs_across_names(self):
        a = self._profile("alpha")
        b = self._profile("beta")
        assert a.ilp_max != b.ilp_max

    def test_working_sets_scaled_to_bytes(self):
        profile = self._profile()
        footprint = profile.data_locality.footprint
        assert 400 * 1024 < footprint < 640 * 1024

    def test_instruction_stream_is_cacheable(self):
        """Instruction miss weights stay small (a few percent)."""
        profile = self._profile()
        total_weight = sum(
            w for _, w in profile.instruction_locality.working_sets
        )
        assert total_weight < 0.1
