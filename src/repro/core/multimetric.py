"""Predicting all four metrics from one response set.

The paper trains an independent predictor per target metric.  But ED
and EDD are *products* of cycles and energy, which suggests an
alternative: predict cycles and energy (the easy, low-error targets)
and **compose** ED = energy x cycles and EDD = energy x cycles^2
algebraically.  Composition reuses one set of responses for all four
metrics and inherits the low error of the base targets — at the price
of multiplying their errors where they correlate.

:class:`MultiMetricPredictor` packages both routes; the
``bench_ablation_composed_metrics`` harness measures which wins.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.sim.metrics import Metric

from .predictor import ArchitectureCentricPredictor
from .program_model import ProgramSpecificPredictor


class MultiMetricPredictor:
    """All four target metrics from one pair of fitted base predictors.

    Args:
        cycles_models: Offline pool for the cycles metric.
        energy_models: Offline pool for the energy metric.
        ridge: Ridge setting for both combining regressors.
    """

    def __init__(
        self,
        cycles_models: Sequence[ProgramSpecificPredictor],
        energy_models: Sequence[ProgramSpecificPredictor],
        ridge: float = 0.05,
    ) -> None:
        if not cycles_models or not energy_models:
            raise ValueError("both model pools are required")
        if cycles_models[0].metric is not Metric.CYCLES:
            raise ValueError("cycles_models must target cycles")
        if energy_models[0].metric is not Metric.ENERGY:
            raise ValueError("energy_models must target energy")
        self._cycles = ArchitectureCentricPredictor(cycles_models, ridge=ridge)
        self._energy = ArchitectureCentricPredictor(energy_models, ridge=ridge)
        self._fitted = False

    def fit_responses(
        self,
        response_configs: Sequence[Configuration],
        cycles_values: np.ndarray,
        energy_values: np.ndarray,
    ) -> "MultiMetricPredictor":
        """Fit both base combiners on one shared response set.

        The same R simulations yield both cycles and energy readings, so
        no extra simulation is spent relative to a single-metric fit.
        """
        self._cycles.fit_responses(response_configs, cycles_values)
        self._energy.fit_responses(response_configs, energy_values)
        self._fitted = True
        return self

    def predict(
        self, configs: Sequence[Configuration], metric: Metric
    ) -> np.ndarray:
        """Predict any of the four metrics by composition."""
        if not self._fitted:
            raise RuntimeError("the predictor has not been fitted yet")
        cycles = self._cycles.predict(configs)
        if metric is Metric.CYCLES:
            return cycles
        energy = self._energy.predict(configs)
        if metric is Metric.ENERGY:
            return energy
        if metric is Metric.ED:
            return energy * cycles
        if metric is Metric.EDD:
            return energy * cycles * cycles
        raise ValueError(f"unknown metric {metric!r}")

    def predict_all(
        self, configs: Sequence[Configuration]
    ) -> Dict[Metric, np.ndarray]:
        """All four metrics in one call (base predictions reused)."""
        if not self._fitted:
            raise RuntimeError("the predictor has not been fitted yet")
        cycles = self._cycles.predict(configs)
        energy = self._energy.predict(configs)
        return {
            Metric.CYCLES: cycles,
            Metric.ENERGY: energy,
            Metric.ED: energy * cycles,
            Metric.EDD: energy * cycles * cycles,
        }

    @property
    def training_error(self) -> Dict[Metric, float]:
        """Training errors of the two base fits (the confidence signal)."""
        if not self._fitted:
            raise RuntimeError("the predictor has not been fitted yet")
        return {
            Metric.CYCLES: self._cycles.training_error,
            Metric.ENERGY: self._energy.training_error,
        }
