"""Analytic cache hierarchy model.

Derives L1 and L2 miss ratios for a workload's reference stream from its
:class:`~repro.workloads.profile.LocalityModel`.  The treatment follows
the standard stack-distance argument: the probability a reference misses
in a cache of effective capacity ``C`` equals the probability its reuse
distance exceeds ``C``; for an inclusive two-level hierarchy the *local*
L2 miss ratio is the ratio of the two capacity-miss probabilities
(a reference reaching L2 has, by construction, reuse distance beyond the
L1's capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.profile import LocalityModel


def effective_capacity(capacity_bytes, associativity: int) -> np.ndarray:
    """Fully associative capacity equivalent of a set-associative cache.

    Limited associativity wastes part of the capacity to conflicts; the
    usual rule of thumb converges to the full capacity as associativity
    grows (direct-mapped keeps roughly 65 percent).
    """
    if associativity < 1:
        raise ValueError("associativity must be at least 1")
    capacity = np.asarray(capacity_bytes, dtype=float)
    return capacity * (1.0 - 0.35 / associativity)


@dataclass(frozen=True)
class HierarchyMissRatios:
    """Miss ratios of a two-level hierarchy for one reference stream.

    Attributes:
        l1: Misses per L1 access.
        l2_local: Misses per L2 access (i.e. per L1 miss).
        l2_global: Misses per original reference (``l1 * l2_local``).
    """

    l1: np.ndarray
    l2_local: np.ndarray
    l2_global: np.ndarray


def hierarchy_miss_ratios(
    locality: LocalityModel,
    l1_capacity_bytes,
    l2_capacity_bytes,
    l1_associativity: int = 2,
    l2_associativity: int = 8,
) -> HierarchyMissRatios:
    """Miss ratios of an inclusive L1/L2 pair for one reference stream.

    Accepts scalars or numpy arrays for the capacities (broadcast
    together), so a whole batch of configurations evaluates in one call.
    """
    l1_effective = effective_capacity(l1_capacity_bytes, l1_associativity)
    l2_effective = effective_capacity(l2_capacity_bytes, l2_associativity)
    l1_miss = np.asarray(locality.miss_ratio(l1_effective), dtype=float)
    l2_capacity_miss = np.asarray(locality.miss_ratio(l2_effective), dtype=float)
    # An inclusive L2 smaller than its L1 would be degenerate; the design
    # space forbids it, but guard the division regardless.
    with np.errstate(divide="ignore", invalid="ignore"):
        local = np.where(l1_miss > 0.0, l2_capacity_miss / l1_miss, 0.0)
    local = np.clip(local, 0.0, 1.0)
    return HierarchyMissRatios(
        l1=l1_miss, l2_local=local, l2_global=l1_miss * local
    )


def misses_per_kilo_instruction(
    miss_ratio, accesses_per_instruction: float
) -> np.ndarray:
    """Convert a per-access miss ratio into MPKI."""
    if accesses_per_instruction < 0:
        raise ValueError("accesses_per_instruction must be non-negative")
    return np.asarray(miss_ratio, dtype=float) * accesses_per_instruction * 1000.0
