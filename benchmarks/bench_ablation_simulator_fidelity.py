"""Ablation A1: the three simulator tiers against each other.

The large experiments use the fast interval model; this ablation checks
that the other two tiers — the Monte Carlo statistical simulator and
the detailed trace-driven pipeline simulator — rank configurations
consistently with it.  Perfect agreement is not expected (the pipeline
model is trace-driven with cold-ish caches at this trace length and no
wrong-path execution; the Monte Carlo model carries sampling noise);
what matters for design space exploration is positive rank agreement on
both performance and energy.
"""

import numpy as np

from repro.designspace import DesignSpace, sample_configurations
from repro.exploration import format_table, scale_banner
from repro.sim import IntervalSimulator, MonteCarloSimulator
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import generate_trace, spec2000_suite

PROGRAM = "gzip"
CONFIGS = 10
TRACE_LENGTH = 40_000
WARMUP = 20_000


def _spearman(a, b) -> float:
    ranks = lambda x: np.argsort(np.argsort(x))
    return float(np.corrcoef(ranks(a), ranks(b))[0, 1])


def test_ablation_simulator_fidelity(benchmark, record_artifact):
    space = DesignSpace()
    profile = spec2000_suite()[PROGRAM]
    configs = sample_configurations(space, CONFIGS, seed=404)
    trace = generate_trace(profile, TRACE_LENGTH)
    interval = IntervalSimulator(space).simulate_batch(profile, configs)

    def run_pipeline():
        cycles, energy = [], []
        for config in configs:
            result = PipelineSimulator(config).run(trace, warmup=WARMUP)
            cycles.append(result.cycles)
            energy.append(result.energy)
        return np.array(cycles), np.array(energy)

    pipe_cycles, pipe_energy = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1
    )
    montecarlo = MonteCarloSimulator(space, replications=12)
    mc_cycles = np.array(
        [montecarlo.simulate(profile, c, seed=11).cycles for c in configs]
    )

    cycles_rank = _spearman(pipe_cycles, interval.cycles)
    energy_rank = _spearman(pipe_energy, interval.energy)
    mc_rank = _spearman(mc_cycles, interval.cycles)

    rows = [
        (i, f"{interval.cycles[i]:.3e}", pipe_cycles[i],
         f"{interval.energy[i]:.3e}", f"{pipe_energy[i]:.3e}")
        for i in range(CONFIGS)
    ]
    text = (
        scale_banner(
            "Ablation A1 — interval vs pipeline simulator",
            program=PROGRAM, configs=CONFIGS, trace=TRACE_LENGTH,
            warmup=WARMUP,
        )
        + "\n"
        + format_table(
            ("config", "interval cycles", "pipeline cycles",
             "interval energy", "pipeline energy"),
            rows,
        )
        + f"\n\nrank agreement vs interval model: "
        f"pipeline cycles {cycles_rank:.2f}, pipeline energy "
        f"{energy_rank:.2f}, monte-carlo cycles {mc_rank:.2f}"
    )
    record_artifact("ablation_simulator_fidelity", text)

    assert cycles_rank > 0.4
    assert energy_rank > 0.6
    assert mc_rank > 0.5
