"""End-to-end distributed campaigns over real loopback TCP.

The contract under test: a distributed campaign is **bit-identical** to
a serial one — same metric matrices, same journalled cell checksums —
whatever the worker count, and its checkpoint is interchangeable with a
serial checkpoint in both directions.  Failure handling (dead workers,
hung workers, flaky backends) must change *when* cells finish, never
*what* they contain.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.distrib import CampaignCoordinator, CampaignWorker
from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    read_message,
    write_message,
)
from repro.runtime import (
    CampaignRunner,
    FaultInjectingBackend,
    IntervalBackend,
    RetryPolicy,
)
from repro.sim import Metric

#: Fast, deterministic retries for tests (no real backoff sleeps).
FAST_POLICY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def serial_result(backend, suite, configs, tmp_path, chunk_size=16):
    runner = CampaignRunner(
        backend,
        tmp_path / "serial",
        chunk_size=chunk_size,
        retry_policy=FAST_POLICY,
        seed=5,
    )
    return runner, runner.run(suite, configs)


def distributed(
    runner,
    suite,
    configs,
    n_workers=2,
    backend_factory=None,
    coordinator_kwargs=None,
    worker_kwargs=None,
    extra_clients=(),
):
    """Run one campaign with in-process workers on one event loop."""

    async def scenario():
        coordinator = CampaignCoordinator(
            runner,
            port=0,
            monitor_interval=0.02,
            **(coordinator_kwargs or {}),
        )
        ready = asyncio.Event()
        campaign = asyncio.create_task(
            coordinator.run_async(
                suite, configs, ready_callback=lambda _: ready.set()
            )
        )
        await ready.wait()
        clients = [
            asyncio.create_task(client(coordinator.port))
            for client in extra_clients
        ]
        workers = [
            CampaignWorker(
                "127.0.0.1",
                coordinator.port,
                backend_factory=backend_factory,
                worker_id=f"w{index}",
                **(worker_kwargs or {}),
            )
            for index in range(n_workers)
        ]
        runs = [asyncio.create_task(w.run_async()) for w in workers]
        result = await campaign
        await asyncio.gather(*runs, *clients, return_exceptions=True)
        return coordinator, result

    return asyncio.run(scenario())


def journal_checksums(runner):
    """``{cell: checksum}`` from a runner's journal."""
    return {
        record["cell"]: record["checksum"]
        for record in runner.journal.records()
        if "cell" in record
    }


def assert_matrices_identical(expected, actual):
    for metric in Metric.all():
        a, b = expected.matrix(metric), actual.matrix(metric)
        assert a.tobytes() == b.tobytes(), f"{metric} diverged"


class TestBitIdentical:
    def test_two_workers_match_serial(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "dist",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )
        coordinator, result = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=2,
            backend_factory=lambda: backend,
        )
        assert result.complete
        assert result.simulated_cells == serial.total_cells
        assert_matrices_identical(serial, result)
        # The journals record identical artifact checksums cell by
        # cell: the on-disk checkpoints are interchangeable.
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )
        assert coordinator.stats.tasks_completed == serial.total_cells
        assert coordinator.stats.workers_seen == 2
        assert coordinator.stats.reclaims == 0

    def test_four_workers_match_one(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        results = {}
        for count in (1, 4):
            runner = CampaignRunner(
                backend,
                tmp_path / f"n{count}",
                chunk_size=16,
                retry_policy=FAST_POLICY,
                seed=5,
            )
            _, results[count] = distributed(
                runner,
                tiny_suite,
                tiny_configs,
                n_workers=count,
                backend_factory=lambda: backend,
            )
        assert results[1].complete and results[4].complete
        assert_matrices_identical(results[1], results[4])

    def test_flaky_backend_matches_clean_serial(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "flaky",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )
        coordinator, result = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=2,
            # Each worker's private fault injector drops ~25% of calls;
            # the retry machinery must absorb every one of them.
            backend_factory=lambda: FaultInjectingBackend(
                backend, seed=13, transient_rate=0.25
            ),
            coordinator_kwargs={"worker_breaker_threshold": 100},
        )
        assert result.complete
        assert result.attempts > result.simulated_cells  # faults fired
        assert_matrices_identical(serial, result)
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )


class _BatchOnlyBackend:
    """A pre-suite worker backend: ``simulate_batch`` and nothing else."""

    def __init__(self, inner):
        self._inner = inner

    def simulate_batch(self, profile, configs):
        return self._inner.simulate_batch(profile, configs)


class TestSuiteCapability:
    def test_mixed_fleet_matches_serial(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """One suite-capable worker next to one legacy batch-only
        worker: the coordinator bundles each according to its HELLO
        flag and the journal stays bit-identical to a serial run."""
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "mixed",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )

        async def scenario():
            coordinator = CampaignCoordinator(
                dist_runner, port=0, monitor_interval=0.02
            )
            ready = asyncio.Event()
            campaign = asyncio.create_task(
                coordinator.run_async(
                    tiny_suite, tiny_configs,
                    ready_callback=lambda _: ready.set(),
                )
            )
            await ready.wait()
            fast = CampaignWorker(
                "127.0.0.1", coordinator.port,
                backend_factory=lambda: backend, worker_id="fast",
            )
            legacy = CampaignWorker(
                "127.0.0.1", coordinator.port,
                backend_factory=lambda: _BatchOnlyBackend(backend),
                worker_id="legacy",
            )
            runs = [
                asyncio.create_task(w.run_async())
                for w in (fast, legacy)
            ]
            result = await campaign
            await asyncio.gather(*runs, return_exceptions=True)
            return coordinator, result, fast, legacy

        coordinator, result, fast, legacy = asyncio.run(scenario())
        assert result.complete
        # The capability is derived from the backend, not configured.
        assert fast.capabilities.simulate_suite is True
        assert legacy.capabilities.simulate_suite is False
        roster = {
            entry["worker"]: entry
            for entry in coordinator.membership.roster()
        }
        assert roster["fast"]["simulate_suite"] is True
        assert roster["legacy"]["simulate_suite"] is False
        assert_matrices_identical(serial, result)
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )

    def test_suite_worker_amortises_attempts(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """A lone suite-capable worker computes same-chunk bundles in
        one backend call each: cache-served cells report attempts=0, so
        the campaign's attempt total drops below its cell count."""
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "suite",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )
        _, result = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=1,
            backend_factory=lambda: backend,
        )
        assert result.complete
        assert result.attempts < result.total_cells
        assert_matrices_identical(serial, result)
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )


class TestResumeInterop:
    def test_distributed_resumes_serial_checkpoint(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        _, full = serial_result(backend, tiny_suite, tiny_configs, tmp_path)
        shared = tmp_path / "shared"
        partial_runner = CampaignRunner(
            backend, shared, chunk_size=16,
            retry_policy=FAST_POLICY, seed=5,
        )
        partial = partial_runner.run(
            tiny_suite, tiny_configs, max_cells=3
        )
        assert partial.pending_cells
        resume_runner = CampaignRunner(
            backend, shared, chunk_size=16,
            retry_policy=FAST_POLICY, seed=5,
        )
        _, result = distributed(
            resume_runner,
            tiny_suite,
            tiny_configs,
            n_workers=2,
            backend_factory=lambda: backend,
        )
        assert result.complete
        assert result.resumed_cells == 3
        assert result.simulated_cells == full.total_cells - 3
        assert_matrices_identical(full, result)

    def test_serial_resumes_distributed_checkpoint(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        shared = tmp_path / "shared"
        dist_runner = CampaignRunner(
            backend, shared, chunk_size=16,
            retry_policy=FAST_POLICY, seed=5,
        )
        _, dist = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=2,
            backend_factory=lambda: backend,
        )
        assert dist.complete
        serial_runner = CampaignRunner(
            backend, shared, chunk_size=16,
            retry_policy=FAST_POLICY, seed=5,
        )
        result = serial_runner.run(tiny_suite, tiny_configs)
        # Every cell restores from the distributed checkpoint; nothing
        # re-simulates.
        assert result.simulated_cells == 0
        assert result.resumed_cells == dist.total_cells
        assert_matrices_identical(dist, result)


async def _vanishing_client(port):
    """Handshake, lease one task, then drop the connection (a crash)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    await write_message(
        writer, {"type": "hello", "worker": "doomed", "version": ""}
    )
    await read_message(reader)  # welcome
    reply = None
    while reply is None or reply.get("type") == "wait":
        if reply is not None:
            await asyncio.sleep(float(reply.get("delay", 0.02)))
        await write_message(writer, {"type": "task_request"})
        reply = await read_message(reader)
    assert reply.get("type") == "task"
    writer.close()  # SIGKILL-equivalent: lease dies with the socket


async def _silent_client(port):
    """Lease a task, then neither heartbeat nor answer (a hang)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    await write_message(
        writer, {"type": "hello", "worker": "hung", "version": ""}
    )
    await read_message(reader)
    reply = None
    while reply is None or reply.get("type") == "wait":
        if reply is not None:
            await asyncio.sleep(float(reply.get("delay", 0.02)))
        await write_message(writer, {"type": "task_request"})
        reply = await read_message(reader)
    assert reply.get("type") == "task"
    await asyncio.sleep(2.0)  # outlive the lease without heartbeating
    writer.close()


class TestFaultTolerance:
    def test_crashed_worker_lease_is_reclaimed(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "crash",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )
        coordinator, result = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=1,
            backend_factory=lambda: backend,
            extra_clients=(_vanishing_client,),
        )
        assert result.complete
        assert coordinator.stats.reclaims >= 1
        assert not result.failed_cells
        assert_matrices_identical(serial, result)
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )

    def test_hung_worker_lease_expires_and_is_reclaimed(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "hang",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )
        coordinator, result = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=1,
            backend_factory=lambda: backend,
            # steal_after_fraction > 1 disables work stealing so the
            # hung lease is recovered by the expiry path under test.
            coordinator_kwargs={
                "lease_timeout": 0.2,
                "steal_after_fraction": 10.0,
            },
            extra_clients=(_silent_client,),
        )
        assert result.complete
        assert coordinator.stats.reclaims >= 1
        # Reclaim latency is measured from deadline expiry, so it must
        # be on the order of the monitor tick, not the lease timeout.
        assert all(
            latency < 1.0 for latency in coordinator.stats.reclaim_latencies
        )
        assert_matrices_identical(serial, result)
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )

    def test_worker_churn_completes_the_campaign(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """Short-lived workers (max_tasks=1) hand the campaign along."""
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "churn",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )

        async def scenario():
            coordinator = CampaignCoordinator(
                dist_runner, port=0, monitor_interval=0.02
            )
            ready = asyncio.Event()
            campaign = asyncio.create_task(
                coordinator.run_async(
                    tiny_suite, tiny_configs,
                    ready_callback=lambda _: ready.set(),
                )
            )
            await ready.wait()
            generation = 0
            while not campaign.done():
                worker = CampaignWorker(
                    "127.0.0.1",
                    coordinator.port,
                    backend_factory=lambda: backend,
                    worker_id=f"gen{generation}",
                    max_tasks=1,
                )
                generation += 1
                run = asyncio.create_task(worker.run_async())
                done, _ = await asyncio.wait(
                    {campaign, run}, return_when=asyncio.FIRST_COMPLETED
                )
                if campaign in done:
                    break
            result = await campaign
            return coordinator, result

        coordinator, result = asyncio.run(scenario())
        assert result.complete
        assert coordinator.stats.workers_seen >= result.total_cells
        assert_matrices_identical(serial, result)

    def test_protocol_version_skew_is_rejected(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """A frame from a different protocol version is turned away."""
        dist_runner = CampaignRunner(
            backend,
            tmp_path / "skew",
            chunk_size=16,
            retry_policy=FAST_POLICY,
            seed=5,
        )
        outcome = {}

        async def skewed_client(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            frame = bytearray(
                encode_frame({"type": "hello", "worker": "old"})
            )
            body = json.loads(frame[4:].decode("utf-8"))
            body["v"] = PROTOCOL_VERSION + 1
            tampered = json.dumps(body).encode("utf-8")
            writer.write(len(tampered).to_bytes(4, "big") + tampered)
            await writer.drain()
            outcome["reply"] = await read_message(reader)
            outcome["eof"] = await read_message(reader)
            writer.close()

        coordinator, result = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=1,
            backend_factory=lambda: backend,
            extra_clients=(skewed_client,),
        )
        assert result.complete  # the healthy worker was unaffected
        assert outcome["reply"]["type"] == "error"
        assert "version mismatch" in outcome["reply"]["reason"]
        assert outcome["eof"] is None  # coordinator hung up on the peer

    def test_all_failing_cells_are_recorded_not_retried_forever(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        class BrokenBackend:
            def simulate_batch(self, profile, configs):
                raise RuntimeError("this simulator only segfaults")

        dist_runner = CampaignRunner(
            backend,
            tmp_path / "broken",
            chunk_size=16,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0
            ),
            seed=5,
        )
        coordinator, result = distributed(
            dist_runner,
            tiny_suite,
            tiny_configs,
            n_workers=1,
            backend_factory=BrokenBackend,
            coordinator_kwargs={"worker_breaker_threshold": 1000},
        )
        assert not result.complete
        assert len(result.failed_cells) == result.total_cells
        assert result.simulated_cells == 0

    def test_barrier_does_not_stall_after_a_worker_leaves(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """``min_workers`` is a start gate, not a quorum: once the fleet
        has assembled, a departing worker must not stall the campaign."""
        serial_runner, _ = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )

        async def scenario():
            runner = CampaignRunner(
                backend,
                tmp_path / "barrier",
                chunk_size=16,
                retry_policy=FAST_POLICY,
                seed=5,
            )
            coordinator = CampaignCoordinator(
                runner, port=0, monitor_interval=0.02, min_workers=2
            )
            ready = asyncio.Event()
            campaign = asyncio.create_task(
                coordinator.run_async(
                    tiny_suite, tiny_configs,
                    ready_callback=lambda _: ready.set(),
                )
            )
            await ready.wait()
            # One worker leaves after a single task; the survivor must
            # be allowed to finish everything else alone.
            quitter = CampaignWorker(
                "127.0.0.1", coordinator.port, worker_id="quitter",
                max_tasks=1,
            )
            stayer = CampaignWorker(
                "127.0.0.1", coordinator.port, worker_id="stayer",
            )
            runs = [
                asyncio.create_task(quitter.run_async()),
                asyncio.create_task(stayer.run_async()),
            ]
            result = await asyncio.wait_for(campaign, timeout=60)
            await asyncio.gather(*runs, return_exceptions=True)
            return coordinator, result, runner

        coordinator, result, runner = asyncio.run(scenario())
        assert result.complete
        assert coordinator.stats.workers_seen == 2
        assert journal_checksums(runner) == journal_checksums(serial_runner)
