"""The immutable configuration value object.

A :class:`Configuration` is one point of the microarchitectural design
space: a concrete assignment of the 13 varied parameters of Table 1.
Configurations are hashable value objects so they can key caches of
simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

#: Canonical ordering of the 13 varied parameters.  This is the order of
#: Table 1 and of the paper's feature-vector encoding.
PARAMETER_ORDER: Tuple[str, ...] = (
    "width",
    "rob_size",
    "iq_size",
    "lsq_size",
    "rf_size",
    "rf_read_ports",
    "rf_write_ports",
    "gshare_size",
    "btb_size",
    "max_branches",
    "icache_kb",
    "dcache_kb",
    "l2cache_kb",
)


@dataclass(frozen=True)
class Configuration:
    """One point in the 13-parameter design space.

    Attributes:
        width: Pipeline width (instructions fetched/issued/committed per
            cycle).
        rob_size: Reorder buffer entries.
        iq_size: Issue queue entries.
        lsq_size: Load/store queue entries.
        rf_size: Physical integer/FP register file size (registers per
            file; the paper varies both files together).
        rf_read_ports: Register file read ports.
        rf_write_ports: Register file write ports.
        gshare_size: Gshare branch predictor table entries.
        btb_size: Branch target buffer entries.
        max_branches: Maximum in-flight (speculated) branches.
        icache_kb: Level-1 instruction cache capacity in KB.
        dcache_kb: Level-1 data cache capacity in KB.
        l2cache_kb: Unified level-2 cache capacity in KB.
    """

    width: int
    rob_size: int
    iq_size: int
    lsq_size: int
    rf_size: int
    rf_read_ports: int
    rf_write_ports: int
    gshare_size: int
    btb_size: int
    max_branches: int
    icache_kb: int
    dcache_kb: int
    l2cache_kb: int

    def as_dict(self) -> Dict[str, int]:
        """Return the configuration as an ordered parameter->value dict."""
        return {name: getattr(self, name) for name in PARAMETER_ORDER}

    def values(self) -> Tuple[int, ...]:
        """Return the raw parameter values in canonical order."""
        return tuple(getattr(self, name) for name in PARAMETER_ORDER)

    def replace(self, **overrides: int) -> "Configuration":
        """Return a copy with some parameters replaced."""
        merged = self.as_dict()
        unknown = set(overrides) - set(merged)
        if unknown:
            raise ValueError(f"unknown parameters: {sorted(unknown)}")
        merged.update(overrides)
        return Configuration(**merged)

    @classmethod
    def from_values(cls, values: Mapping[str, int] | Tuple[int, ...]) -> "Configuration":
        """Build a configuration from a mapping or a canonical tuple."""
        if isinstance(values, Mapping):
            return cls(**{name: values[name] for name in PARAMETER_ORDER})
        if len(values) != len(PARAMETER_ORDER):
            raise ValueError(
                f"expected {len(PARAMETER_ORDER)} values, got {len(values)}"
            )
        return cls(**dict(zip(PARAMETER_ORDER, values)))

    def __iter__(self) -> Iterator[int]:
        return iter(self.values())

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Configuration({inner})"
