"""``repro top`` — a live terminal dashboard over a coordinator.

A read-only observer: each refresh asks the coordinator for the same
status snapshot ``repro status --json`` prints (the TCP
``status_request``, so it works with or without ``--http-port``) and
renders fleet membership, per-worker throughput sparklines, campaign
progress and SLO burn as a compact ANSI screen.  ``--once`` renders a
single plain-text frame to stdout — the CI/scripting mode — and the
live mode degrades to exactly that frame when the terminal has no
ANSI support.

The dashboard owns *presentation only*: every number it shows comes
from the coordinator's status payload (roster rates, the sampler's
series, SLO statuses), plus client-side rate history so sparklines
survive coordinators that were started without sampling.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, List, Optional, TextIO, Tuple

from .coordinator import fetch_status

__all__ = ["TopSession", "render_status", "sparkline"]

#: Eight-level block characters, lowest to highest.
SPARK = "▁▂▃▄▅▆▇█"

#: Sparkline history length (refresh ticks) kept per worker.
HISTORY = 32


def sparkline(values: List[float], width: int = HISTORY) -> str:
    """Render ``values`` as a fixed-width block-character sparkline.

    Scaled to the window's own maximum (a flat-zero window renders all
    low blocks); NaNs render as spaces.  Left-padded so the newest
    value is always the rightmost character.
    """
    tail = list(values)[-width:]
    finite = [v for v in tail if not math.isnan(v)]
    top = max(finite) if finite else 0.0
    chars = []
    for value in tail:
        if math.isnan(value):
            chars.append(" ")
        elif top <= 0:
            chars.append(SPARK[0])
        else:
            index = min(
                len(SPARK) - 1,
                int(value / top * (len(SPARK) - 1) + 0.5),
            )
            chars.append(SPARK[index])
    return "".join(chars).rjust(width)


def _bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * min(1.0, done / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_status(
    status: Dict,
    rate_history: Optional[Dict[str, List[float]]] = None,
    throughput: Optional[float] = None,
) -> str:
    """One plain-text frame from a coordinator status payload.

    Pure function of its inputs — the unit-testable core of both the
    live screen and ``--once``.
    """
    lines: List[str] = []
    campaign = status.get("campaign") or {}
    progress = status.get("progress") or {}
    total = int(progress.get("total", 0) or 0)
    journalled = int(progress.get("journalled", 0) or 0)
    state = "draining" if status.get("draining") else "running"
    trace = status.get("trace_id") or "-"
    lines.append(
        f"repro top — coordinator {status.get('version', '?')} "
        f"[{state}]  trace {trace}"
    )
    lines.append(
        f"campaign  {len(campaign.get('programs', []) or [])} program(s)"
        f" x {campaign.get('config_count', 0)} config(s), "
        f"chunk {campaign.get('chunk_size', '?')}, "
        f"seed {campaign.get('seed', '?')}"
    )
    pct = 100.0 * journalled / total if total else 0.0
    rate_text = (
        f"  {throughput:6.2f} cells/s"
        if throughput is not None and not math.isnan(throughput)
        else ""
    )
    lines.append(
        f"progress  {_bar(journalled, total)} {journalled}/{total} "
        f"({pct:5.1f}%)  leased {progress.get('leased', 0)}  "
        f"queued {progress.get('queued', 0)}  "
        f"failed {progress.get('failed', 0)}{rate_text}"
    )
    stats = status.get("stats") or {}
    lines.append(
        f"fleet     seen {stats.get('workers_seen', 0)}  "
        f"joins {stats.get('joins', 0)}  leaves {stats.get('leaves', 0)}  "
        f"steals {stats.get('steals', 0)} "
        f"(won {stats.get('speculative_wins', 0)})  "
        f"reclaims {stats.get('reclaims', 0)}  "
        f"stale {stats.get('stale_results', 0)}"
    )
    lines.append("")
    roster = status.get("fleet") or ()
    if roster:
        lines.append(
            f"{'WORKER':<14} {'STATE':<12} {'RATE/S':>7} {'DONE':>5} "
            f"{'BUNDLE':>6}  THROUGHPUT"
        )
        for entry in roster:
            worker = str(entry.get("worker", "?"))
            state = "active" if entry.get("active") else "gone"
            if entry.get("slow"):
                state += ",slow"
            history = (rate_history or {}).get(worker, [])
            rate = entry.get("rate")
            rate_cell = (
                f"{float(rate):7.2f}" if rate is not None else "      -"
            )
            lines.append(
                f"{worker[:14]:<14} {state:<12} {rate_cell} "
                f"{entry.get('tasks_completed', 0):>5} "
                f"{entry.get('bundle_size', 1):>6}  "
                f"{sparkline(history)}"
            )
    else:
        lines.append("(no workers have connected yet)")
    slo = status.get("slo") or ()
    if slo:
        lines.append("")
        lines.append(f"{'SLO':<22} {'STATE':<8} {'BURN':>8} {'VALUE':>12}")
        for entry in slo:
            if entry.get("no_data"):
                state, burn, value = "no-data", "-", "-"
            else:
                state = "ok" if entry.get("ok") else "VIOLATED"
                burn = f"{entry.get('burn', 0):.2f}x"
                value = f"{entry.get('value', 0):.4g}"
            lines.append(
                f"{str(entry.get('name', '?'))[:22]:<22} {state:<8} "
                f"{burn:>8} {value:>12}"
            )
    leases = status.get("leases") or ()
    if leases:
        lines.append("")
        lines.append("oldest leases:")
        for entry in leases[:5]:
            spec = " (speculative)" if entry.get("speculative") else ""
            lines.append(
                f"  {entry.get('cell', '?')} -> "
                f"{entry.get('worker', '?')} "
                f"age {entry.get('age_seconds', 0):.1f}s "
                f"deadline in {entry.get('deadline_in', 0):.1f}s{spec}"
            )
    return "\n".join(lines) + "\n"


class TopSession:
    """State between refreshes: rate history and throughput deltas.

    Args:
        host / port: Coordinator address (the TCP protocol port, not
            ``--http-port``).
        timeout: Per-snapshot fetch timeout in seconds.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 5.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._rates: Dict[str, Deque[float]] = {}
        self._completed: Deque[Tuple[float, int]] = deque(maxlen=HISTORY)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def observe(self, status: Dict, now: Optional[float] = None) -> None:
        """Fold one snapshot into the rate/throughput history."""
        stamp = time.monotonic() if now is None else float(now)
        seen = set()
        for entry in status.get("fleet") or ():
            worker = str(entry.get("worker", "?"))
            seen.add(worker)
            rate = entry.get("rate")
            ring = self._rates.setdefault(worker, deque(maxlen=HISTORY))
            ring.append(
                float(rate)
                if rate is not None and entry.get("active")
                else math.nan
            )
        for worker, ring in self._rates.items():
            if worker not in seen:
                ring.append(math.nan)  # departed: the line goes blank
        progress = status.get("progress") or {}
        self._completed.append(
            (stamp, int(progress.get("journalled", 0) or 0))
        )

    def throughput(self) -> float:
        """Journalled cells per second over the observed window."""
        if len(self._completed) < 2:
            return math.nan
        (t0, c0), (t1, c1) = self._completed[0], self._completed[-1]
        if t1 <= t0:
            return math.nan
        return max(0, c1 - c0) / (t1 - t0)

    def frame(self, status: Dict) -> str:
        """Observe ``status`` and render the resulting frame."""
        self.observe(status)
        return render_status(
            status,
            rate_history={k: list(v) for k, v in self._rates.items()},
            throughput=self.throughput(),
        )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run_once(self, stream: TextIO) -> int:
        """Fetch and render one plain frame (the ``--once`` / CI mode)."""
        status = fetch_status(self.host, self.port, timeout=self.timeout)
        stream.write(self.frame(status))
        stream.flush()
        return 0

    def run(
        self,
        stream: TextIO,
        interval: float = 1.0,
        max_frames: Optional[int] = None,
    ) -> int:
        """The live loop: alternate screen, redraw every ``interval``.

        Exits when the coordinator goes away (campaign finished) or on
        Ctrl-C; ``max_frames`` bounds the loop for tests.
        """
        frames = 0
        stream.write("\x1b[?1049h\x1b[?25l")  # alt screen, hide cursor
        try:
            while max_frames is None or frames < max_frames:
                try:
                    status = fetch_status(
                        self.host, self.port, timeout=self.timeout
                    )
                except (ConnectionError, OSError, TimeoutError):
                    break  # coordinator gone: campaign over
                stream.write("\x1b[H\x1b[2J")  # home + clear
                stream.write(self.frame(status))
                stream.flush()
                frames += 1
                if max_frames is not None and frames >= max_frames:
                    break
                time.sleep(interval)
        except KeyboardInterrupt:
            pass
        finally:
            stream.write("\x1b[?25h\x1b[?1049l")  # cursor back, leave
            stream.flush()
        return 0
