"""Lightweight span tracing with a ``chrome://tracing`` exporter.

A *span* is one timed region of work with a name and free-form
attributes::

    from repro.obs import span

    with span("simulate.chunk", program="gzip", chunk=3):
        backend.simulate_batch(profile, configs)

Spans nest (a thread-local stack tracks depth and parent ids), cost two
``perf_counter`` reads plus a dict append, and never touch random
state, so instrumented code keeps producing bit-identical numeric
results.  The collecting :class:`Tracer` exports:

* **JSONL** — one span object per line, for grep/jq pipelines;
* **Chrome trace JSON** — complete ``"ph": "X"`` events that load
  directly into ``chrome://tracing`` / Perfetto for a flame view.

Worker processes trace into their own :class:`Tracer` (installed with
:func:`scoped_tracer`) and ship ``tracer.spans`` back to the parent,
which folds them in with :meth:`Tracer.adopt` — the exported trace then
shows every worker's cells under that worker's pid lane.

Spans also carry **trace context** for cross-host stitching: every span
gets a ``span_id``, a ``parent_id`` (the enclosing span, or whatever
:meth:`Tracer.bind` installed as the remote parent), and — once the
tracer owns a ``trace_id`` — the campaign-wide trace id.  A distributed
coordinator generates the trace id, ships ``{trace_id, parent_id}``
with each task, and the worker binds it so the spans it sends back
stitch under one trace; :meth:`Tracer.adopt` stamps the local trace id
onto adopted spans that lack one, so pre-trace-context peers still land
in the same trace.  A tracer constructed with a ``lane`` stamps it on
every span, and :meth:`Tracer.to_chrome_events` renders each lane as
its own named process row — one lane per worker, across hosts.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .metrics import get_registry

__all__ = [
    "Tracer",
    "get_tracer",
    "new_trace_id",
    "set_tracer",
    "scoped_tracer",
    "span",
]

#: Synthetic pid base for named lanes in the chrome export — far above
#: real pids so a lane row never collides with an un-laned span's pid.
_LANE_PID_BASE = 1 << 22


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id.

    Backed by :func:`uuid.uuid4` (``os.urandom``), so generating one
    never perturbs ``random``/NumPy state — results stay bit-identical
    with tracing on.
    """
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class Tracer:
    """Collects finished spans in memory, bounded by ``max_spans``.

    Args:
        enabled: A disabled tracer's :meth:`span` is a no-op context
            manager, for callers that want zero bookkeeping.
        max_spans: In-memory bound; spans past it are counted in
            :attr:`dropped` (and a ``trace.dropped`` counter in the
            active metrics registry) instead of stored, so a
            pathological loop cannot exhaust memory.
        trace_id: Trace this tracer's spans belong to (``None`` until
            :meth:`bind` or :meth:`ensure_trace_id` sets one).
        lane: Stamped on every span this tracer records; the chrome
            export renders each lane as its own named process row
            (workers pass their worker id).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_spans: int = 200_000,
        trace_id: Optional[str] = None,
        lane: Optional[str] = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        self.enabled = enabled
        self.max_spans = max_spans
        self.trace_id = trace_id
        self.lane = lane
        self.spans: List[Dict] = []
        self.dropped = 0
        self._parent_id: Optional[str] = None
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Trace context
    # ------------------------------------------------------------------
    def bind(
        self,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        """Adopt a remote trace context for subsequently recorded spans.

        ``trace_id`` stamps every new span; ``parent_id`` becomes the
        parent of *root* spans (spans opened with an empty local
        stack), which is how a worker's ``simulate.chunk`` span hangs
        off the coordinator's ``distrib.coordinate`` span across the
        wire.  Binding ``None``s clears the context.
        """
        self.trace_id = trace_id
        self._parent_id = parent_id

    def ensure_trace_id(self) -> str:
        """This tracer's trace id, generating one on first use."""
        if self.trace_id is None:
            self.trace_id = new_trace_id()
        return self.trace_id

    def context(self) -> Dict[str, Optional[str]]:
        """The propagatable ``{trace_id, span_id}`` of the active span.

        ``span_id`` is the innermost span open on the calling thread
        (or the bound remote parent when nothing is open) — the id a
        remote child span should claim as its ``parent_id``.
        """
        stack = self._stack()
        return {
            "trace_id": self.trace_id,
            "span_id": stack[-1] if stack else self._parent_id,
        }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _stamp(self, record: Dict, stack: List[str]) -> None:
        """Attach ids/lane; context keys are omitted when unset so
        context-free spans keep their exact pre-trace-context shape."""
        record["span_id"] = _new_span_id()
        parent = stack[-1] if stack else self._parent_id
        if parent is not None:
            record["parent_id"] = parent
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.lane is not None:
            record["lane"] = self.lane

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Optional[Dict]]:
        """Time the ``with`` block as one span named ``name``.

        Yields the span record (or ``None`` when disabled) so callers
        can attach late attributes — e.g. an attempt count known only
        after the work ran::

            with tracer.span("simulate.chunk", cell=cell) as s:
                batch, attempts = simulate()
                if s is not None:
                    s["attrs"]["attempts"] = attempts
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        record: Dict = {
            "name": name,
            "ts": time.time(),
            "dur": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "depth": len(stack),
            "attrs": dict(attrs),
        }
        self._stamp(record, stack)
        stack.append(record["span_id"])
        start = time.perf_counter()
        try:
            yield record
        finally:
            record["dur"] = time.perf_counter() - start
            stack.pop()
            self._store(record)

    def record(self, name: str, seconds: float, **attrs) -> None:
        """Adopt an externally timed region as a completed span.

        For durations measured elsewhere — e.g. a worker process
        reports how long a fit took and the parent records it.
        """
        if not self.enabled:
            return
        stack = self._stack()
        record = {
            "name": name,
            "ts": time.time() - seconds,
            "dur": float(seconds),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "depth": len(stack),
            "attrs": dict(attrs),
        }
        self._stamp(record, stack)
        self._store(record)

    def adopt(self, spans: Sequence[Dict]) -> None:
        """Fold spans shipped from another tracer (usually a worker).

        Adopted spans missing a ``trace_id`` are stamped with this
        tracer's — how spans from peers that predate trace context
        (old workers, process-pool children) still stitch into the
        campaign's single trace.
        """
        for record in spans:
            record = dict(record)
            if self.trace_id is not None and "trace_id" not in record:
                record["trace_id"] = self.trace_id
            self._store(record)

    def _store(self, record: Dict) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            get_registry().counter("trace.dropped").inc()
            return
        self.spans.append(record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """Current span count — pass to :meth:`summary` to scope it."""
        return len(self.spans)

    def count(self, name: str, start: int = 0) -> int:
        """How many spans named ``name`` finished since ``start``."""
        return sum(1 for s in self.spans[start:] if s["name"] == name)

    def summary(self, start: int = 0) -> Dict[str, Dict[str, float]]:
        """Per-name timing rollup of the spans since ``start``.

        Returns:
            ``{name: {count, total_seconds, min_seconds, max_seconds}}``
            sorted by name — the shape embedded in run manifests and
            benchmark payloads.
        """
        rollup: Dict[str, Dict[str, float]] = {}
        for record in self.spans[start:]:
            entry = rollup.setdefault(
                record["name"],
                {
                    "count": 0,
                    "total_seconds": 0.0,
                    "min_seconds": float("inf"),
                    "max_seconds": 0.0,
                },
            )
            entry["count"] += 1
            entry["total_seconds"] += record["dur"]
            entry["min_seconds"] = min(entry["min_seconds"], record["dur"])
            entry["max_seconds"] = max(entry["max_seconds"], record["dur"])
        if self.dropped:
            # Mark the truncation so a manifest reader knows the rollup
            # under-counts; zero durations keep aggregators harmless.
            rollup["trace.dropped"] = {
                "count": self.dropped,
                "total_seconds": 0.0,
                "min_seconds": 0.0,
                "max_seconds": 0.0,
            }
        return dict(sorted(rollup.items()))

    def clear(self) -> None:
        """Drop every stored span (the drop counter too)."""
        self.spans.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_events(self) -> List[Dict]:
        """Spans as Chrome trace 'complete' (``ph: X``) events.

        Spans stamped with a ``lane`` (one per worker, across hosts)
        are mapped onto synthetic per-lane pids with ``process_name``
        metadata events, so the viewer shows one named row per worker
        instead of piling every host's spans into real-pid rows that
        may collide.  Trace-context ids ride in ``args``.  When spans
        were dropped past ``max_spans``, a ``trace.truncated`` instant
        event flags the export as incomplete.
        """
        lanes = sorted(
            {record["lane"] for record in self.spans if "lane" in record}
        )
        lane_pid = {
            lane: _LANE_PID_BASE + index for index, lane in enumerate(lanes)
        }
        events: List[Dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": lane_pid[lane],
                "tid": 0,
                "args": {"name": lane},
            }
            for lane in lanes
        ]
        last_end = 0.0
        for record in self.spans:
            args = dict(record["attrs"])
            if "trace_id" in record:
                for key in ("trace_id", "span_id", "parent_id"):
                    if key in record:
                        args[key] = record[key]
            events.append(
                {
                    "name": record["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(record["ts"] * 1e6, 3),
                    "dur": round(record["dur"] * 1e6, 3),
                    "pid": lane_pid.get(record.get("lane"), record["pid"]),
                    "tid": record["tid"],
                    "args": args,
                }
            )
            last_end = max(last_end, record["ts"] + record["dur"])
        if self.dropped:
            events.append(
                {
                    "name": "trace.truncated",
                    "cat": "repro",
                    "ph": "I",
                    "s": "g",
                    "ts": round(last_end * 1e6, 3),
                    "pid": os.getpid(),
                    "tid": 0,
                    "args": {"dropped": self.dropped},
                }
            )
        return events

    def write_chrome(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write a ``chrome://tracing``-loadable JSON trace.

        One event per line inside the array, so the file greps like
        JSONL while still parsing as standard JSON.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        events = self.to_chrome_events()
        body = ",\n".join(json.dumps(event, sort_keys=True) for event in events)
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text("[\n" + body + "\n]\n", encoding="utf-8")
        os.replace(scratch, path)
        return path

    def write_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the raw spans, one JSON object per line."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(path.name + ".tmp")
        with open(scratch, "w", encoding="utf-8") as handle:
            for record in self.spans:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(scratch, path)
        return path


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the global tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def scoped_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Swap in a tracer for the ``with`` block (tests, workers).

    Args:
        tracer: The tracer to install; a fresh one by default.

    Yields:
        The installed tracer.
    """
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


def span(name: str, **attrs):
    """Open a span on the *current* global tracer.

    The module-level convenience the instrumented code uses, so a
    :func:`scoped_tracer` swap (worker isolation, tests) redirects
    every span without threading a tracer through call signatures.
    """
    return get_tracer().span(name, **attrs)
