"""The microarchitectural design space (Table 1 / Table 2 of the paper).

Public surface:

* :class:`Parameter` — one design-space axis.
* :class:`Configuration` — one point of the space (hashable value object).
* :class:`DesignSpace` — the 13-parameter legal space, encoding, counting.
* :func:`sample_configurations` — uniform random sampling of legal points.
"""

from .configuration import PARAMETER_ORDER, Configuration
from .parameters import Parameter, geometric_grid, linear_grid
from .restrict import embedded_space, restrict, server_space
from .sampling import (
    corner_biased_sample,
    sample_configurations,
    split_responses,
    stratified_sample,
)
from .space import DesignSpace, table1_parameters
from .tables import render_table1, render_table2

__all__ = [
    "PARAMETER_ORDER",
    "Configuration",
    "DesignSpace",
    "Parameter",
    "corner_biased_sample",
    "embedded_space",
    "geometric_grid",
    "linear_grid",
    "render_table1",
    "render_table2",
    "restrict",
    "server_space",
    "sample_configurations",
    "split_responses",
    "stratified_sample",
    "table1_parameters",
]
