"""Shared helpers for the process-parallel execution knobs.

Several layers fan work out over a ``ProcessPoolExecutor`` — the
offline training pool, the campaign runner, the CLI, the distributed
worker — and they all speak the same ``n_jobs`` dialect, resolved here
so every layer agrees on what ``None`` and ``-1`` mean.  The
``REPRO_JOBS`` environment variable supplies the default when a caller
passes ``None``, so CI and operators set the fleet-wide worker count
once instead of per entry point.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["resolve_jobs"]

#: Environment variable consulted when ``n_jobs`` is ``None``.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(n_jobs: Optional[int], default: int = 1) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable, then to
    ``default`` (serial unless the caller says otherwise); ``-1`` means
    one worker per CPU; any other positive integer is taken literally.
    ``REPRO_JOBS`` accepts the same dialect (``-1`` or a positive
    integer).

    Raises:
        ValueError: for zero or negative counts other than -1, whether
            they come from the argument or the environment.
    """
    if n_jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return resolve_jobs(default) if default != 1 else 1
        try:
            n_jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer or -1, got {env!r}"
            ) from None
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(
            f"n_jobs must be a positive integer or -1, got {n_jobs}"
        )
    return n_jobs
