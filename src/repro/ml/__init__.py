"""Machine-learning machinery implemented from scratch on numpy.

Public surface:

* :class:`MultilayerPerceptron` — the paper's per-program ANN (Fig. 7).
* :class:`LinearRegressor` — the architecture-centric combiner (Fig. 8).
* :class:`StackedEnsemble` — batched inference over N stacked ANNs.
* :func:`rmae` / :func:`correlation` — the paper's accuracy metrics.
* :class:`StandardScaler` / :class:`MinMaxScaler` — data conditioning.
"""

from .ensemble import StackedEnsemble
from .linear import LinearRegressor, normal_equation_weights
from .metrics import correlation, rmae
from .mlp import MLPTrainingRecord, MultilayerPerceptron
from .scaling import MinMaxScaler, StandardScaler
from .spline import SplineRegressor, restricted_cubic_basis

__all__ = [
    "LinearRegressor",
    "MLPTrainingRecord",
    "MinMaxScaler",
    "MultilayerPerceptron",
    "SplineRegressor",
    "StackedEnsemble",
    "StandardScaler",
    "correlation",
    "normal_equation_weights",
    "restricted_cubic_basis",
    "rmae",
]
