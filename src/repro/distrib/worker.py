"""The campaign worker: lease a cell, simulate it, ship the arrays back.

A worker holds no campaign state.  It connects to a coordinator, says
hello, and loops: request a task, simulate the leased cell behind the
same :func:`~repro.runtime.retry.call_with_retry` machinery the serial
loop uses — the task carries its own deterministic retry seed and the
campaign's retry policy, so a flaky backend backs off *identically* to
a serial run — and returns the metric arrays with their artifact-layer
checksum.  Heartbeats keep the lease alive while a long simulation is
in flight (the simulation runs in a thread; the event loop stays free
to heartbeat); if the coordinator reports the lease reclaimed, the
worker abandons the result rather than racing the replacement.

Telemetry is recorded into a *private* registry and tracer — never the
process globals, so any number of in-process workers (tests) or
dedicated worker processes (production) stay isolated — and a snapshot
rides back with each result for the coordinator to merge.  On SIGTERM
the worker finishes the task it holds, delivers the result, releases
any unstarted leases from its bundle, says goodbye and exits: a
drained worker never loses leased work.

A worker is also elastic-fleet aware: it measures and advertises its
capabilities at HELLO (so the coordinator can size lease bundles
capacity-weighted), heartbeats every lease it holds, and — when
``reconnect_attempts`` is set — survives a coordinator restart by
reconnecting under seeded *full-jitter* backoff, so a whole fleet
reconnecting at once spreads out instead of thundering-herding.
"""

from __future__ import annotations

import asyncio
import dataclasses
import signal
import socket
import time
import uuid
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

import numpy as np

from repro import __version__
from repro.obs import MetricsRegistry, Tracer, get_logger, git_sha
from repro.runtime.backend import (
    SimulationBackend,
    SimulationError,
    supports_suite,
    validate_batch,
)
from repro.runtime.retry import (
    CircuitBreaker,
    RetryPolicy,
    call_with_retry,
)
from repro.sim.interval import BatchResult
from repro.workloads.profile import stable_seed

from .membership import WorkerCapabilities, detect_capabilities
from .protocol import ProtocolError, read_message, write_message
from .wire import (
    batch_checksum,
    batch_to_wire,
    configs_from_wire,
    policy_from_wire,
    profile_from_wire,
)

__all__ = ["CampaignWorker", "CoordinatorLost", "RepeatBackend"]

_log = get_logger(__name__)


class CoordinatorLost(ConnectionError):
    """The coordinator's connection died mid-session.

    Distinct from a clean drain (an explicit ``drain`` reply or EOF
    while idle with reconnects disabled): a worker configured with
    ``reconnect_attempts`` treats this as "try again", not "go home".
    """


class RepeatBackend:
    """Make each batch slower without changing a single bit of it.

    A deterministic backend returns the same arrays every repetition, so
    wrapping it changes nothing about the campaign's numbers — only how
    long each cell takes.  Benchmarks and smoke tests use it to emulate
    an expensive simulator (the interval model is so fast that protocol
    overhead would otherwise dominate any scaling measurement) without
    giving up bit-identical results.

    ``repeat`` burns CPU, modelling a slow simulator on the worker's
    own core.  ``delay`` sleeps, modelling a worker whose host runs the
    expensive simulation elsewhere (or simply has its own CPU) — the
    only way a scaling benchmark can show real worker overlap when all
    the worker processes share one test machine's cores.

    Args:
        backend: The wrapped backend.
        repeat: How many times to run each batch (at least 1).
        delay: Extra seconds of latency added to each batch.
    """

    def __init__(
        self,
        backend: SimulationBackend,
        repeat: int = 1,
        delay: float = 0.0,
    ) -> None:
        if repeat < 1:
            raise ValueError("repeat must be at least 1")
        if delay < 0:
            raise ValueError("delay must not be negative")
        self.backend = backend
        self.repeat = repeat
        self.delay = delay
        # Mirror the wrapped backend's suite capability: the attribute
        # only exists when the inner backend has one, so
        # supports_suite() sees through the wrapper either way.
        if supports_suite(backend):
            self.simulate_suite = self._simulate_suite

    def simulate_batch(self, profile, configs) -> BatchResult:
        """Delay, burn ``repeat - 1`` runs, return the final result."""
        if self.delay:
            time.sleep(self.delay)
        for _ in range(self.repeat - 1):
            self.backend.simulate_batch(profile, configs)
        return self.backend.simulate_batch(profile, configs)

    def _simulate_suite(self, profiles, configs) -> List[BatchResult]:
        """Suite twin of :meth:`simulate_batch`: delay, burn, return."""
        if self.delay:
            time.sleep(self.delay)
        for _ in range(self.repeat - 1):
            self.backend.simulate_suite(profiles, configs)
        return self.backend.simulate_suite(profiles, configs)


class CampaignWorker:
    """Execute leased campaign cells for a remote coordinator.

    Args:
        host: Coordinator host.
        port: Coordinator port.
        backend_factory: Builds this worker's backend (defaults to a
            fresh :class:`~repro.runtime.backend.IntervalBackend`).
            A factory, not an instance, so every worker — however it is
            spawned — owns a private backend the way process-pool
            workers own their pickled copies.
        worker_id: Stable identity across reconnects (defaults to
            ``<hostname>-<pid-entropy>``).
        max_tasks: Stop after completing this many tasks (``None`` runs
            until drained); the test hook for worker churn.
        sim_repeat: Wrap the backend in :class:`RepeatBackend` with this
            count when > 1.
        sim_delay: Extra seconds of :class:`RepeatBackend` latency per
            batch (emulates an expensive off-host simulator).
        connect_timeout: Seconds to keep retrying the initial connect —
            covers the coordinator still binding its socket when worker
            processes launch first.
        reconnect_attempts: Times to re-dial after losing an
            established connection (0 keeps the old die-on-disconnect
            behaviour).  Reconnect delays use seeded full-jitter
            backoff so a restarted coordinator is not herd-stampeded.
        reconnect_delay: Base of the reconnect backoff in seconds.
        capabilities: Advertised at HELLO; defaults to
            :func:`~repro.distrib.membership.detect_capabilities`
            (cores, memory, and a short calibration burst).
    """

    def __init__(
        self,
        host: str,
        port: int,
        backend_factory: Optional[Callable[[], SimulationBackend]] = None,
        worker_id: Optional[str] = None,
        max_tasks: Optional[int] = None,
        sim_repeat: int = 1,
        sim_delay: float = 0.0,
        connect_timeout: float = 10.0,
        reconnect_attempts: int = 0,
        reconnect_delay: float = 0.5,
        capabilities: Optional[WorkerCapabilities] = None,
    ) -> None:
        if sim_repeat < 1:
            raise ValueError("sim_repeat must be at least 1")
        if reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must not be negative")
        if reconnect_delay <= 0:
            raise ValueError("reconnect_delay must be positive")
        self.host = host
        self.port = port
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{uuid.uuid4().hex[:8]}"
        )
        self.max_tasks = max_tasks
        self.connect_timeout = connect_timeout
        self.reconnect_attempts = reconnect_attempts
        self._reconnect_policy = RetryPolicy(
            max_attempts=reconnect_attempts + 1,
            base_delay=reconnect_delay,
            multiplier=2.0,
            jitter_mode="full",
        )
        self.capabilities = (
            capabilities if capabilities is not None
            else detect_capabilities()
        )
        #: Chaos hook: an object with ``await before_send(payload)``
        #: installed by the failure-injection harness to drop, delay or
        #: partition this worker's outbound frames.  ``None`` in
        #: production.
        self.wire_filter = None
        if backend_factory is None:
            backend_factory = _default_backend
        backend = backend_factory()
        if sim_repeat > 1 or sim_delay > 0:
            backend = RepeatBackend(backend, sim_repeat, delay=sim_delay)
        self.backend = backend
        # Advertise the suite fast path only when the *final* backend
        # stack actually offers it; a caller-supplied flag cannot
        # promise a capability the backend lacks.
        self.capabilities = dataclasses.replace(
            self.capabilities, simulate_suite=supports_suite(backend)
        )
        self.tasks_completed = 0
        self._draining = False
        # Private instruments: shipped with each result, merged
        # coordinator-side.  Never the process globals, so concurrent
        # workers in one process cannot clobber each other.  The lane
        # puts this worker's spans on their own named row in the
        # coordinator's stitched chrome trace.
        self._registry = MetricsRegistry()
        self._tracer = Tracer(lane=self.worker_id)
        self._telemetry_mark = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Blocking wrapper around :meth:`run_async`.

        Returns:
            Tasks completed before the coordinator drained this worker.
        """
        return asyncio.run(self.run_async(install_signals=True))

    async def run_async(self, install_signals: bool = False) -> int:
        """Serve tasks on the current event loop until drained.

        With ``reconnect_attempts > 0`` a lost connection (coordinator
        restart, injected drop, partition) is re-dialled under seeded
        full-jitter backoff instead of ending the worker; a clean drain
        always ends it.
        """
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.initiate_drain)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-Unix loop or not the main thread

        attempt = 0
        rng = np.random.default_rng(
            stable_seed("worker-reconnect", self.worker_id)
        )
        while True:
            try:
                reader, writer = await self._connect()
            except ConnectionError:
                if attempt >= self.reconnect_attempts:
                    raise
                writer = None
            if writer is not None:
                try:
                    welcome = await self._handshake(reader, writer)
                    heartbeat_interval = float(
                        welcome.get("heartbeat_interval", 15.0)
                    )
                    await self._task_loop(
                        reader, writer, heartbeat_interval
                    )
                    return self.tasks_completed  # clean drain
                except CoordinatorLost:
                    if self._draining or (
                        attempt >= self.reconnect_attempts
                    ):
                        return self.tasks_completed
                except (ConnectionError, OSError):
                    if self._draining or (
                        attempt >= self.reconnect_attempts
                    ):
                        raise
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
            attempt += 1
            delay = self._reconnect_policy.delay(attempt, rng)
            self._registry.counter("distrib.worker.reconnects").inc()
            _log.warning(
                "worker %s lost the coordinator; reconnecting "
                "(attempt %d/%d) in %.2fs",
                self.worker_id, attempt, self.reconnect_attempts, delay,
                extra={"event": "distrib.worker_reconnect",
                       "worker": self.worker_id, "attempt": attempt},
            )
            await asyncio.sleep(delay)

    def initiate_drain(self) -> None:
        """Finish the current task, deliver it, then exit cleanly."""
        if not self._draining:
            self._draining = True
            _log.warning(
                "worker %s draining: finishing current task",
                self.worker_id,
                extra={"event": "distrib.worker_drain",
                       "worker": self.worker_id},
            )

    # ------------------------------------------------------------------
    # Connection
    # ------------------------------------------------------------------
    async def _connect(self):
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                return await asyncio.open_connection(self.host, self.port)
            except (ConnectionError, OSError) as error:
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"could not reach coordinator at "
                        f"{self.host}:{self.port} within "
                        f"{self.connect_timeout:.0f}s: {error}"
                    ) from error
                await asyncio.sleep(0.2)

    async def _send(self, writer, payload: dict) -> None:
        """Send one frame through the chaos wire filter (when set)."""
        if self.wire_filter is not None:
            await self.wire_filter.before_send(payload)
        await write_message(writer, payload)

    async def _handshake(self, reader, writer) -> dict:
        await self._send(writer, {
            "type": "hello",
            "worker": self.worker_id,
            "version": __version__,
            "git_sha": git_sha(),
            "capabilities": self.capabilities.to_wire(),
        })
        welcome = await read_message(reader)
        if welcome is None:
            raise ProtocolError("coordinator closed during the handshake")
        if welcome.get("type") == "error":
            raise ProtocolError(
                f"coordinator rejected us: {welcome.get('reason')}"
            )
        if welcome.get("type") != "welcome":
            raise ProtocolError(
                f"expected a welcome, got {welcome.get('type')!r}"
            )
        campaign = welcome.get("campaign") or {}
        _log.info(
            "worker %s joined campaign: %d program(s), %d cell(s)",
            self.worker_id,
            len(campaign.get("programs") or ()),
            campaign.get("total_cells", 0),
            extra={"event": "distrib.worker_joined",
                   "worker": self.worker_id},
        )
        return welcome

    # ------------------------------------------------------------------
    # Task loop
    # ------------------------------------------------------------------
    async def _task_loop(
        self, reader, writer, heartbeat_interval: float
    ) -> None:
        while True:
            if self._draining or (
                self.max_tasks is not None
                and self.tasks_completed >= self.max_tasks
            ):
                await self._goodbye(writer)
                return
            try:
                await self._send(writer, {"type": "task_request"})
                reply = await read_message(reader)
            except (ConnectionError, OSError):
                reply = None  # coordinator closed while we were idle
            if reply is None:
                if self.reconnect_attempts > 0 and not self._draining:
                    raise CoordinatorLost(
                        "coordinator closed while we were idle"
                    )
                return  # nothing leased, so a vanished peer is a drain
            kind = reply.get("type")
            if kind == "drain":
                _log.info(
                    "worker %s drained by coordinator (%s) after %d "
                    "task(s)",
                    self.worker_id, reply.get("reason"),
                    self.tasks_completed,
                    extra={"event": "distrib.worker_drained",
                           "worker": self.worker_id},
                )
                await self._goodbye(writer)
                return
            if kind == "wait":
                await asyncio.sleep(float(reply.get("delay", 0.1)))
                continue
            if kind == "task":
                tasks: List[dict] = [reply]
            elif kind == "task_bundle":
                tasks = list(reply.get("tasks") or ())
                if not tasks:
                    raise ProtocolError("received an empty task bundle")
            else:
                raise ProtocolError(f"unexpected reply type {kind!r}")
            await self._run_bundle(
                reader, writer, tasks, heartbeat_interval
            )

    async def _run_bundle(
        self, reader, writer, tasks: List[dict],
        heartbeat_interval: float,
    ) -> None:
        """Run a lease bundle sequentially, releasing what we can't.

        While one cell simulates, the heartbeats cover *every* lease
        still pending in the bundle; a pending lease the coordinator
        reports dead (stolen, reclaimed) is silently dropped.  A drain
        request or the ``max_tasks`` budget mid-bundle releases the
        unstarted remainder back to the coordinator instead of sitting
        on it until the lease expires.

        With a suite-capable backend the first cell of each chunk in
        the bundle runs one program-major ``simulate_suite`` call that
        also computes its same-chunk siblings; those land in a
        per-bundle cache and are reported later with ``attempts=0``, so
        the coordinator's attempt total matches a serial suite run.
        """
        pending: Deque[dict] = deque(tasks)
        suite_cache: Dict[str, BatchResult] = {}
        while pending:
            task = pending.popleft()
            extra = [str(t["lease"]) for t in pending]
            dead = await self._run_task(
                reader, writer, task, heartbeat_interval, extra,
                bundle_pending=pending, suite_cache=suite_cache,
            )
            if dead:
                pending = deque(
                    t for t in pending if str(t["lease"]) not in dead
                )
            if pending and (
                self._draining
                or (
                    self.max_tasks is not None
                    and self.tasks_completed >= self.max_tasks
                )
            ):
                await self._release(
                    reader, writer,
                    [str(t["lease"]) for t in pending],
                )
                return

    async def _release(self, reader, writer, leases: List[str]) -> None:
        """Hand unstarted leases back to the coordinator cleanly."""
        self._registry.counter(
            "distrib.worker.leases.released"
        ).inc(len(leases))
        _log.info(
            "worker %s releasing %d unstarted lease(s)",
            self.worker_id, len(leases),
            extra={"event": "distrib.worker_release",
                   "worker": self.worker_id, "count": len(leases)},
        )
        await self._send(writer, {"type": "release", "leases": leases})
        ack = await read_message(reader)
        if ack is not None and ack.get("type") != "release_ack":
            raise ProtocolError(
                f"expected release_ack, got {ack.get('type')!r}"
            )

    async def _goodbye(self, writer) -> None:
        try:
            await self._send(writer, {"type": "goodbye"})
        except (ConnectionError, OSError):
            pass  # the peer beat us to hanging up

    async def _run_task(
        self, reader, writer, task: dict, heartbeat_interval: float,
        extra_leases: Optional[List[str]] = None,
        bundle_pending: Optional[Sequence[dict]] = None,
        suite_cache: Optional[Dict[str, BatchResult]] = None,
    ) -> Set[str]:
        cell = str(task["cell"])
        lease = str(task["lease"])
        profile = profile_from_wire(task["profile"])
        configs = configs_from_wire(task["configs"])
        policy = policy_from_wire(task["policy"])
        retry_seed = int(task["retry_seed"])
        # Adopt the coordinator's trace context (absent from a
        # pre-trace-context coordinator — then spans stay contextless
        # and the coordinator's adopt() stamps its own trace id).
        context = task.get("trace")
        if isinstance(context, dict):
            self._tracer.bind(
                trace_id=context.get("trace_id"),
                parent_id=context.get("parent_id"),
            )
        attempts = 0
        cached = (
            suite_cache.pop(cell, None)
            if suite_cache is not None else None
        )

        def attempt() -> BatchResult:
            nonlocal attempts
            attempts += 1
            siblings = [
                t for t in (bundle_pending or ())
                if t.get("chunk_index") == task.get("chunk_index")
                and t["configs"] == task["configs"]
            ] if supports_suite(self.backend) else []
            if not siblings:
                return self.backend.simulate_batch(profile, configs)
            # One program-major call covers this cell plus every
            # same-chunk sibling still pending in the bundle; siblings
            # wait in the cache for their turn in the loop.
            profiles = [profile] + [
                profile_from_wire(t["profile"]) for t in siblings
            ]
            results = self.backend.simulate_suite(profiles, configs)
            for sibling, result in zip(siblings, results[1:]):
                suite_cache[str(sibling["cell"])] = result
            return results[0]

        def simulate():
            # Runs in a thread so the event loop keeps heartbeating.
            # Private breaker per task, like the process-pool worker:
            # the coordinator tracks cross-task worker health itself.
            with self._tracer.span(
                "simulate.chunk",
                program=profile.name,
                chunk=task.get("chunk_index"),
                worker=self.worker_id,
            ) as cell_span:
                batch, error = None, None
                if cached is not None:
                    try:
                        validate_batch(cached, f"for cell {cell}")
                        batch = cached
                    except SimulationError:
                        pass  # distrust the cached copy; re-simulate
                if batch is None:
                    try:
                        batch = call_with_retry(
                            attempt,
                            policy,
                            seed=retry_seed,
                            breaker=CircuitBreaker(),
                            validate=lambda result: validate_batch(
                                result, f"for cell {cell}"
                            ),
                        )
                    except SimulationError as failure:
                        error = str(failure)
                if cell_span is not None:
                    cell_span["attrs"]["attempts"] = attempts
                    cell_span["attrs"]["outcome"] = (
                        "ok" if error is None else "failed"
                    )
            self._registry.histogram("campaign.chunk.seconds").observe(
                self._tracer.spans[-1]["dur"]
            )
            return batch, error

        work = asyncio.create_task(asyncio.to_thread(simulate))
        try:
            lease_lost, dead = await self._heartbeat_until_done(
                reader, writer, work, lease, heartbeat_interval,
                extra_leases or [],
            )
            batch, error = await work
            if lease_lost:
                # The coordinator reclaimed the lease (we looked hung);
                # someone else owns the cell now.  Drop the result.
                self._registry.counter("distrib.worker.leases.lost").inc()
                _log.warning(
                    "worker %s lost lease on cell %s; dropping result",
                    self.worker_id, cell,
                    extra={"event": "distrib.lease_lost", "cell": cell,
                           "worker": self.worker_id},
                )
                return dead
            # Counted before the telemetry drain so this task's own bump
            # rides back with this task's result, not the next one's.
            self._registry.counter("distrib.worker.tasks").inc()
            result: dict = {
                "type": "result",
                "lease": lease,
                "cell": cell,
                "attempts": attempts,
                "telemetry": self._drain_telemetry(),
            }
            if error is not None:
                result["ok"] = False
                result["error"] = error
            else:
                result["ok"] = True
                result["arrays"] = batch_to_wire(batch)
                result["arrays_checksum"] = batch_checksum(batch)
            await self._send(writer, result)
            ack = await read_message(reader)
        except (ConnectionError, OSError):
            # The connection died under us: let the simulation thread
            # finish before unwinding so no thread outlives its task.
            if not work.done():
                await asyncio.shield(work)
            raise
        if ack is None:
            raise CoordinatorLost(
                f"coordinator vanished before acknowledging cell {cell}"
            )
        if ack.get("type") != "ack":
            raise ProtocolError(
                "coordinator did not acknowledge the result for "
                f"cell {cell}"
            )
        self.tasks_completed += 1
        if not ack.get("accepted"):
            _log.info(
                "result for cell %s was stale (another worker finished "
                "it first)",
                cell,
                extra={"event": "distrib.result_stale", "cell": cell},
            )
        return dead

    async def _heartbeat_until_done(
        self, reader, writer, work: asyncio.Task, lease: str,
        interval: float, extra_leases: List[str],
    ) -> "tuple[bool, Set[str]]":
        """Heartbeat every held lease while the simulation runs.

        Returns:
            ``(lease_lost, dead_extras)`` — whether the *running*
            task's lease was reclaimed, plus any pending bundle leases
            the coordinator reported dead (stolen or reclaimed).
        """
        dead: Set[str] = set()
        while True:
            try:
                await asyncio.wait_for(
                    asyncio.shield(work), timeout=interval
                )
                return False, dead
            except asyncio.TimeoutError:
                pass
            held = [lease] + [
                lid for lid in extra_leases if lid not in dead
            ]
            beat: dict = {
                "type": "heartbeat", "lease": lease, "leases": held,
            }
            # Spans finished since the last drain (retry attempts,
            # earlier bundle cells) ride the heartbeat, so the
            # coordinator's live trace does not wait for the result.
            spans = self._take_spans()
            if spans:
                beat["telemetry"] = {"spans": spans}
            await self._send(writer, beat)
            ack = await read_message(reader)
            if ack is None:
                raise CoordinatorLost(
                    "coordinator vanished mid-task (no heartbeat ack)"
                )
            if ack.get("type") != "hb_ack":
                raise ProtocolError(
                    f"expected hb_ack, got {ack.get('type')!r}"
                )
            leases_ok = ack.get("leases_ok")
            if isinstance(leases_ok, dict):
                for lease_id, ok in leases_ok.items():
                    if not ok and lease_id != lease:
                        dead.add(str(lease_id))
            if not ack.get("lease_ok", False):
                await asyncio.shield(work)  # let the thread finish
                return True, dead

    def _take_spans(self) -> List[dict]:
        """Spans finished since the last take, advancing the mark.

        One mark serves both shippers (heartbeats and result drains),
        so a span is sent exactly once however the two interleave.
        """
        spans = list(self._tracer.spans[self._telemetry_mark:])
        self._telemetry_mark = self._tracer.mark()
        return spans

    def _drain_telemetry(self) -> dict:
        """Snapshot-and-reset so each result carries only its own spans.

        The registry snapshot is cumulative, so it is rebuilt fresh
        after each drain — merging the same counter twice would double
        count coordinator-side.
        """
        telemetry = {
            "metrics": self._registry.snapshot(),
            "spans": self._take_spans(),
        }
        self._registry = MetricsRegistry()
        return telemetry


def _default_backend() -> SimulationBackend:
    from repro.runtime.backend import IntervalBackend

    return IntervalBackend()
