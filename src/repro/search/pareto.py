"""Multi-objective Pareto machinery: fronts, archives, hypervolume.

The closed-loop optimizer needs three primitives the two-metric
``pareto_front`` of the original exploration module could not provide:

* :func:`pareto_indices` — the non-dominated subset of an arbitrary
  (n, k) objective matrix, with *validated* input: NaN/Inf metric
  values and degenerate single-axis inputs raise clear errors instead
  of silently mis-ranking, and exact duplicate rows keep only their
  first occurrence.
* :class:`ParetoArchive` — an incremental frontier that absorbs one
  evaluated design at a time, discarding dominated entries as it goes.
  The search environment owns one, so every agent shares identical
  frontier bookkeeping.
* :func:`hypervolume` — the volume dominated by a frontier up to a
  reference point, the standard scalar quality measure for comparing
  frontiers produced at equal budget (``BENCH_search.json`` plots it
  against predictor-call budget).

All objectives are *minimised*; a point ``p`` dominates ``q`` when
``p <= q`` in every objective and ``p < q`` in at least one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration

__all__ = [
    "FrontierPoint",
    "ParetoArchive",
    "dominated_fraction_nd",
    "hypervolume",
    "pareto_indices",
    "suggest_reference",
]


def _as_objective_matrix(values, *, context: str = "values") -> np.ndarray:
    """Validate and coerce an (n, k) objective matrix.

    Raises:
        ValueError: on non-2-D input (a 1-D vector is the classic
            single-objective degenerate case — its "frontier" is a
            scalar argmin, not a trade-off) or on NaN/Inf entries,
            which would silently mis-rank under ``<=`` comparisons.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise ValueError(
            f"{context} must be a 2-D (points x objectives) matrix; got "
            f"{arr.ndim}-D input.  A single-objective problem has a "
            "scalar optimum — use argmin, not a Pareto front"
        )
    if arr.shape[1] < 1:
        raise ValueError(f"{context} needs at least one objective column")
    if arr.size and not np.isfinite(arr).all():
        bad = int(np.sum(~np.isfinite(arr)))
        first = tuple(int(i) for i in np.argwhere(~np.isfinite(arr))[0])
        raise ValueError(
            f"{context} contains {bad} NaN/Inf entr(y/ies), first at "
            f"index {first}; non-finite metrics cannot be ranked — "
            "check the predictor or simulation backend"
        )
    return arr


def _validate_reference(reference, objectives: int) -> np.ndarray:
    """Validate a hypervolume reference point against the objective count."""
    ref = np.asarray(reference, dtype=float).reshape(-1)
    if ref.shape[0] != objectives:
        raise ValueError(
            f"reference point has {ref.shape[0]} coordinates for "
            f"{objectives} objectives"
        )
    if not np.isfinite(ref).all():
        raise ValueError("reference point must be finite")
    return ref


def pareto_indices(values) -> np.ndarray:
    """Indices of the non-dominated rows of an (n, k) objective matrix.

    Exact duplicate rows keep only their first occurrence (a duplicated
    design adds nothing to a frontier); otherwise equal-valued distinct
    rows never dominate each other.  Indices come back sorted ascending,
    so the selection is deterministic for any input order.

    Raises:
        ValueError: for 1-D (single-objective degenerate) input or any
            NaN/Inf metric value — see :func:`_as_objective_matrix`.
    """
    arr = _as_objective_matrix(values)
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=int)
    dominated = np.zeros(n, dtype=bool)
    # Chunked pairwise domination test: memory stays O(chunk * n).
    chunk = 256
    for start in range(0, n, chunk):
        block = arr[start:start + chunk]
        leq = (arr[None, :, :] <= block[:, None, :]).all(axis=2)
        lt = (arr[None, :, :] < block[:, None, :]).any(axis=2)
        dominated[start:start + chunk] = (leq & lt).any(axis=1)
    keep = np.flatnonzero(~dominated)
    # Drop exact duplicates, keeping the earliest index of each row.
    _, first = np.unique(arr[keep], axis=0, return_index=True)
    return np.sort(keep[np.sort(first)])


def dominated_fraction_nd(front, points) -> float:
    """Fraction of ``points`` dominated by at least one ``front`` row.

    The k-objective generalisation of the classic two-metric
    :func:`repro.search.strategies.dominated_fraction` quality measure.

    Raises:
        ValueError: on empty ``points``, mismatched objective counts,
            or non-finite entries in either matrix.
    """
    front_arr = _as_objective_matrix(front, context="front")
    points_arr = _as_objective_matrix(points, context="points")
    if points_arr.shape[0] == 0:
        raise ValueError("points must be non-empty")
    if front_arr.shape[0] == 0:
        return 0.0
    if front_arr.shape[1] != points_arr.shape[1]:
        raise ValueError(
            f"front has {front_arr.shape[1]} objectives, points have "
            f"{points_arr.shape[1]}"
        )
    leq = (front_arr[None, :, :] <= points_arr[:, None, :]).all(axis=2)
    lt = (front_arr[None, :, :] < points_arr[:, None, :]).any(axis=2)
    return float((leq & lt).any(axis=1).mean())


def suggest_reference(values, margin: float = 0.1) -> np.ndarray:
    """A hypervolume reference point dominating every row of ``values``.

    Per objective: ``hi + margin * span`` (with a tiny absolute floor
    when an objective is constant), so every observed point contributes
    positive volume.  To compare frontiers from *different* runs,
    stack all their observed points and derive one shared reference —
    hypervolumes are only comparable against a common reference.
    """
    arr = _as_objective_matrix(values, context="observed values")
    if arr.shape[0] == 0:
        raise ValueError("cannot derive a reference from zero points")
    if margin <= 0:
        raise ValueError("margin must be positive")
    lo = arr.min(axis=0)
    hi = arr.max(axis=0)
    span = hi - lo
    pad = margin * np.where(span > 0, span, np.maximum(np.abs(hi), 1.0))
    return hi + pad


def hypervolume(points, reference) -> float:
    """Volume dominated by ``points`` and bounded by ``reference``.

    Objectives are minimised: the hypervolume is the measure of the
    region ``{x : exists p with p <= x <= reference}``.  Points not
    strictly below the reference in every objective contribute nothing
    (standard practice, so a shared reference can score frontiers whose
    stragglers poke past it).  Computed exactly by recursive slicing on
    the first objective — fine for the few-hundred-point frontiers the
    search produces; the tests pin it against a brute-force grid count.

    Raises:
        ValueError: on malformed or non-finite inputs (and a 1-D
            ``points`` vector, the single-objective degenerate case).
    """
    arr = _as_objective_matrix(points, context="points")
    ref = _validate_reference(reference, arr.shape[1])
    if arr.shape[0] == 0:
        return 0.0
    inside = (arr < ref).all(axis=1)
    arr = arr[inside]
    if arr.shape[0] == 0:
        return 0.0
    front = arr[pareto_indices(arr)]
    return _hypervolume_recursive(front, ref)


def _hypervolume_recursive(front: np.ndarray, ref: np.ndarray) -> float:
    """Exact hypervolume of a non-dominated set strictly below ``ref``."""
    k = front.shape[1]
    if k == 1:
        return float(ref[0] - front[:, 0].min())
    # Slice along the first objective: between consecutive cuts the
    # dominated cross-section is constant, so the volume is the slab
    # width times the (k-1)-dimensional hypervolume of the active set.
    cuts = np.unique(front[:, 0])
    total = 0.0
    for i, cut in enumerate(cuts):
        upper = cuts[i + 1] if i + 1 < len(cuts) else ref[0]
        active = front[front[:, 0] <= cut][:, 1:]
        sub = active[pareto_indices(active)] if active.shape[0] else active
        total += float(upper - cut) * _hypervolume_recursive(sub, ref[1:])
    return total


@dataclass(frozen=True)
class FrontierPoint:
    """One member of a Pareto frontier: a design and its objectives."""

    configuration: Configuration
    objectives: Tuple[float, ...]

    def to_payload(self) -> Dict:
        """JSON-ready dict (parameter mapping plus objective vector)."""
        return {
            "configuration": self.configuration.as_dict(),
            "objectives": list(self.objectives),
        }


class ParetoArchive:
    """An incremental non-dominated archive of evaluated designs.

    Every evaluated (configuration, objective-vector) pair is offered
    to the archive; it keeps exactly the current Pareto set.  Dominated
    offers are rejected, accepted offers evict the members they
    dominate, and re-offering an already archived configuration is a
    no-op — the dedup that keeps a random agent from padding its
    frontier with repeats.

    Args:
        objectives: Number of objective coordinates (>= 1; one objective
            degenerates to best-so-far tracking, which the
            single-metric ``/search`` serving endpoint relies on).
    """

    def __init__(self, objectives: int) -> None:
        if objectives < 1:
            raise ValueError("an archive needs at least one objective")
        self._objectives = objectives
        self._configs: List[Configuration] = []
        self._values: List[Tuple[float, ...]] = []
        self._members: Dict[Configuration, Tuple[float, ...]] = {}

    @property
    def objectives(self) -> int:
        """Number of objective coordinates per entry."""
        return self._objectives

    def __len__(self) -> int:
        return len(self._configs)

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self._members

    def insert(self, configuration: Configuration, values) -> bool:
        """Offer one evaluated design; True if it joined the frontier.

        Raises:
            ValueError: on an objective-count mismatch or NaN/Inf
                objective values (clear errors beat silent mis-ranking).
        """
        vec = np.asarray(values, dtype=float).reshape(-1)
        if vec.shape[0] != self._objectives:
            raise ValueError(
                f"expected {self._objectives} objective values, got "
                f"{vec.shape[0]}"
            )
        if not np.isfinite(vec).all():
            raise ValueError(
                f"non-finite objective values {vec.tolist()} for "
                f"{configuration}; refusing to rank NaN/Inf metrics"
            )
        if configuration in self._members:
            return False
        candidate = tuple(float(v) for v in vec)
        survivors_c: List[Configuration] = []
        survivors_v: List[Tuple[float, ...]] = []
        for config, existing in zip(self._configs, self._values):
            if _dominates(existing, candidate):
                return False
            if not _dominates(candidate, existing):
                survivors_c.append(config)
                survivors_v.append(existing)
        for gone in set(self._configs) - set(survivors_c):
            del self._members[gone]
        survivors_c.append(configuration)
        survivors_v.append(candidate)
        self._configs = survivors_c
        self._values = survivors_v
        self._members[configuration] = candidate
        return True

    def update(self, configurations: Sequence[Configuration], values) -> int:
        """Offer a batch; returns how many joined the frontier."""
        matrix = _as_objective_matrix(values, context="batch values")
        if matrix.shape[0] != len(configurations):
            raise ValueError(
                f"{len(configurations)} configurations for "
                f"{matrix.shape[0]} objective rows"
            )
        return sum(
            self.insert(config, row)
            for config, row in zip(configurations, matrix)
        )

    def front(self) -> Tuple[FrontierPoint, ...]:
        """The current frontier, sorted by objective vector (ascending)."""
        order = sorted(
            range(len(self._configs)), key=lambda i: self._values[i]
        )
        return tuple(
            FrontierPoint(self._configs[i], self._values[i]) for i in order
        )

    def values_matrix(self) -> np.ndarray:
        """The frontier's objective vectors as an (n, k) matrix."""
        if not self._values:
            return np.empty((0, self._objectives), dtype=float)
        return np.asarray(sorted(self._values), dtype=float)

    def hypervolume(self, reference: Optional[Sequence[float]] = None) -> float:
        """Frontier hypervolume against ``reference``.

        With no reference given one is derived from the frontier itself
        via :func:`suggest_reference` — fine for a standalone score,
        wrong for comparing runs (derive a shared reference from the
        union of observed points instead).
        """
        matrix = self.values_matrix()
        if matrix.shape[0] == 0:
            return 0.0
        ref = (
            suggest_reference(matrix)
            if reference is None
            else _validate_reference(reference, self._objectives)
        )
        return hypervolume(matrix, ref)


def _dominates(p: Tuple[float, ...], q: Tuple[float, ...]) -> bool:
    """True when ``p`` dominates ``q`` (minimisation, strict somewhere)."""
    return all(a <= b for a, b in zip(p, q)) and any(
        a < b for a, b in zip(p, q)
    )
