"""Active response selection (an extension beyond the paper).

The paper draws the R = 32 responses uniformly at random (Section 5.3)
and leaves smarter selection open.  This module implements the natural
extension: pick response configurations where the offline program models
*disagree* most, since disagreement marks the regions of the space where
programs genuinely differ — exactly where observing the new program is
informative.  Selection is greedy with a diversity term so the chosen
configurations do not cluster.

The ``bench_ablation_response_selection`` harness compares this policy
against the paper's uniform-random choice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.ml.ensemble import StackedEnsemble

from .program_model import ProgramSpecificPredictor


def _log_prediction_matrix(
    models: Sequence[ProgramSpecificPredictor],
    configs: Sequence[Configuration],
) -> np.ndarray:
    """(N, m) log10 prediction matrix, stacked-ensemble fast path.

    Homogeneous pools ride one batched forward pass through
    :class:`~repro.ml.ensemble.StackedEnsemble` (bit-identical to the
    per-model loop — the ensemble tests assert exact equality); mixed
    pools fall back to evaluating members one at a time.
    """
    ensemble = StackedEnsemble.maybe_from_models(models)
    if ensemble is not None:
        # log_model_matrix returns (m, N); the callers want (N, m).
        return np.ascontiguousarray(ensemble.log_model_matrix(configs).T)
    return np.stack([np.log10(model.predict(configs)) for model in models])


def model_disagreement(
    models: Sequence[ProgramSpecificPredictor],
    configs: Sequence[Configuration],
) -> np.ndarray:
    """Per-configuration disagreement among the offline models.

    Measured as the standard deviation of the models' log10 predictions:
    scale-free, so fast-and-slow configurations are comparable.
    """
    if not models:
        raise ValueError("at least one model is required")
    if not configs:
        return np.empty(0)
    return _log_prediction_matrix(models, configs).std(axis=0)


def select_responses(
    models: Sequence[ProgramSpecificPredictor],
    candidates: Sequence[Configuration],
    count: int,
    diversity_weight: float = 0.5,
    seed: Optional[int] = None,
) -> List[int]:
    """Greedily pick ``count`` informative response configurations.

    Each step picks the candidate maximising
    ``disagreement + diversity_weight * distance_to_chosen`` (distances
    in normalised log-prediction feature space), starting from the most
    disagreed-upon candidate.  Returns indices into ``candidates``.

    Args:
        models: The offline-trained program models.
        candidates: Configurations to choose from (e.g. the sampled
            pool the experiments share).
        count: Number of responses (the paper's R).
        diversity_weight: Trade-off between informativeness and spread;
            0 degenerates to pure top-k disagreement.
        seed: Tie-breaking seed.
    """
    if count < 1 or count > len(candidates):
        raise ValueError(f"count must be in [1, {len(candidates)}]")
    if diversity_weight < 0:
        raise ValueError("diversity_weight must be non-negative")

    rng = np.random.default_rng(seed)
    predictions = np.ascontiguousarray(
        _log_prediction_matrix(models, candidates).T
    )
    disagreement = predictions.std(axis=1)
    # Feature space for diversity: standardised model predictions.
    features = predictions - predictions.mean(axis=0)
    spread = features.std(axis=0)
    features = features / np.where(spread > 0, spread, 1.0)

    jitter = rng.uniform(0.0, 1e-9, size=len(candidates))
    chosen: List[int] = [int(np.argmax(disagreement + jitter))]
    min_distance = np.linalg.norm(
        features - features[chosen[0]], axis=1
    )
    scale = max(float(min_distance.max()), 1e-12)
    while len(chosen) < count:
        score = disagreement + diversity_weight * (
            disagreement.mean() * min_distance / scale
        )
        score[chosen] = -np.inf
        pick = int(np.argmax(score + jitter))
        chosen.append(pick)
        distance_to_new = np.linalg.norm(features - features[pick], axis=1)
        min_distance = np.minimum(min_distance, distance_to_new)
    return chosen
