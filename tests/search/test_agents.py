"""Agents: determinism, legality, protocol conformance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.search import (
    AGENT_NAMES,
    DesignSpaceEnv,
    GeneticAgent,
    make_agent,
    run_search,
)
from repro.sim import Metric


class QuadraticOracle:
    """A cheap deterministic analytic oracle (no trained models)."""

    def __init__(self, space) -> None:
        self._space = space

    @property
    def metrics(self):
        return (Metric.CYCLES, Metric.ENERGY)

    def evaluate(self, configs):
        x = self._space.encode_many(configs)
        cycles = 1e6 + (x ** 2).sum(axis=1) * 1e3
        energy = 1e3 + ((x - 8.0) ** 2).sum(axis=1)
        return {Metric.CYCLES: cycles, Metric.ENERGY: energy}


def _make_env(space, budget=96):
    return DesignSpaceEnv(space, QuadraticOracle(space), budget=budget)


class TestFactory:
    def test_every_name_constructs(self, space):
        for name in AGENT_NAMES:
            agent = make_agent(name, space, objectives=2, seed=0)
            assert agent.name == name

    def test_unknown_name(self, space):
        with pytest.raises(ValueError, match="unknown agent"):
            make_agent("gradient", space)

    def test_kwargs_forwarded(self, space):
        agent = make_agent("genetic", space, seed=0, population=8)
        assert isinstance(agent, GeneticAgent)


class TestDeterminism:
    @pytest.mark.parametrize("name", AGENT_NAMES)
    def test_same_seed_same_trajectory(self, space, name):
        outcomes = []
        for _ in range(2):
            env = _make_env(space)
            agent = make_agent(name, space, objectives=2, seed=17)
            outcomes.append(run_search(env, agent, batch_size=12, seed=17))
        first, second = outcomes
        assert first.frontier == second.frontier
        assert first.hypervolume == second.hypervolume
        assert first.best == second.best

    @pytest.mark.parametrize("name", ("random", "genetic"))
    def test_different_seeds_diverge(self, space, name):
        frontiers = []
        for seed in (1, 2):
            env = _make_env(space)
            agent = make_agent(name, space, objectives=2, seed=seed)
            frontiers.append(run_search(env, agent, batch_size=12).frontier)
        assert frontiers[0] != frontiers[1]


class TestLegality:
    @pytest.mark.parametrize("name", AGENT_NAMES)
    def test_all_proposals_legal(self, space, name):
        env = _make_env(space, budget=80)
        agent = make_agent(name, space, objectives=2, seed=5)
        baseline = env.reset()
        agent.observe([baseline])
        while not env.done:
            count = min(10, env.remaining)
            proposals = agent.propose(count)
            assert proposals, name
            assert len(proposals) <= count
            for config in proposals:
                space.validate(config)  # raises on any illegal proposal
            observations, _, _ = env.step_batch(proposals)
            agent.observe(observations)


class TestSearchQuality:
    def test_informed_agents_beat_random_on_smooth_surface(self, space):
        """At equal budget the genetic agent's frontier dominates more.

        The analytic surface is smooth and low-noise, so selection
        pressure must win; scored against one shared reference.
        """
        results = {}
        for name in ("random", "genetic"):
            env = _make_env(space, budget=192)
            agent = make_agent(name, space, objectives=2, seed=29)
            results[name] = run_search(env, agent, batch_size=16, seed=29)
        union = np.stack([
            np.asarray(results["random"].observed_lo),
            np.asarray(results["random"].observed_hi),
            np.asarray(results["genetic"].observed_lo),
            np.asarray(results["genetic"].observed_hi),
        ])
        from repro.search import suggest_reference

        reference = suggest_reference(union)
        genetic = results["genetic"].hypervolume_at(reference)
        random_hv = results["random"].hypervolume_at(reference)
        assert genetic > random_hv

    def test_bayes_waits_for_history(self, space):
        agent = make_agent("bayes", space, objectives=2, seed=3,
                           min_history=10_000)
        proposals = agent.propose(4)
        assert len(proposals) == 4  # still exploring uniformly
