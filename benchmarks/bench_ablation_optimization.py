"""Ablation A5: predicting recompiled binaries (the intro's use case).

The paper's introduction argues that under program-specific predictors
"there is a large overhead even if the designer just wants to compile
with a different optimization level".  This ablation plays the scenario
out: the offline pool holds the standard (-O2-class) SPEC binaries; the
new programs are -O0/-O3/unrolled rebuilds of pool members.  The
architecture-centric model should characterise each rebuild from 32
responses far better than a fresh program-specific model can.
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import evaluate_on_program, program_specific_score
from repro.exploration import DesignSpaceDataset, format_table, scale_banner
from repro.sim import Metric
from repro.workloads import BenchmarkSuite, optimization_variant

BASES = ("gzip", "applu", "crafty")
LEVELS = ("O0", "O3", "unrolled")


def test_ablation_optimization(benchmark, spec_dataset, pools,
                               record_artifact):
    pool = pools(Metric.CYCLES)
    models = pool.models()

    variants = [
        optimization_variant(spec_dataset.suite[base], level)
        for base in BASES
        for level in LEVELS
    ]
    variant_suite = BenchmarkSuite("rebuilds", variants)
    variant_dataset = DesignSpaceDataset(
        variant_suite, spec_dataset.configs, spec_dataset.simulator
    )

    def run():
        rows = []
        for profile in variants:
            ours = evaluate_on_program(
                models, variant_dataset, profile.name,
                responses=RESPONSES, seed=808,
            )
            theirs = program_specific_score(
                variant_dataset, profile.name, Metric.CYCLES,
                RESPONSES, seed=808,
            )
            rows.append((profile.name, ours, theirs))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ("rebuild", "ours rmae%", "ours corr", "ps rmae%", "ps corr"),
        [
            (name, round(ours.rmae, 1), round(ours.correlation, 3),
             round(theirs.rmae, 1), round(theirs.correlation, 3))
            for name, ours, theirs in rows
        ],
    )
    ours_mean = float(np.mean([ours.rmae for _, ours, _ in rows]))
    theirs_mean = float(np.mean([theirs.rmae for _, _, theirs in rows]))
    text = (
        scale_banner(
            "Ablation A5 — predicting recompiled binaries at 32 "
            "simulations",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            rebuilds=len(rows),
        )
        + "\n"
        + table
        + f"\n\nmean rmae: ours {ours_mean:.1f}%  "
        f"program-specific {theirs_mean:.1f}%"
    )
    record_artifact("ablation_optimization", text)

    # The intro's claim: recompilation is cheap for our model, expensive
    # for the program-specific one.
    assert ours_mean < 0.6 * theirs_mean
    ours_corr = np.mean([ours.correlation for _, ours, _ in rows])
    theirs_corr = np.mean([theirs.correlation for _, _, theirs in rows])
    assert ours_corr > theirs_corr + 0.2
