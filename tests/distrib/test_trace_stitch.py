"""Cross-host trace stitching over real loopback campaigns.

The contract: one distributed campaign produces **one** trace — the
coordinator's root span and every worker's chunk spans share a single
trace id, each worker renders as its own named process lane in the
chrome export, and peers that predate trace context (or speak the
older protocol version) still land inside the campaign trace because
the coordinator stamps adopted spans.  None of this may perturb the
journal: stitched campaigns stay bit-identical to serial ones.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.distrib import CampaignCoordinator, CampaignWorker
from repro.distrib.protocol import (
    MIN_PROTOCOL_VERSION,
    encode_frame,
    read_message,
    write_message,
)
from repro.obs import SLOTracker, scoped_registry, scoped_tracer
from repro.runtime import CampaignRunner

from .test_distributed_campaign import (
    FAST_POLICY,
    assert_matrices_identical,
    distributed,
    journal_checksums,
    serial_result,
)


def _runner(backend, tmp_path, name):
    return CampaignRunner(
        backend,
        tmp_path / name,
        chunk_size=16,
        retry_policy=FAST_POLICY,
        seed=5,
    )


class TestStitchedTrace:
    def test_two_workers_share_one_trace_id(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        with scoped_registry(), scoped_tracer() as tracer:
            coordinator, result = distributed(
                _runner(backend, tmp_path, "stitch"),
                tiny_suite,
                tiny_configs,
                n_workers=2,
                backend_factory=lambda: backend,
            )
        assert result.complete
        trace_id = coordinator.trace_id
        assert trace_id is not None and len(trace_id) == 32
        by_name = {}
        for record in tracer.spans:
            by_name.setdefault(record["name"], []).append(record)
        # The coordinator's root span and every adopted worker span
        # carry the campaign's single trace id.
        (root,) = by_name["distrib.coordinate"]
        assert root["trace_id"] == trace_id
        chunks = by_name["simulate.chunk"]
        assert chunks  # workers shipped their spans home
        assert {record["trace_id"] for record in chunks} == {trace_id}
        assert {record["lane"] for record in chunks} == {"w0", "w1"}
        # Worker chunk spans hang off the coordinator's root span.
        roots = [r for r in chunks if r.get("depth") == 0]
        assert all(
            record["parent_id"] == root["span_id"] for record in roots
        )

    def test_chrome_export_has_per_worker_lanes(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        with scoped_registry(), scoped_tracer() as tracer:
            coordinator, result = distributed(
                _runner(backend, tmp_path, "lanes"),
                tiny_suite,
                tiny_configs,
                n_workers=2,
                backend_factory=lambda: backend,
            )
        assert result.complete
        events = tracer.to_chrome_events()
        json.dumps(events)  # the file must be valid chrome json
        lanes = sorted(
            event["args"]["name"]
            for event in events
            if event["ph"] == "M"
        )
        assert lanes == ["w0", "w1"]
        traced = {
            event["args"]["trace_id"]
            for event in events
            if event["ph"] == "X" and "trace_id" in event["args"]
        }
        assert traced == {coordinator.trace_id}

    def test_stitching_does_not_perturb_the_journal(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = _runner(backend, tmp_path, "bitident")
        with scoped_registry(), scoped_tracer():
            _, result = distributed(
                dist_runner,
                tiny_suite,
                tiny_configs,
                n_workers=2,
                backend_factory=lambda: backend,
            )
        assert result.complete
        assert_matrices_identical(serial, result)
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )


class _TraceBlindWorker(CampaignWorker):
    """A peer that predates trace context: ignores the task's trace
    field, so its spans arrive at the coordinator trace-id-less."""

    async def _run_task(self, reader, writer, task, *args, **kwargs):
        task = dict(task)
        task.pop("trace", None)
        return await super()._run_task(
            reader, writer, task, *args, **kwargs
        )


class TestMixedFleet:
    def test_trace_blind_worker_is_adopt_stamped(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """An old worker's spans still join the campaign trace (the
        coordinator stamps them on adopt) and the journal stays
        bit-identical to serial."""
        serial_runner, serial = serial_result(
            backend, tiny_suite, tiny_configs, tmp_path
        )
        dist_runner = _runner(backend, tmp_path, "mixed")

        async def scenario():
            coordinator = CampaignCoordinator(
                dist_runner, port=0, monitor_interval=0.02
            )
            ready = asyncio.Event()
            campaign = asyncio.create_task(
                coordinator.run_async(
                    tiny_suite,
                    tiny_configs,
                    ready_callback=lambda _: ready.set(),
                )
            )
            await ready.wait()
            workers = [
                cls(
                    "127.0.0.1",
                    coordinator.port,
                    backend_factory=lambda: backend,
                    worker_id=worker_id,
                )
                for cls, worker_id in (
                    (CampaignWorker, "new"),
                    (_TraceBlindWorker, "old"),
                )
            ]
            runs = [asyncio.create_task(w.run_async()) for w in workers]
            result = await campaign
            await asyncio.gather(*runs, return_exceptions=True)
            return coordinator, result

        with scoped_registry(), scoped_tracer() as tracer:
            coordinator, result = asyncio.run(scenario())
        assert result.complete
        chunks = [
            record
            for record in tracer.spans
            if record["name"] == "simulate.chunk"
        ]
        lanes = {record["lane"] for record in chunks}
        assert "old" in lanes  # the blind worker did real work
        assert {record["trace_id"] for record in chunks} == {
            coordinator.trace_id
        }
        assert_matrices_identical(serial, result)
        assert journal_checksums(dist_runner) == journal_checksums(
            serial_runner
        )

    def test_minimum_protocol_version_still_welcome(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """A frame stamped with the oldest supported version is
        accepted — v3 only added optional payload keys."""
        outcome = {}

        async def old_peer(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            frame = bytearray(
                encode_frame({"type": "hello", "worker": "v2-peer"})
            )
            body = json.loads(frame[4:].decode("utf-8"))
            body["v"] = MIN_PROTOCOL_VERSION
            tampered = json.dumps(body).encode("utf-8")
            writer.write(len(tampered).to_bytes(4, "big") + tampered)
            await writer.drain()
            outcome["reply"] = await read_message(reader)
            await write_message(writer, {"type": "goodbye"})
            writer.close()

        with scoped_registry(), scoped_tracer():
            _, result = distributed(
                _runner(backend, tmp_path, "v2peer"),
                tiny_suite,
                tiny_configs,
                n_workers=2,
                backend_factory=lambda: backend,
                extra_clients=(old_peer,),
            )
        assert result.complete
        assert outcome["reply"] is not None
        assert outcome["reply"]["type"] == "welcome"


class TestStatusPayload:
    def test_status_carries_trace_series_and_slo(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        slo = SLOTracker.from_config(
            Path(__file__).resolve().parents[2]
            / "examples"
            / "slo_smoke.json"
        )
        with scoped_registry(), scoped_tracer():
            coordinator, result = distributed(
                _runner(backend, tmp_path, "status"),
                tiny_suite,
                tiny_configs,
                n_workers=2,
                backend_factory=lambda: backend,
                coordinator_kwargs={
                    "slo": slo,
                    "sample_interval": 0.05,
                },
            )
            payload = coordinator._status_payload()
        assert result.complete
        assert payload["trace_id"] == coordinator.trace_id
        # The final sample tick ran in the campaign's finally block, so
        # the series hold campaign-end truth.
        series = payload["series"]
        completed = series["distrib.tasks.completed"]
        assert completed["v"][-1] == result.simulated_cells
        statuses = {entry["name"]: entry for entry in payload["slo"]}
        assert set(statuses) == {
            "task-p99", "reclaim-burn", "stale-drop-rate",
        }
        # A healthy loopback campaign violates nothing.
        assert all(entry["ok"] for entry in statuses.values())
        burn = statuses["reclaim-burn"]
        assert not burn["no_data"]
        assert burn["value"] == 0.0
