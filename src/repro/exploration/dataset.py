"""Simulated design-space datasets shared by all experiments.

The paper simulates the same 3,000 uniformly sampled configurations for
every benchmark (Section 3.3) and draws training sets, responses and
validation sets from that pool.  :class:`DesignSpaceDataset` reproduces
that protocol: one shared configuration sample, per-program metric
vectors computed lazily through the interval simulator and memoised, and
index-based subset selection so experiments can carve out disjoint
training/response/validation splits without re-simulating anything.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.sampling import sample_configurations
from repro.designspace.space import DesignSpace
from repro.sim.interval import IntervalSimulator
from repro.sim.metrics import Metric
from repro.workloads.phases import combine_phase_metrics, decompose
from repro.workloads.suite import BenchmarkSuite


class DesignSpaceDataset:
    """Metric values of one suite over one shared configuration sample.

    Args:
        suite: The benchmark suite to simulate.
        configs: The shared configuration sample.
        simulator: Interval simulator (a default one is built if absent).
        phases: SimPoint-style phases per program.  1 (default) simulates
            each program's aggregate profile; higher values decompose
            every program into weighted phases and combine the per-phase
            cycles and energy, as the paper does with SimPoint intervals.
    """

    def __init__(
        self,
        suite: BenchmarkSuite,
        configs: Sequence[Configuration],
        simulator: Optional[IntervalSimulator] = None,
        phases: int = 1,
    ) -> None:
        if not configs:
            raise ValueError("a dataset needs at least one configuration")
        if phases < 1:
            raise ValueError("phases must be at least 1")
        self.suite = suite
        self.configs: Tuple[Configuration, ...] = tuple(configs)
        self.simulator = simulator if simulator is not None else IntervalSimulator()
        self.phases = phases
        self._cache: Dict[Tuple[str, Metric], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def sampled(
        cls,
        suite: BenchmarkSuite,
        sample_size: int = 3000,
        seed: int = 0,
        space: Optional[DesignSpace] = None,
        simulator: Optional[IntervalSimulator] = None,
    ) -> "DesignSpaceDataset":
        """Build a dataset over a fresh uniform random sample.

        Defaults follow the paper: 3,000 configurations shared across
        all programs of the suite.
        """
        simulator = simulator if simulator is not None else IntervalSimulator(space)
        configs = sample_configurations(simulator.space, sample_size, seed=seed)
        return cls(suite, configs, simulator)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.configs)

    @property
    def programs(self) -> Tuple[str, ...]:
        """Program names of the underlying suite."""
        return self.suite.programs

    def values(self, program: str, metric: Metric) -> np.ndarray:
        """Metric values of one program over all configurations (cached)."""
        key = (program, metric)
        if key not in self._cache:
            profile = self.suite[program]
            if self.phases == 1:
                batch = self.simulator.simulate_batch(
                    profile, list(self.configs)
                )
                cycles, energy = batch.cycles, batch.energy
            else:
                # Additive metrics combine across weighted phases; the
                # derived products are computed from the combined values.
                parts = decompose(profile, self.phases)
                weights = np.array([phase.weight for phase in parts])
                cycle_rows, energy_rows = [], []
                for phase in parts:
                    batch = self.simulator.simulate_batch(
                        phase.profile, list(self.configs)
                    )
                    cycle_rows.append(batch.cycles)
                    energy_rows.append(batch.energy)
                cycles = combine_phase_metrics(np.stack(cycle_rows), weights)
                energy = combine_phase_metrics(np.stack(energy_rows), weights)
            self._cache[(program, Metric.CYCLES)] = cycles
            self._cache[(program, Metric.ENERGY)] = energy
            self._cache[(program, Metric.ED)] = energy * cycles
            self._cache[(program, Metric.EDD)] = energy * cycles * cycles
        return self._cache[key]

    def hydrate(
        self, program: str, metric: Metric, values: np.ndarray
    ) -> None:
        """Install precomputed metric values instead of simulating them.

        The public entry point for anything that already holds a
        program's metrics — a loaded archive, a finished campaign — so
        callers never reach into the memoisation cache directly.

        Args:
            program: A program of this dataset's suite.
            metric: The metric the values belong to.
            values: One finite value per configuration of the dataset.

        Raises:
            ValueError: on an unknown program, a shape mismatch or
                non-finite values.
        """
        if program not in self.programs:
            raise ValueError(
                f"program {program!r} is not in suite {self.suite.name!r}"
            )
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self.configs),):
            raise ValueError(
                f"values for {program!r}/{metric.value} have shape "
                f"{values.shape}, expected {(len(self.configs),)}"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError(
                f"values for {program!r}/{metric.value} contain "
                "non-finite entries"
            )
        self._cache[(program, metric)] = values

    def hydrated(self, program: str, metric: Metric) -> bool:
        """True when the pair is already served without simulation."""
        return (program, metric) in self._cache

    def matrix(self, metric: Metric) -> np.ndarray:
        """(programs, configurations) metric matrix in suite order."""
        return np.stack(
            [self.values(program, metric) for program in self.programs]
        )

    def subset_configs(self, indices: Sequence[int]) -> List[Configuration]:
        """Configurations at the given indices."""
        return [self.configs[i] for i in indices]

    def subset_values(
        self, program: str, metric: Metric, indices: Sequence[int]
    ) -> np.ndarray:
        """Metric values of one program at the given indices."""
        return self.values(program, metric)[list(indices)]

    def split_indices(
        self,
        first_count: int,
        seed: Optional[int] = None,
        universe: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Random disjoint (first, rest) index split of the config pool.

        Args:
            first_count: Size of the first part (e.g. T or R).
            seed: Seed for the permutation.
            universe: Optional subset of indices to split (defaults to
                the whole pool).
        """
        pool = (
            np.arange(len(self.configs))
            if universe is None
            else np.asarray(list(universe), dtype=int)
        )
        if not 0 <= first_count <= pool.size:
            raise ValueError(
                f"first_count must be in [0, {pool.size}], got {first_count}"
            )
        rng = np.random.default_rng(seed)
        order = rng.permutation(pool)
        return order[:first_count], order[first_count:]
