"""Offline training of the per-program model pool.

The architecture-centric scheme trains one program-specific ANN per
training program, offline, on T simulations each (Section 5.2, Fig. 6).
:class:`TrainingPool` owns that step: it trains the models once over a
shared dataset and serves arbitrary subsets (leave-one-out folds, random
few-program pools for the Section 8 cost study) without retraining,
because a program's model does not depend on which fold it appears in.

Training the pool is embarrassingly parallel — the N network fits share
nothing — so the pool fans out over a ``ProcessPoolExecutor`` when asked
(``n_jobs > 1``).  Workers receive the already-encoded training arrays,
fit the network, and ship the weights back through the existing
``get_weights``/``set_weights`` transport.  Every per-program seed is
derived deterministically from the pool seed, and the arrays a worker
fits are prepared by the exact code the serial path runs, so any worker
count produces **bit-identical** models to a serial run.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.mlp import MLPTrainingRecord, MultilayerPerceptron
from repro.obs import get_logger, get_registry, get_tracer, span
from repro.parallel import resolve_jobs
from repro.sim.metrics import Metric
from repro.workloads.profile import stable_seed

from .program_model import ProgramSpecificPredictor

if TYPE_CHECKING:  # avoid a package-level import cycle with exploration
    from repro.exploration.dataset import DesignSpaceDataset

_log = get_logger(__name__)


def _fit_network_worker(
    task: Tuple[str, np.ndarray, np.ndarray, int, int]
) -> Tuple[str, dict, Tuple[int, int, float, float], float]:
    """Train one program's network from prepared arrays (runs in a worker).

    Module-level so it pickles; receives nothing but plain arrays and
    ints, so the result depends only on the (deterministic) inputs.
    The fit wall time rides back with the weights so the parent can
    fold worker fits into its ``train.fit`` telemetry.
    """
    program, features, targets, hidden_neurons, net_seed = task
    network = MultilayerPerceptron(hidden_neurons=hidden_neurons, seed=net_seed)
    start = time.perf_counter()
    network.fit(features, targets)
    fit_seconds = time.perf_counter() - start
    record = network.training_record_
    return (
        program,
        network.get_weights(),
        (
            record.epochs_run,
            record.best_epoch,
            record.best_validation_loss,
            record.final_training_loss,
        ),
        fit_seconds,
    )


class TrainingPool:
    """Per-program predictors trained offline over a shared dataset.

    Args:
        dataset: Simulated (program x configuration) metric data.
        metric: Target metric of every model in the pool.
        training_size: T — simulations per training program (the paper
            settles on 512).
        seed: Base seed; each program derives its own training split and
            network initialisation from it deterministically.
        hidden_neurons: ANN hidden width (the paper uses 10).
        n_jobs: Worker processes for bulk training (:meth:`train_all`
            and :meth:`models`); 1 trains serially in-process, -1 uses
            one worker per CPU.  The trained weights are identical for
            every worker count.
    """

    def __init__(
        self,
        dataset: DesignSpaceDataset,
        metric: Metric,
        training_size: int = 512,
        seed: int = 0,
        hidden_neurons: int = 10,
        n_jobs: Optional[int] = None,
    ) -> None:
        if training_size < 2:
            raise ValueError("training_size must be at least 2")
        if training_size > len(dataset):
            raise ValueError(
                f"training_size {training_size} exceeds the dataset's "
                f"{len(dataset)} configurations"
            )
        self.dataset = dataset
        self.metric = metric
        self.training_size = training_size
        self.seed = seed
        self.hidden_neurons = hidden_neurons
        self.n_jobs = resolve_jobs(n_jobs)
        self._models: Dict[str, ProgramSpecificPredictor] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def model(self, program: str) -> ProgramSpecificPredictor:
        """The trained model for one program (trained on first use)."""
        if program not in self._models:
            self._models[program] = self._train(program)
        return self._models[program]

    def _prepare(
        self, program: str
    ) -> Tuple[ProgramSpecificPredictor, np.ndarray, np.ndarray]:
        """Untrained predictor plus its encoded training arrays.

        One code path prepares the arrays for both the serial and the
        parallel fit, which is what makes them bit-identical.
        """
        split_seed = stable_seed(
            "pool-split", program, str(self.seed), str(self.training_size)
        )
        train_idx, _ = self.dataset.split_indices(
            self.training_size, seed=split_seed
        )
        configs = self.dataset.subset_configs(train_idx)
        values = self.dataset.subset_values(program, self.metric, train_idx)
        predictor = ProgramSpecificPredictor(
            space=self.dataset.simulator.space,
            metric=self.metric,
            program=program,
            hidden_neurons=self.hidden_neurons,
            seed=stable_seed("pool-net", program, str(self.seed)),
        )
        features, targets = predictor.training_arrays(configs, values)
        return predictor, features, targets

    def _train(self, program: str) -> ProgramSpecificPredictor:
        predictor, features, targets = self._prepare(program)
        with span(
            "train.fit", program=program, samples=int(features.shape[0])
        ) as fit_span:
            fitted = predictor.fit_prepared(features, targets)
        registry = get_registry()
        registry.counter("train.models").inc()
        if fit_span is not None:
            registry.histogram("train.fit.seconds").observe(fit_span["dur"])
            _log.debug(
                "trained model for %s in %.3fs", program, fit_span["dur"],
                extra={"event": "train.fit", "program": program,
                       "seconds": fit_span["dur"]},
            )
        return fitted

    def _train_many(self, programs: Sequence[str], n_jobs: int) -> None:
        """Train the given programs, fanning out when ``n_jobs > 1``."""
        missing = [name for name in programs if name not in self._models]
        if not missing:
            return
        if n_jobs == 1 or len(missing) == 1:
            for name in missing:
                self._models[name] = self._train(name)
            return
        prepared = {name: self._prepare(name) for name in missing}
        tasks = [
            (
                name,
                features,
                targets,
                self.hidden_neurons,
                stable_seed("pool-net", name, str(self.seed)),
            )
            for name, (_, features, targets) in prepared.items()
        ]
        registry = get_registry()
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            for name, weights, record, fit_seconds in pool.map(
                _fit_network_worker, tasks
            ):
                predictor = prepared[name][0]
                predictor.adopt_network_weights(
                    weights,
                    training_size=prepared[name][1].shape[0],
                    training_record=MLPTrainingRecord(*record),
                )
                self._models[name] = predictor
                registry.counter("train.models").inc()
                registry.histogram("train.fit.seconds").observe(fit_seconds)
                get_tracer().record(
                    "train.fit", fit_seconds, program=name, worker=True,
                    samples=int(prepared[name][1].shape[0]),
                )

    def train_all(self, n_jobs: Optional[int] = None) -> "TrainingPool":
        """Eagerly train every program's model (otherwise lazy).

        Args:
            n_jobs: Override the pool's worker count for this call
                (``None`` keeps the constructor's setting).
        """
        jobs = self.n_jobs if n_jobs is None else resolve_jobs(n_jobs)
        self._train_many(list(self.dataset.programs), jobs)
        return self

    # ------------------------------------------------------------------
    # Serving folds
    # ------------------------------------------------------------------
    def models(
        self,
        include: Optional[Sequence[str]] = None,
        exclude: Optional[Sequence[str]] = None,
    ) -> List[ProgramSpecificPredictor]:
        """Trained models for a fold.

        Args:
            include: Programs to include (defaults to the whole suite).
            exclude: Programs to drop (e.g. the left-out test program).
        """
        names = list(include) if include is not None else list(self.dataset.programs)
        dropped = set(exclude or ())
        unknown = (set(names) | dropped) - set(self.dataset.programs)
        if unknown:
            raise KeyError(f"programs not in the dataset: {sorted(unknown)}")
        wanted = [name for name in names if name not in dropped]
        self._train_many(wanted, self.n_jobs)
        return [self._models[name] for name in wanted]
