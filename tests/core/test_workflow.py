"""Tests for the one-call exploration workflow."""

import numpy as np
import pytest

from repro.core import explore_new_program
from repro.runtime import (
    FaultInjectingBackend,
    IntervalBackend,
    RetryPolicy,
    SimulationError,
    VirtualClock,
)
from repro.sim import Metric


@pytest.fixture(scope="module")
def report(cycles_pool, small_dataset, small_suite):
    models = cycles_pool.models(exclude=["applu"])
    return explore_new_program(
        models,
        small_suite["applu"],
        simulator=small_dataset.simulator,
        responses=32,
        sweet_spot_candidates=800,
        sweet_spots=4,
        seed=5,
    )


class TestExploreNewProgram:
    def test_report_fields(self, report):
        assert report.program == "applu"
        assert report.metric is Metric.CYCLES
        assert report.simulations_spent == 32
        assert len(report.responses) == 32
        assert report.verdict in ("trusted", "usable", "suspect")

    def test_predictor_is_reusable(self, report, space):
        assert report.predictor.predict_one(space.baseline) > 0

    def test_sweet_spots_sorted(self, report):
        values = [value for _, value in report.sweet_spots]
        assert values == sorted(values)
        assert len(report.sweet_spots) == 4

    def test_verified_shortlist_beats_the_baseline(self, report,
                                                   small_dataset,
                                                   small_suite, space):
        """The top-1 prediction suffers the winner's curse (the argmin
        of a noisy predictor is optimistic), which is why the report
        returns a short-list: its best *verified* member must beat the
        baseline machine."""
        baseline = small_dataset.simulator.simulate(
            small_suite["applu"], space.baseline
        ).cycles
        verified = [
            small_dataset.simulator.simulate(
                small_suite["applu"], config
            ).cycles
            for config, _ in report.sweet_spots
        ]
        assert min(verified) < baseline

    def test_similar_program_is_trusted(self, report):
        assert report.trustworthy

    def test_scan_can_be_disabled(self, cycles_pool, small_dataset,
                                  small_suite):
        models = cycles_pool.models(exclude=["applu"])
        report = explore_new_program(
            models, small_suite["applu"],
            simulator=small_dataset.simulator,
            responses=16, sweet_spot_candidates=0,
        )
        assert report.sweet_spots == ()

    def test_too_few_responses_rejected(self, cycles_pool, small_suite,
                                        small_dataset):
        models = cycles_pool.models(exclude=["applu"])
        with pytest.raises(ValueError):
            explore_new_program(
                models, small_suite["applu"],
                simulator=small_dataset.simulator, responses=1,
            )

    def test_outlier_flagged(self, cycles_pool, small_dataset, small_suite):
        """art (trained-out) should draw a worse verdict than applu."""
        models = cycles_pool.models(exclude=["art"])
        art_report = explore_new_program(
            models, small_suite["art"],
            simulator=small_dataset.simulator, responses=32, seed=5,
            sweet_spot_candidates=0,
        )
        assert art_report.training_error > 0

    def test_clean_run_is_not_degraded(self, report):
        assert not report.degraded
        assert report.failed_responses == 0


class TestDegradedExploration:
    """Permanent backend failures degrade the report instead of raising."""

    def _explore(self, cycles_pool, small_dataset, small_suite, **faults):
        models = cycles_pool.models(exclude=["applu"])
        clock = VirtualClock()
        backend = FaultInjectingBackend(
            IntervalBackend(small_dataset.simulator),
            sleep=clock.sleep, **faults,
        )
        return explore_new_program(
            models, small_suite["applu"],
            responses=32, sweet_spot_candidates=200, seed=5,
            backend=backend,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1),
            sleep=clock.sleep, clock=clock,
        )

    def test_transient_faults_leave_report_clean(self, cycles_pool,
                                                 small_dataset, small_suite):
        """Retries absorb transients: same report as a fault-free run."""
        clean = self._explore(cycles_pool, small_dataset, small_suite,
                              seed=3)
        faulted = self._explore(cycles_pool, small_dataset, small_suite,
                                seed=3, transient_rate=0.2)
        assert not faulted.degraded
        assert faulted.verdict == clean.verdict
        assert faulted.training_error == pytest.approx(clean.training_error)
        assert faulted.responses == clean.responses

    def test_permanent_failures_degrade_instead_of_raising(self,
                                                           cycles_pool,
                                                           small_dataset,
                                                           small_suite):
        report = self._explore(cycles_pool, small_dataset, small_suite,
                               seed=4, permanent_rate=0.3)
        assert report.degraded
        assert report.failed_responses > 0
        assert report.simulations_spent + report.failed_responses == 32
        assert len(report.responses) == report.simulations_spent
        assert report.sweet_spots  # the scan still ran

    def test_degraded_verdict_is_demoted(self, cycles_pool, small_dataset,
                                         small_suite):
        clean = self._explore(cycles_pool, small_dataset, small_suite,
                              seed=4)
        degraded = self._explore(cycles_pool, small_dataset, small_suite,
                                 seed=4, permanent_rate=0.3)
        order = ("trusted", "usable", "suspect")
        assert order.index(degraded.verdict) > order.index(clean.verdict)

    def test_corrupted_responses_never_reach_the_fit(self, cycles_pool,
                                                     small_dataset,
                                                     small_suite):
        """NaN/Inf responses are retried or dropped, never fitted."""
        report = self._explore(cycles_pool, small_dataset, small_suite,
                               seed=6, corrupt_rate=0.3)
        assert np.isfinite(report.training_error)
        predictions = report.predictor.predict(list(report.responses))
        assert np.all(np.isfinite(predictions))

    def test_total_failure_raises_clearly(self, cycles_pool, small_dataset,
                                          small_suite):
        with pytest.raises(SimulationError, match="survived"):
            self._explore(cycles_pool, small_dataset, small_suite,
                          seed=0, permanent_rate=1.0)
