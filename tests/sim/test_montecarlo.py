"""Tests for the Monte Carlo statistical simulator."""

import numpy as np
import pytest

from repro.sim import IntervalSimulator, MonteCarloSimulator
from repro.sim.montecarlo import noisy_responses
from repro.workloads import spec2000_profile


@pytest.fixture(scope="module")
def mc(space):
    return MonteCarloSimulator(space, window_instructions=1500,
                               replications=6)


class TestEstimates:
    def test_positive_and_finite(self, mc, space):
        result = mc.simulate(spec2000_profile("gzip"), space.baseline,
                             seed=1)
        assert np.isfinite(result.cycles) and result.cycles > 0
        assert np.isfinite(result.energy) and result.energy > 0
        assert result.cycles_std >= 0

    def test_deterministic_given_seed(self, mc, space):
        profile = spec2000_profile("gzip")
        a = mc.simulate(profile, space.baseline, seed=3)
        b = mc.simulate(profile, space.baseline, seed=3)
        assert a.cycles == b.cycles

    def test_seeds_produce_sampling_noise(self, mc, space):
        profile = spec2000_profile("gzip")
        a = mc.simulate(profile, space.baseline, seed=1)
        b = mc.simulate(profile, space.baseline, seed=2)
        assert a.cycles != b.cycles
        # ...but within a plausible sampling band.
        assert abs(a.cycles - b.cycles) / a.cycles < 0.5

    def test_relative_noise_reported(self, mc, space):
        result = mc.simulate(spec2000_profile("gzip"), space.baseline,
                             seed=4)
        assert 0.0 <= result.relative_noise < 0.5

    def test_more_replications_less_noise(self, space):
        profile = spec2000_profile("gzip")
        few = MonteCarloSimulator(space, replications=2,
                                  window_instructions=1000)
        many = MonteCarloSimulator(space, replications=24,
                                   window_instructions=1000)
        spread_few = np.std(
            [few.simulate(profile, space.baseline, seed=s).cycles
             for s in range(8)]
        )
        spread_many = np.std(
            [many.simulate(profile, space.baseline, seed=s).cycles
             for s in range(8)]
        )
        assert spread_many < spread_few

    def test_illegal_config_rejected(self, mc, space):
        bad = space.baseline.replace(rob_size=32, iq_size=80)
        with pytest.raises(ValueError):
            mc.simulate(spec2000_profile("gzip"), bad)

    def test_invalid_construction(self, space):
        with pytest.raises(ValueError):
            MonteCarloSimulator(space, window_instructions=5)
        with pytest.raises(ValueError):
            MonteCarloSimulator(space, replications=0)


class TestQualitativeAgreement:
    def test_rf_cliff_visible(self, mc, space):
        profile = spec2000_profile("gzip")
        base = mc.simulate(profile, space.baseline, seed=5).cycles
        starved = mc.simulate(
            profile, space.baseline.replace(rf_size=40), seed=5
        ).cycles
        assert starved > 1.2 * base

    def test_memory_bound_program_slower(self, mc, space):
        gzip = mc.simulate(spec2000_profile("gzip"), space.baseline,
                           seed=6).cycles
        art = mc.simulate(spec2000_profile("art"), space.baseline,
                          seed=6).cycles
        assert art > gzip

    def test_rank_agreement_with_interval_model(self, mc, space, configs):
        profile = spec2000_profile("swim")
        subset = list(configs[:12])
        interval = IntervalSimulator(space).simulate_batch(profile, subset)
        estimates = np.array(
            [mc.simulate(profile, c, seed=7).cycles for c in subset]
        )
        ranks = lambda a: np.argsort(np.argsort(a))
        rho = np.corrcoef(ranks(estimates), ranks(interval.cycles))[0, 1]
        assert rho > 0.5


class TestNoisyResponses:
    def test_shape_and_determinism(self, mc, space, configs):
        profile = spec2000_profile("gzip")
        subset = list(configs[:6])
        a = noisy_responses(mc, profile, subset, seed=9)
        b = noisy_responses(mc, profile, subset, seed=9)
        assert a.shape == (6,)
        assert np.allclose(a, b)
        assert np.all(a > 0)
