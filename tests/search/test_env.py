"""DesignSpaceEnv: budget accounting, validation, bit-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.designspace import sample_configurations
from repro.search import DesignSpaceEnv, PredictorOracle, SimulationOracle
from repro.sim import Metric


@pytest.fixture()
def env(space, search_predictors):
    return DesignSpaceEnv(
        space,
        PredictorOracle(search_predictors),
        objectives=(Metric.CYCLES, Metric.ENERGY),
        budget=64,
    )


class TestPredictorOracle:
    def test_metrics_include_composed(self, search_predictors):
        oracle = PredictorOracle(search_predictors)
        assert set(oracle.metrics) == {
            Metric.CYCLES, Metric.ENERGY, Metric.ED, Metric.EDD,
        }

    def test_cycles_only_has_no_composed(self, cycles_predictor):
        oracle = PredictorOracle({Metric.CYCLES: cycles_predictor})
        assert oracle.metrics == (Metric.CYCLES,)

    def test_bit_identical_to_direct_predict(
        self, space, search_predictors
    ):
        oracle = PredictorOracle(search_predictors)
        configs = sample_configurations(space, 40, seed=3)
        values = oracle.evaluate(configs)
        for metric in (Metric.CYCLES, Metric.ENERGY):
            direct = search_predictors[metric].predict(configs)
            np.testing.assert_array_equal(values[metric], direct)

    def test_composition_matches_definition(self, space, search_predictors):
        oracle = PredictorOracle(search_predictors)
        configs = sample_configurations(space, 10, seed=4)
        values = oracle.evaluate(configs)
        np.testing.assert_array_equal(
            values[Metric.ED], values[Metric.ENERGY] * values[Metric.CYCLES]
        )
        # The canonical composition order (MultiMetricPredictor):
        # energy * cycles * cycles, asserted bit-for-bit.
        np.testing.assert_array_equal(
            values[Metric.EDD],
            values[Metric.ENERGY] * values[Metric.CYCLES]
            * values[Metric.CYCLES],
        )

    def test_rejects_empty_and_bad_entries(self):
        with pytest.raises(ValueError, match="at least one"):
            PredictorOracle({})
        with pytest.raises(ValueError, match="predict"):
            PredictorOracle({Metric.CYCLES: object()})


class TestSimulationOracle:
    def test_matches_simulator(self, space, simulator, small_suite):
        profile = small_suite["gzip"]
        oracle = SimulationOracle(simulator, profile)
        configs = sample_configurations(space, 5, seed=8)
        values = oracle.evaluate(configs)
        batch = simulator.simulate_batch(profile, configs)
        for metric in Metric.all():
            np.testing.assert_array_equal(
                values[metric], batch.metric(metric)
            )


class TestEnvContract:
    def test_reset_evaluates_baseline(self, env, space):
        observation = env.reset()
        assert observation.configuration == space.baseline
        assert env.spent == 1
        assert len(env.archive) == 1

    def test_step_batch_bit_identical_to_predictor(
        self, env, space, search_predictors
    ):
        env.reset()
        configs = sample_configurations(space, 16, seed=5)
        observations, done, info = env.step_batch(configs)
        assert not done
        assert info["spent"] == 17
        cycles = search_predictors[Metric.CYCLES].predict(configs)
        energy = search_predictors[Metric.ENERGY].predict(configs)
        for i, observation in enumerate(observations):
            assert observation.objectives[0] == cycles[i]
            assert observation.objectives[1] == energy[i]
            assert observation.metrics[Metric.CYCLES] == cycles[i]
            assert observation.metrics[Metric.ED] == (
                energy[i] * cycles[i]
            )

    def test_step_equals_batch_of_one(self, space, search_predictors):
        oracle = PredictorOracle(search_predictors)
        config = sample_configurations(space, 1, seed=6)[0]
        env_a = DesignSpaceEnv(space, oracle, budget=8)
        env_a.reset()
        obs_a, _, _ = env_a.step(config)
        env_b = DesignSpaceEnv(space, oracle, budget=8)
        env_b.reset()
        (obs_b,), _, _ = env_b.step_batch([config])
        assert obs_a == obs_b

    def test_budget_exhaustion(self, space, search_predictors):
        env = DesignSpaceEnv(
            space, PredictorOracle(search_predictors), budget=3
        )
        env.reset()
        configs = sample_configurations(space, 2, seed=7)
        _, done, _ = env.step_batch(configs)
        assert done and env.done and env.remaining == 0
        with pytest.raises(RuntimeError, match="exhausted"):
            env.step_batch(configs[:1])

    def test_over_budget_batch_rejected(self, space, search_predictors):
        env = DesignSpaceEnv(
            space, PredictorOracle(search_predictors), budget=4
        )
        env.reset()
        configs = sample_configurations(space, 5, seed=9)
        with pytest.raises(ValueError, match="exceeds the remaining"):
            env.step_batch(configs)
        assert env.spent == 1  # the rejected batch charged nothing

    def test_empty_batch_rejected(self, env):
        env.reset()
        with pytest.raises(ValueError, match="at least one"):
            env.step_batch([])

    def test_illegal_configuration_rejected(self, env, space):
        env.reset()
        illegal = space.baseline.replace(rob_size=32, iq_size=80)
        with pytest.raises(ValueError):
            env.step(illegal)

    def test_unknown_objective_rejected(self, space, cycles_predictor):
        with pytest.raises(ValueError, match="cannot evaluate"):
            DesignSpaceEnv(
                space,
                PredictorOracle({Metric.CYCLES: cycles_predictor}),
                objectives=(Metric.ENERGY,),
            )

    def test_duplicate_objectives_rejected(self, space, search_predictors):
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpaceEnv(
                space,
                PredictorOracle(search_predictors),
                objectives=(Metric.CYCLES, Metric.CYCLES),
            )

    def test_observed_bounds(self, env, space):
        with pytest.raises(RuntimeError, match="reset"):
            env.observed_bounds()
        env.reset()
        configs = sample_configurations(space, 8, seed=10)
        observations, _, _ = env.step_batch(configs)
        lo, hi = env.observed_bounds()
        matrix = np.asarray(
            [o.objectives for o in observations]
        )
        assert (lo <= matrix.min(axis=0)).all()
        assert (hi >= matrix.max(axis=0)).all()

    def test_reset_clears_state(self, env, space):
        env.reset()
        env.step_batch(sample_configurations(space, 4, seed=11))
        env.reset()
        assert env.spent == 1
        assert len(env.archive) == 1
