"""Active-learning response selection strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.active import select_responses
from repro.search import (
    RESPONSE_STRATEGIES,
    ensemble_disagreement,
    pick_response_indices,
)


@pytest.fixture(scope="module")
def models(cycles_pool):
    return cycles_pool.models(exclude=["gzip"])


@pytest.fixture(scope="module")
def candidates(small_dataset):
    return small_dataset.configs[:200]


class TestEnsembleDisagreement:
    def test_shape_and_positivity(self, models, candidates):
        scores = ensemble_disagreement(models, candidates)
        assert scores.shape == (len(candidates),)
        assert (scores >= 0).all()

    def test_matches_per_model_loop(self, models, candidates):
        fast = ensemble_disagreement(models, candidates)
        slow = np.stack(
            [np.log10(m.predict(candidates)) for m in models]
        ).std(axis=0)
        np.testing.assert_array_equal(fast, slow)


class TestPickResponseIndices:
    @pytest.mark.parametrize("strategy", RESPONSE_STRATEGIES)
    def test_returns_distinct_valid_indices(
        self, models, candidates, strategy
    ):
        picks = pick_response_indices(
            models, candidates, 16, strategy=strategy, seed=5
        )
        assert len(picks) == 16
        assert len(set(picks)) == 16
        assert all(0 <= i < len(candidates) for i in picks)

    @pytest.mark.parametrize("strategy", RESPONSE_STRATEGIES)
    def test_deterministic_for_seed(self, models, candidates, strategy):
        first = pick_response_indices(
            models, candidates, 12, strategy=strategy, seed=9
        )
        second = pick_response_indices(
            models, candidates, 12, strategy=strategy, seed=9
        )
        assert first == second

    def test_disagreement_equals_core_selector(self, models, candidates):
        ours = pick_response_indices(
            models, candidates, 8, strategy="disagreement", seed=2
        )
        core = select_responses(models, candidates, 8, seed=2)
        assert ours == core

    def test_hybrid_spends_half_randomly(self, models, candidates):
        picks = pick_response_indices(
            models, candidates, 10, strategy="hybrid", seed=4
        )
        assert len(set(picks)) == 10

    def test_unknown_strategy(self, models, candidates):
        with pytest.raises(ValueError, match="unknown strategy"):
            pick_response_indices(
                models, candidates, 4, strategy="oracle"
            )

    def test_count_bounds(self, models, candidates):
        with pytest.raises(ValueError, match="count"):
            pick_response_indices(models, candidates, 0)
        with pytest.raises(ValueError, match="count"):
            pick_response_indices(
                models, candidates, len(candidates) + 1
            )
