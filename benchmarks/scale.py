"""Scale settings shared by the benchmark harnesses.

Reduced defaults (the paper: 3,000 samples, T=512, R=32, 20 repeats) so
the whole harness finishes in minutes; raise them for a paper-scale run
or shrink them further via the ``REPRO_*`` environment variables (the
CI smoke run uses those to finish in seconds).
"""

import os

from repro.parallel import resolve_jobs

SAMPLE_SIZE = int(os.environ.get("REPRO_SAMPLE_SIZE", 1500))
TRAINING_SIZE = int(os.environ.get("REPRO_TRAINING_SIZE", 512))
RESPONSES = int(os.environ.get("REPRO_RESPONSES", 32))
REPEATS = int(os.environ.get("REPRO_REPEATS", 1))
#: Worker processes for the throughput bench's parallel-training leg
#: (``REPRO_JOBS`` wins, via the same resolver every other layer uses).
JOBS = resolve_jobs(None, default=4)
