"""Design-space analyses of Sections 3.4 and 4 of the paper.

Public surface:

* :func:`extreme_frequencies` — best/worst 1 % parameter values (Figs. 2-3).
* :func:`suite_statistics` — per-program space summaries (Fig. 4).
* :func:`distance_matrix` / :func:`average_linkage` — program similarity
  and hierarchical clustering (Fig. 5).
"""

from .clustering import (
    DendrogramNode,
    average_linkage,
    cut_tree,
    merge_height_of,
    render_dendrogram,
)
from .extremes import ExtremeFrequencies, dominant_values, extreme_frequencies
from .reports import suite_report
from .residuals import (
    ResidualProfile,
    error_hotspots,
    residual_profile,
    residuals_by_parameter,
    worst_regions,
)
from .sensitivity import (
    main_effects,
    parameter_correlations,
    ranked_sensitivities,
    suite_main_effects,
)
from .similarity import (
    distance_matrix,
    nearest_neighbours,
    normalised_behaviour_matrix,
    outlier_scores,
)
from .space_stats import SpaceStatistics, program_statistics, suite_statistics
from .transfer import (
    nearest_pool_programs,
    response_space_distances,
    transferability_score,
)

__all__ = [
    "DendrogramNode",
    "ExtremeFrequencies",
    "ResidualProfile",
    "SpaceStatistics",
    "average_linkage",
    "cut_tree",
    "distance_matrix",
    "dominant_values",
    "error_hotspots",
    "extreme_frequencies",
    "main_effects",
    "merge_height_of",
    "nearest_neighbours",
    "nearest_pool_programs",
    "normalised_behaviour_matrix",
    "outlier_scores",
    "parameter_correlations",
    "program_statistics",
    "ranked_sensitivities",
    "residual_profile",
    "residuals_by_parameter",
    "response_space_distances",
    "suite_main_effects",
    "suite_report",
    "render_dendrogram",
    "suite_statistics",
    "transferability_score",
    "worst_regions",
]
