"""Calibrating the budget planner's accuracy surrogate from data.

:mod:`repro.exploration.budget` ranks (T, N, R) splits with a
closed-form surrogate ``rmae ~ base + a/sqrt(T) + b/N + c/R^0.7`` whose
default coefficients were tuned by hand against this repository's
sweeps.  This module fits those coefficients *empirically*: run a small
designed measurement (a handful of leave-one-out evaluations across a
grid of operating points) and solve the resulting linear system — the
surrogate is linear in its coefficients, so the fit is one least
squares call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.crossval import evaluate_on_program
from repro.core.training import TrainingPool
from repro.ml.linear import LinearRegressor
from repro.sim.metrics import Metric
from repro.workloads.profile import stable_seed

from .dataset import DesignSpaceDataset


@dataclass(frozen=True)
class AccuracyModel:
    """Fitted coefficients of the budget surrogate."""

    base: float
    training_coefficient: float
    pool_coefficient: float
    response_coefficient: float
    residual_rmse: float
    measurements: int

    def expected_rmae(
        self, training_size: int, pool_size: int, responses: int
    ) -> float:
        """Predicted leave-one-out rmae (%) at an operating point."""
        if training_size < 2 or pool_size < 1 or responses < 2:
            raise ValueError("T >= 2, N >= 1 and R >= 2 are required")
        return float(
            self.base
            + self.training_coefficient / np.sqrt(training_size)
            + self.pool_coefficient / pool_size
            + self.response_coefficient / responses**0.7
        )


def _surrogate_features(points: Sequence[Tuple[int, int, int]]) -> np.ndarray:
    return np.array(
        [
            [1.0 / np.sqrt(t), 1.0 / n, 1.0 / r**0.7]
            for t, n, r in points
        ]
    )


def measure_operating_points(
    dataset: DesignSpaceDataset,
    metric: Metric,
    points: Sequence[Tuple[int, int, int]],
    programs: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[float]:
    """Measured mean rmae at each (T, N, R) operating point.

    Pools are retrained per training size (models depend on T); the
    ``N`` training programs are drawn at random per point.
    """
    targets = list(programs) if programs is not None else list(dataset.programs)
    measured = []
    pools = {}
    all_programs = list(dataset.programs)
    for training_size, pool_size, responses in points:
        if pool_size >= len(all_programs):
            raise ValueError(
                "pool_size must leave at least one program to predict"
            )
        if training_size not in pools:
            pools[training_size] = TrainingPool(
                dataset, metric, training_size=training_size,
                seed=stable_seed("calib-pool", str(training_size), str(seed)),
            )
        pool = pools[training_size]
        rng = np.random.default_rng(
            stable_seed("calib-pick", str(pool_size), str(seed))
        )
        chosen = list(rng.choice(all_programs, size=pool_size, replace=False))
        errors = []
        for program in targets:
            if program in chosen:
                continue
            score = evaluate_on_program(
                pool.models(include=chosen), dataset, program,
                responses=responses,
                seed=stable_seed("calib-resp", program, str(responses),
                                 str(seed)),
            )
            errors.append(score.rmae)
        if not errors:
            raise ValueError(
                f"operating point (T={training_size}, N={pool_size}) left "
                "no evaluation programs"
            )
        measured.append(float(np.mean(errors)))
    return measured


def fit_accuracy_model(
    dataset: DesignSpaceDataset,
    metric: Metric = Metric.CYCLES,
    points: Sequence[Tuple[int, int, int]] = (
        (64, 5, 8), (64, 15, 32), (256, 5, 32), (256, 15, 8),
        (512, 10, 16), (512, 20, 64),
    ),
    programs: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> AccuracyModel:
    """Fit the surrogate's coefficients from measured operating points.

    Args:
        dataset: Simulated dataset to measure on.
        metric: Target metric of the surrogate.
        points: (T, N, R) operating points; the default six span the
            surrogate's three axes.
        programs: Evaluation programs (default: all of the suite).
        seed: Measurement seed.
    """
    if len(points) < 4:
        raise ValueError(
            "at least four operating points are needed to fit four "
            "coefficients"
        )
    measured = measure_operating_points(
        dataset, metric, points, programs=programs, seed=seed
    )
    features = _surrogate_features(points)
    fit = LinearRegressor(fit_intercept=True, ridge=0.0).fit(
        features, np.array(measured)
    )
    predictions = fit.predict(features)
    residual = float(
        np.sqrt(np.mean((predictions - np.array(measured)) ** 2))
    )
    return AccuracyModel(
        base=float(fit.intercept_),
        training_coefficient=float(fit.coefficients[0]),
        pool_coefficient=float(fit.coefficients[1]),
        response_coefficient=float(fit.coefficients[2]),
        residual_rmse=residual,
        measurements=len(points),
    )
