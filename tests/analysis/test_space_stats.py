"""Tests for per-program design-space statistics (Fig. 4)."""

import pytest

from repro.analysis import program_statistics, suite_statistics
from repro.sim import Metric


class TestProgramStatistics:
    def test_five_numbers_ordered(self, small_dataset):
        stats = program_statistics(small_dataset, "gzip", Metric.CYCLES)
        assert (
            stats.minimum
            <= stats.quartile25
            <= stats.median
            <= stats.quartile75
            <= stats.maximum
        )

    def test_baseline_inside_the_space(self, small_dataset):
        stats = program_statistics(small_dataset, "gzip", Metric.CYCLES)
        assert stats.minimum * 0.5 < stats.baseline < stats.maximum * 2.0

    def test_spread(self, small_dataset):
        stats = program_statistics(small_dataset, "art", Metric.CYCLES)
        assert stats.spread == pytest.approx(stats.maximum / stats.minimum)
        assert stats.spread > 1.0

    def test_art_varies_more_than_mesa(self, small_dataset):
        """Fig. 4: art varies enormously, cache-friendly codes less."""
        art = program_statistics(small_dataset, "art", Metric.CYCLES)
        mesa = program_statistics(small_dataset, "mesa", Metric.CYCLES)
        assert art.spread > mesa.spread


class TestSuiteStatistics:
    def test_covers_all_programs(self, small_dataset):
        stats = suite_statistics(small_dataset, Metric.ENERGY)
        assert set(stats) == set(small_dataset.programs)

    def test_each_entry_tagged(self, small_dataset):
        stats = suite_statistics(small_dataset, Metric.ENERGY)
        for name, entry in stats.items():
            assert entry.program == name
            assert entry.metric is Metric.ENERGY
