"""Functional set-associative cache hierarchy with LRU replacement.

Used by the detailed pipeline simulator: every instruction fetch and
data access walks a real tag array, so miss behaviour emerges from the
actual address stream rather than from an analytic locality model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class CacheStats:
    """Access/miss counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 when the cache was never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """One level of a cache hierarchy (LRU, allocate-on-miss).

    Args:
        name: Level name for reporting (``"L1D"``).
        capacity_bytes: Total capacity.
        line_bytes: Line size (power of two).
        associativity: Ways per set.
        hit_latency: Cycles for a hit in this level.
        next_level: The level behind this one; ``None`` means the miss
            goes to memory.
        memory_latency: Cycles charged when ``next_level`` is ``None``.
    """

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        line_bytes: int,
        associativity: int,
        hit_latency: int,
        next_level: Optional["SetAssociativeCache"] = None,
        memory_latency: int = 200,
    ) -> None:
        if capacity_bytes < line_bytes:
            raise ValueError(f"{name}: capacity smaller than one line")
        if line_bytes & (line_bytes - 1):
            raise ValueError(f"{name}: line size must be a power of two")
        if associativity < 1:
            raise ValueError(f"{name}: associativity must be at least 1")
        lines = capacity_bytes // line_bytes
        self.sets = max(1, lines // associativity)
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = min(associativity, lines)
        self.hit_latency = hit_latency
        self.next_level = next_level
        self.memory_latency = memory_latency
        self.stats = CacheStats()
        # Per-set LRU stacks of tags, most recent last.
        self._ways: List[List[int]] = [[] for _ in range(self.sets)]

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.sets, line // self.sets

    def lookup(self, address: int) -> bool:
        """Probe without updating recency or counters (for tests)."""
        line = address // self.line_bytes
        return line // self.sets in self._ways[line % self.sets]

    def access(self, address: int) -> int:
        """Access an address; returns total latency including lower levels.

        Misses allocate in this level and recurse into the next level
        (or memory), modelling an inclusive hierarchy.
        """
        if address < 0:
            raise ValueError("addresses must be non-negative")
        # _locate() inlined: this is the hottest call in the simulator.
        line = address // self.line_bytes
        index = line % self.sets
        tag = line // self.sets
        ways = self._ways[index]
        stats = self.stats
        stats.accesses += 1
        if tag in ways:
            if ways[-1] != tag:  # already MRU: skip the reshuffle
                ways.remove(tag)
                ways.append(tag)
            return self.hit_latency
        stats.misses += 1
        ways.append(tag)
        if len(ways) > self.associativity:
            ways.pop(0)
        if self.next_level is not None:
            return self.hit_latency + self.next_level.access(address)
        return self.hit_latency + self.memory_latency

    def reset_stats(self) -> None:
        """Clear counters (contents are kept, e.g. after warmup)."""
        self.stats = CacheStats()


def build_hierarchy(
    icache_kb: int,
    dcache_kb: int,
    l2cache_kb: int,
    l1_line_bytes: int = 32,
    l2_line_bytes: int = 64,
    l1_associativity: int = 2,
    l2_associativity: int = 8,
    l1_latency: int = 2,
    l2_latency: int = 12,
    memory_latency: int = 200,
) -> Dict[str, SetAssociativeCache]:
    """Build the paper's two-level hierarchy: split L1s over a shared L2."""
    l2 = SetAssociativeCache(
        "L2",
        l2cache_kb * 1024,
        l2_line_bytes,
        l2_associativity,
        l2_latency,
        next_level=None,
        memory_latency=memory_latency,
    )
    l1i = SetAssociativeCache(
        "L1I", icache_kb * 1024, l1_line_bytes, l1_associativity,
        l1_latency, next_level=l2,
    )
    l1d = SetAssociativeCache(
        "L1D", dcache_kb * 1024, l1_line_bytes, l1_associativity,
        l1_latency, next_level=l2,
    )
    return {"l1i": l1i, "l1d": l1d, "l2": l2}
