"""Least-squares linear regression (the architecture-centric combiner).

Section 5.3.1 of the paper: the architecture-centric model combines the
outputs of the per-program predictors with a linear regressor whose
weights minimise the squared error against the responses, i.e. the
normal-equation solution ``beta = (X X^T)^-1 X^T y`` (the paper's eq. 5).
We solve the same problem through ``numpy.linalg.lstsq`` (SVD-based, so
rank-deficient systems — e.g. more training programs than responses —
still yield the minimum-norm solution), with an optional ridge penalty.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearRegressor:
    """Ordinary least squares with optional intercept and ridge penalty.

    Args:
        fit_intercept: Learn the ``beta_0`` offset term.
        ridge: L2 penalty strength; 0 gives plain least squares.
    """

    def __init__(self, fit_intercept: bool = True, ridge: float = 0.0) -> None:
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.fit_intercept = fit_intercept
        self.ridge = ridge
        self.weights_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegressor":
        """Fit weights minimising the (optionally ridge-penalised) squared
        error."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float).reshape(-1)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")

        design = features
        if self.fit_intercept:
            design = np.hstack(
                [np.ones((features.shape[0], 1)), features]
            )

        if self.ridge > 0.0:
            # Augment with sqrt(ridge) * I rows (the intercept is not
            # penalised), turning ridge into an ordinary lstsq problem.
            columns = design.shape[1]
            penalty = np.sqrt(self.ridge) * np.eye(columns)
            if self.fit_intercept:
                penalty[0, 0] = 0.0
            design = np.vstack([design, penalty])
            targets = np.concatenate([targets, np.zeros(columns)])

        solution, _, _, _ = np.linalg.lstsq(design, targets, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.weights_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.weights_ = solution
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for raw feature vectors."""
        if self.weights_ is None:
            raise RuntimeError("the regressor has not been fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return features @ self.weights_ + self.intercept_

    def predict_invariant(self, features: np.ndarray) -> np.ndarray:
        """Batch-composition-invariant predictions.

        ``features @ weights`` routes through BLAS, whose summation
        order can shift with the batch shape (a single row and the same
        row inside a larger matrix may differ in the last ulp).  This
        variant contracts with a last-axis ``np.add.reduce``, whose
        pairwise order is fixed by the feature count alone, so each
        row's prediction is a pure function of that row — the property
        the serving layer's per-configuration cache depends on.
        """
        if self.weights_ is None:
            raise RuntimeError("the regressor has not been fitted")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return (
            np.add.reduce(features * self.weights_, axis=1) + self.intercept_
        )

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted weights (excluding the intercept)."""
        if self.weights_ is None:
            raise RuntimeError("the regressor has not been fitted")
        return self.weights_


def normal_equation_weights(features: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Textbook normal-equation solution (the paper's eq. 5).

    Provided for exposition and as a cross-check oracle in the tests;
    :class:`LinearRegressor` is the production path.  The matrix must be
    full column rank.
    """
    x = np.atleast_2d(np.asarray(features, dtype=float))
    y = np.asarray(targets, dtype=float).reshape(-1)
    gram = x.T @ x
    return np.linalg.solve(gram, x.T @ y)
