"""Tests for the simulation backend interface."""

import numpy as np
import pytest

from repro.runtime import (
    CorruptResultError,
    IntervalBackend,
    SimulationBackend,
    validate_batch,
)
from repro.sim.interval import BatchResult


class TestIntervalBackend:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, SimulationBackend)

    def test_matches_raw_simulator(self, backend, simulator, tiny_suite,
                                   tiny_configs):
        profile = tiny_suite["gzip"]
        direct = simulator.simulate_batch(profile, tiny_configs)
        wrapped = backend.simulate_batch(profile, tiny_configs)
        assert np.array_equal(direct.cycles, wrapped.cycles)
        assert np.array_equal(direct.energy, wrapped.energy)

    def test_default_backend_builds_its_own_simulator(self):
        assert IntervalBackend().space is not None

    def test_exposes_space(self, backend, simulator):
        assert backend.space is simulator.space


class TestValidateBatch:
    def _batch(self, cycles):
        ones = np.ones_like(cycles)
        return BatchResult(cycles, ones, ones.copy(), ones.copy())

    def test_finite_batch_passes_through(self):
        batch = self._batch(np.array([1.0, 2.0]))
        assert validate_batch(batch) is batch

    def test_nan_rejected(self):
        with pytest.raises(CorruptResultError, match="non-finite"):
            validate_batch(self._batch(np.array([1.0, np.nan])))

    def test_inf_rejected(self):
        with pytest.raises(CorruptResultError, match="non-finite"):
            validate_batch(self._batch(np.array([np.inf, 1.0])))

    def test_context_included_in_message(self):
        with pytest.raises(CorruptResultError, match="cell gzip:3"):
            validate_batch(
                self._batch(np.array([np.nan])), "for cell gzip:3"
            )
