"""Tests for retry, backoff, timeout guard and the circuit breaker."""

import pytest

from repro.runtime import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    SimulationError,
    SimulationTimeoutError,
    VirtualClock,
    call_with_retry,
)


class _Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures, error=SimulationError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"boom {self.calls}")
        return "ok"


class TestRetryPolicy:
    def test_delay_grows_exponentially(self):
        import numpy as np

        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.delay(1, rng) == pytest.approx(1.0)
        assert policy.delay(2, rng) == pytest.approx(2.0)
        assert policy.delay(3, rng) == pytest.approx(4.0)

    def test_jitter_bounded(self):
        import numpy as np

        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        rng = np.random.default_rng(0)
        delays = [policy.delay(1, rng) for _ in range(200)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert max(delays) > min(delays)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_mode="decorrelated")

    def test_full_jitter_bounded_by_exponential_envelope(self):
        import numpy as np

        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, jitter_mode="full"
        )
        rng = np.random.default_rng(7)
        for attempt, ceiling in ((1, 1.0), (2, 2.0), (3, 4.0)):
            delays = [policy.delay(attempt, rng) for _ in range(500)]
            assert all(0.0 <= d <= ceiling for d in delays)
            # Uniform over [0, ceiling]: mean ~ ceiling/2, and the draws
            # actually use the range rather than clustering at the cap.
            assert 0.4 * ceiling < sum(delays) / len(delays) < 0.6 * ceiling
            assert min(delays) < 0.1 * ceiling
            assert max(delays) > 0.9 * ceiling

    def test_full_jitter_is_deterministic_per_seed(self):
        import numpy as np

        policy = RetryPolicy(base_delay=0.5, jitter_mode="full")
        a = [policy.delay(k, np.random.default_rng(3)) for k in (1, 2, 3)]
        b = [policy.delay(k, np.random.default_rng(3)) for k in (1, 2, 3)]
        assert a == b


class TestCallWithRetry:
    def test_transient_failure_retried(self):
        fn = _Flaky(2)
        result = call_with_retry(
            fn, RetryPolicy(max_attempts=4, base_delay=0.0)
        )
        assert result == "ok"
        assert fn.calls == 3

    def test_attempts_exhausted_raises_last_error(self):
        fn = _Flaky(10)
        with pytest.raises(SimulationError, match="boom 3"):
            call_with_retry(fn, RetryPolicy(max_attempts=3, base_delay=0.0))

    def test_non_simulation_errors_wrapped(self):
        def fn():
            raise RuntimeError("backend went away")

        with pytest.raises(SimulationError, match="backend went away"):
            call_with_retry(fn, RetryPolicy(max_attempts=2, base_delay=0.0))

    def test_backoff_is_deterministic_per_seed(self):
        sleeps_a, sleeps_b, sleeps_c = [], [], []
        for sleeps, seed in ((sleeps_a, 1), (sleeps_b, 1), (sleeps_c, 2)):
            with pytest.raises(SimulationError):
                call_with_retry(
                    _Flaky(10),
                    RetryPolicy(max_attempts=4, base_delay=0.5),
                    seed=seed,
                    sleep=sleeps.append,
                )
        assert sleeps_a == sleeps_b
        assert sleeps_a != sleeps_c
        assert len(sleeps_a) == 3  # no sleep after the final attempt

    def test_timeout_guard_discards_slow_call(self):
        clock = VirtualClock()

        def slow():
            clock.sleep(90.0)
            return "late"

        with pytest.raises(SimulationTimeoutError):
            call_with_retry(
                slow,
                RetryPolicy(max_attempts=2, base_delay=0.0, timeout=30.0),
                sleep=clock.sleep,
                clock=clock,
            )

    def test_validate_failure_counts_as_attempt(self):
        calls = []

        def fn():
            calls.append(1)
            return "tainted" if len(calls) < 3 else "clean"

        def validate(value):
            if value == "tainted":
                raise SimulationError("corrupt")
            return value

        result = call_with_retry(
            fn, RetryPolicy(max_attempts=4, base_delay=0.0),
            validate=validate,
        )
        assert result == "clean"
        assert len(calls) == 3


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.open
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.open
        assert breaker.total_failures == 3

    def test_open_breaker_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        fn = _Flaky(0)
        with pytest.raises(CircuitOpenError):
            call_with_retry(
                fn, RetryPolicy(max_attempts=3, base_delay=0.0),
                breaker=breaker,
            )
        assert fn.calls == 0  # never even attempted

    def test_breaker_updated_by_retry_loop(self):
        breaker = CircuitBreaker(failure_threshold=2)
        with pytest.raises(SimulationError):
            call_with_retry(
                _Flaky(10),
                RetryPolicy(max_attempts=5, base_delay=0.0),
                breaker=breaker,
            )
        assert breaker.open
        assert breaker.total_failures == 2  # loop stops once it trips

    def test_manual_reset_closes(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert not breaker.open
