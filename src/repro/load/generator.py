"""The open-loop load generator: scheduled arrivals, honest latency.

:func:`build_schedule` expands a :class:`~repro.load.plan.LoadPlan`
into a fully deterministic request schedule *before* anything runs:
every request's arrival offset, client slot, kind and payload is a
pure function of the plan and its seed (all random streams come from
:func:`repro.runtime.faults.derive_rng`).  :class:`LoadGenerator` then
replays that schedule against a live server — one thread per client
slot, each owning one keep-alive :class:`~repro.serve.PredictionClient`
— and *never* waits for a response before the next arrival is due:
when the server falls behind, latency measured from the scheduled
arrival time grows, exactly as a real user's would.

Outcomes are three-valued: ``ok`` (HTTP 200), ``shed`` (503 — the
server's admission control or backpressure refused the request, with
its ``request_id`` captured for correlation against the server log),
and ``error`` (anything else, including transport failures).  Every
request lands in the process metrics registry
(``load_requests{stage,kind,outcome}``, ``load_request_seconds``,
``load_service_seconds``), so ``repro slo check`` and ``--metrics-out``
work on load runs like on any other command.
"""

from __future__ import annotations

import http.client
import time
from dataclasses import dataclass, field
from threading import Thread
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.designspace import sample_configurations
from repro.designspace.space import DesignSpace
from repro.obs import get_logger, get_registry, span
from repro.runtime.faults import derive_rng
from repro.serve import PredictionClient, ServerError

from .plan import LoadPlan, LoadStage

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "ScheduledRequest",
    "StageSummary",
    "build_schedule",
]

_log = get_logger("load.generator")

#: Request-latency buckets: serving latencies live well under a second
#: when healthy and blow through it at saturation; the default
#: seconds-flavoured buckets are too coarse below 100 ms.
LATENCY_BUCKETS = (
    0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0,
)

#: Percentiles reported per stage.
_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned arrival.

    ``payload`` indexes the stage's hot or cold configuration pool for
    predict kinds, and is the search seed for ``search`` requests.
    """

    stage: str
    index: int
    offset: float
    client: int
    kind: str
    payload: int


@dataclass(frozen=True)
class StagePools:
    """The configuration pools one stage draws requests from."""

    hot: Tuple
    cold: Tuple


def build_schedule(
    plan: LoadPlan, space: Optional[DesignSpace] = None
) -> Tuple[List[ScheduledRequest], Dict[str, StagePools]]:
    """Expand a plan into its deterministic request schedule.

    Returns ``(requests, pools)`` where ``requests`` is ordered by
    absolute offset (stages run back to back) and ``pools`` maps stage
    names to their sampled configuration pools.  Two calls with the
    same plan are identical — the replay-determinism contract.
    """
    space = space if space is not None else DesignSpace()
    schedule: List[ScheduledRequest] = []
    pools: Dict[str, StagePools] = {}
    base = 0.0
    for stage in plan.stages:
        offsets = _stage_offsets(plan, stage)
        count = len(offsets)
        kinds = _stage_kinds(plan, stage, count)
        hot_picks = _stage_hot_picks(plan, stage, count)
        search_seeds = derive_rng(
            plan.seed, stage.name, "search"
        ).integers(0, 2**31 - 1, size=max(count, 1))
        pools[stage.name] = StagePools(
            hot=tuple(sample_configurations(
                space, stage.hot_configs,
                seed=derive_rng(plan.seed, stage.name, "hot-pool"),
            )),
            cold=tuple(sample_configurations(
                space, stage.cold_configs,
                seed=derive_rng(plan.seed, stage.name, "cold-pool"),
            )),
        )
        cold_cursor = 0
        for index in range(count):
            kind = kinds[index]
            if kind == "predict_hot":
                payload = int(hot_picks[index])
            elif kind == "predict_cold":
                payload = cold_cursor % stage.cold_configs
                cold_cursor += 1
            else:
                payload = int(search_seeds[index])
            schedule.append(ScheduledRequest(
                stage=stage.name,
                index=index,
                offset=base + float(offsets[index]),
                client=index % stage.clients,
                kind=kind,
                payload=payload,
            ))
        base += stage.duration
    schedule.sort(key=lambda request: (request.offset, request.stage,
                                       request.index))
    return schedule, pools


def _stage_offsets(plan: LoadPlan, stage: LoadStage) -> np.ndarray:
    from .arrivals import arrival_offsets

    return arrival_offsets(
        stage.arrival,
        stage.rate,
        stage.duration,
        rng=derive_rng(plan.seed, stage.name, "arrivals"),
        burst_factor=stage.burst_factor,
        burst_fraction=stage.burst_fraction,
        burst_period=stage.burst_period,
        ramp_from=stage.ramp_from,
    )


def _stage_kinds(
    plan: LoadPlan, stage: LoadStage, count: int
) -> List[str]:
    weights = stage.weights
    names = list(weights)
    if len(names) == 1:
        return names * count
    rng = derive_rng(plan.seed, stage.name, "mix")
    picks = rng.choice(
        len(names), size=max(count, 1),
        p=np.asarray([weights[name] for name in names]),
    )
    return [names[int(pick)] for pick in picks[:count]]


def _stage_hot_picks(
    plan: LoadPlan, stage: LoadStage, count: int
) -> np.ndarray:
    # Truncated zipf over the hot pool: p_i proportional to 1/i^s over
    # ranks 1..hot_configs (numpy's zipf sampler is unbounded, so build
    # the probability vector explicitly).
    ranks = np.arange(1, stage.hot_configs + 1, dtype=float)
    probabilities = ranks ** -stage.zipf_s
    probabilities /= probabilities.sum()
    rng = derive_rng(plan.seed, stage.name, "hot")
    return rng.choice(
        stage.hot_configs, size=max(count, 1), p=probabilities
    )


@dataclass(frozen=True)
class RequestRecord:
    """One completed request, as the load generator saw it."""

    stage: str
    kind: str
    offset: float
    latency: float       # seconds from *scheduled* arrival to response
    service: float       # seconds from send to response
    outcome: str         # "ok" | "shed" | "error"
    status: int          # HTTP status (0 on transport failure)
    request_id: Optional[str] = None
    detail: str = ""


@dataclass(frozen=True)
class StageSummary:
    """Per-stage accounting for the report."""

    name: str
    duration: float
    offered_rps: float
    scheduled: int
    ok: int
    shed: int
    errors: int
    goodput_rps: float
    latency_percentiles_ms: Dict[str, float]

    def to_payload(self) -> Dict:
        return {
            "name": self.name,
            "duration_s": self.duration,
            "offered_rps": self.offered_rps,
            "scheduled": self.scheduled,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "goodput_rps": self.goodput_rps,
            "latency_percentiles_ms": dict(self.latency_percentiles_ms),
        }


@dataclass
class LoadReport:
    """The outcome of one load run."""

    plan_seed: int
    wall_seconds: float
    records: List[RequestRecord] = field(default_factory=list)
    stages: List[StageSummary] = field(default_factory=list)

    @property
    def scheduled(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> int:
        return sum(1 for r in self.records if r.outcome == "ok")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.records if r.outcome == "shed")

    @property
    def errors(self) -> int:
        return sum(1 for r in self.records if r.outcome == "error")

    @property
    def shed_request_ids(self) -> List[str]:
        """Server-issued ids of shed requests (for log correlation)."""
        return [
            r.request_id for r in self.records
            if r.outcome == "shed" and r.request_id
        ]

    def to_payload(self) -> Dict:
        return {
            "plan_seed": self.plan_seed,
            "wall_seconds": self.wall_seconds,
            "scheduled": self.scheduled,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "shed_request_ids": self.shed_request_ids[:200],
            "stages": [stage.to_payload() for stage in self.stages],
        }


class LoadGenerator:
    """Replay a plan's schedule against one server.

    Args:
        plan: The load plan (see :class:`~repro.load.plan.LoadPlan`).
        host / port: The target prediction server.
        space: Design space for sampling request pools (default: the
            paper's).
        timeout: Per-request socket timeout for every client.
    """

    def __init__(
        self,
        plan: LoadPlan,
        host: str,
        port: int,
        space: Optional[DesignSpace] = None,
        timeout: float = 30.0,
    ) -> None:
        self.plan = plan
        self.host = host
        self.port = port
        self.space = space if space is not None else DesignSpace()
        self.timeout = timeout

    def run(self) -> LoadReport:
        """Execute the plan; never raises on per-request failures."""
        registry = get_registry()
        schedule, pools = build_schedule(self.plan, self.space)
        stage_lookup = {stage.name: stage for stage in self.plan.stages}
        slots: Dict[int, List[ScheduledRequest]] = {}
        for request in schedule:
            slots.setdefault(request.client, []).append(request)
        results: List[List[RequestRecord]] = [
            [] for _ in range(len(slots))
        ]
        slot_ids = sorted(slots)
        # Give every thread a beat to spin up before the clock starts,
        # so slot 0's first arrival is not late by thread-start time.
        start = time.monotonic() + 0.05
        threads = [
            Thread(
                target=self._client_worker,
                args=(slot, slots[slot], stage_lookup, pools, start,
                      results[position]),
                name=f"load-client-{slot}",
                daemon=True,
            )
            for position, slot in enumerate(slot_ids)
        ]
        _log.info(
            "load run: %d requests over %d stage(s) on %d client(s)",
            len(schedule), len(self.plan.stages), len(threads),
        )
        with span("load.run", requests=len(schedule),
                  clients=len(threads)):
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            budget = self.plan.total_duration + self.timeout + 60.0
            deadline = time.monotonic() + budget
            for thread in threads:
                thread.join(max(0.0, deadline - time.monotonic()))
            wall = time.perf_counter() - wall_start
        stuck = [t.name for t in threads if t.is_alive()]
        if stuck:
            _log.error("load clients never finished: %s", stuck)
        records = [record for bucket in results for record in bucket]
        for record in records:
            registry.counter(
                "load.requests", stage=record.stage, kind=record.kind,
                outcome=record.outcome,
            ).inc()
            registry.histogram(
                "load.request.seconds", buckets=LATENCY_BUCKETS,
                stage=record.stage,
            ).observe(record.latency)
            registry.histogram(
                "load.service.seconds", buckets=LATENCY_BUCKETS,
            ).observe(record.service)
        report = LoadReport(plan_seed=self.plan.seed, wall_seconds=wall)
        report.records = sorted(
            records, key=lambda r: (r.offset, r.stage)
        )
        report.stages = [
            _summarise(stage_lookup[name], [
                r for r in report.records if r.stage == name
            ])
            for name in (stage.name for stage in self.plan.stages)
        ]
        return report

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------
    def _client_worker(
        self,
        slot: int,
        requests: Sequence[ScheduledRequest],
        stages: Dict[str, LoadStage],
        pools: Dict[str, StagePools],
        start: float,
        sink: List[RequestRecord],
    ) -> None:
        with PredictionClient(
            self.host, self.port, timeout=self.timeout,
            client_id=f"load-{slot}",
        ) as client:
            for request in requests:
                due = start + request.offset
                delay = due - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                sink.append(self._issue(
                    client, request, stages[request.stage],
                    pools[request.stage], due,
                ))

    def _issue(
        self,
        client: PredictionClient,
        request: ScheduledRequest,
        stage: LoadStage,
        pools: StagePools,
        due: float,
    ) -> RequestRecord:
        began = time.monotonic()
        status, request_id, detail = 200, None, ""
        try:
            if request.kind == "search":
                client.search(
                    agent=stage.search_agent,
                    budget=stage.search_budget,
                    seed=request.payload,
                )
            elif request.kind == "predict_cold":
                client.predict([pools.cold[request.payload]])
            else:
                client.predict([pools.hot[request.payload]])
            outcome = "ok"
        except ServerError as error:
            outcome = "shed" if error.status == 503 else "error"
            status = error.status
            request_id = error.request_id
            detail = error.message
        except (OSError, http.client.HTTPException) as error:
            outcome, status = "error", 0
            detail = f"{type(error).__name__}: {error}"
        ended = time.monotonic()
        return RequestRecord(
            stage=request.stage,
            kind=request.kind,
            offset=request.offset,
            latency=max(0.0, ended - due),
            service=ended - began,
            outcome=outcome,
            status=status,
            request_id=request_id,
            detail=detail,
        )


def _summarise(
    stage: LoadStage, records: Sequence[RequestRecord]
) -> StageSummary:
    ok_latencies = [r.latency for r in records if r.outcome == "ok"]
    counts = {
        outcome: sum(1 for r in records if r.outcome == outcome)
        for outcome in ("ok", "shed", "error")
    }
    percentiles = {
        f"p{percentile:g}": (
            float(np.percentile(ok_latencies, percentile)) * 1e3
            if ok_latencies else float("nan")
        )
        for percentile in _PERCENTILES
    }
    return StageSummary(
        name=stage.name,
        duration=stage.duration,
        offered_rps=stage.rate,
        scheduled=len(records),
        ok=counts["ok"],
        shed=counts["shed"],
        errors=counts["error"],
        goodput_rps=counts["ok"] / stage.duration,
        latency_percentiles_ms=percentiles,
    )
