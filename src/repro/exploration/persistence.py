"""Saving and loading simulated datasets.

Simulating a dataset is cheap with the interval model but not free, and
downstream users may want to version, share or diff the exact data an
experiment ran on.  A dataset round-trips through a single ``.npz``
archive holding the raw configuration matrix and every cached metric
matrix; loading restores a fully usable
:class:`~repro.exploration.dataset.DesignSpaceDataset` whose values are
served from the archive instead of being re-simulated.

Archives are written through the shared checksummed artifact writer
(:mod:`repro.runtime.artifact`), the same layer behind model pools and
the serving registry: a SHA-256 content digest over every entry is
embedded at save time and verified at load time, so a truncated
download, a bit flip or a hand-edited matrix fails loudly with
:class:`ValueError` — a corrupted archive can never hydrate into a
plausible-looking dataset.  Version 2 archives (which carried their own
narrower checksum over the configurations and metric matrices) are
still readable and still verified.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.designspace.configuration import PARAMETER_ORDER, Configuration
from repro.runtime.artifact import read_archive, write_archive
from repro.runtime.integrity import array_checksum
from repro.sim.interval import IntervalSimulator
from repro.sim.metrics import Metric
from repro.workloads.suite import BenchmarkSuite

from .dataset import DesignSpaceDataset

#: Version 3 moved datasets onto the shared artifact writer, whose
#: digest also covers the suite name, program list and entry names.
_FORMAT_VERSION = 3

#: Version 2 archives carry a narrower digest over the configuration
#: matrix and the metric matrices only (in :meth:`Metric.all` order).
_LEGACY_VERSION = 2


def _legacy_checksum(configs: np.ndarray, matrices) -> str:
    """The version-2 digest (configurations + metric matrices)."""
    return array_checksum(configs, *matrices)


def save_dataset(
    dataset: DesignSpaceDataset, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write a dataset (configurations + all metric matrices) to ``.npz``.

    Every program's metrics are materialised first, so the archive is
    complete regardless of what the caller already touched, and a
    content checksum is embedded so corruption is caught on load.
    """
    configs = np.array(
        [list(config.values()) for config in dataset.configs], dtype=np.int64
    )
    payload = {
        "suite_name": np.array(dataset.suite.name),
        "programs": np.array(list(dataset.programs)),
        "configs": configs,
    }
    for metric in Metric.all():
        payload[f"metric_{metric.value}"] = dataset.matrix(metric)
    return write_archive(path, payload, _FORMAT_VERSION)


def load_dataset(
    path: Union[str, pathlib.Path],
    suite: BenchmarkSuite,
    simulator: IntervalSimulator | None = None,
) -> DesignSpaceDataset:
    """Load a dataset saved by :func:`save_dataset`.

    Args:
        path: The ``.npz`` archive.
        suite: The suite the archive was built from (profiles are not
            serialised; the caller must supply the same suite, which is
            validated by name and program list).
        simulator: Optional simulator for the restored dataset (used
            only for the design space / any future re-simulation).

    Raises:
        ValueError: if the archive is truncated or otherwise unreadable,
            fails its content checksum, or does not match the supplied
            suite.
    """
    path = pathlib.Path(path)
    version, payload = read_archive(
        path,
        _FORMAT_VERSION,
        legacy_versions=(_LEGACY_VERSION,),
        label="dataset archive",
    )
    suite_name = str(payload["suite_name"])
    programs = [str(name) for name in payload["programs"]]
    if suite.name != suite_name:
        raise ValueError(
            f"archive was built from suite {suite_name!r}, "
            f"got {suite.name!r}"
        )
    if list(suite.programs) != programs:
        raise ValueError(
            "archive program list does not match the supplied suite"
        )
    config_matrix = payload["configs"]
    matrices = []
    for metric in Metric.all():
        matrix = payload[f"metric_{metric.value}"]
        if matrix.shape != (len(programs), len(config_matrix)):
            raise ValueError(
                f"metric matrix {metric.value} has shape {matrix.shape}, "
                f"expected {(len(programs), len(config_matrix))}"
            )
        matrices.append(matrix)
    if version == _LEGACY_VERSION:
        expected = str(payload["checksum"])
        if _legacy_checksum(config_matrix, matrices) != expected:
            raise ValueError(
                f"dataset archive {path} failed its content checksum "
                "(the file was corrupted or tampered with)"
            )
    configs = [
        Configuration(**dict(zip(PARAMETER_ORDER, row)))
        for row in config_matrix.tolist()
    ]
    dataset = DesignSpaceDataset(suite, configs, simulator)
    for metric, matrix in zip(Metric.all(), matrices):
        for row, program in enumerate(programs):
            dataset.hydrate(program, metric, matrix[row])
    return dataset
