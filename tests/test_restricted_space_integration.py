"""The full stack works on restricted design spaces, not just Table 1.

A downstream user studying an embedded core runs the identical workflow
on `embedded_space()`; every layer (sampling, simulation, training,
prediction, search) must honour the restricted grids.
"""

import numpy as np
import pytest

from repro.core import ArchitectureCentricPredictor, TrainingPool
from repro.designspace import embedded_space, sample_configurations
from repro.exploration import DesignSpaceDataset, hill_climb
from repro.sim import IntervalSimulator, Metric
from repro.workloads import mibench_suite


@pytest.fixture(scope="module")
def embedded():
    return embedded_space()


@pytest.fixture(scope="module")
def embedded_dataset(embedded):
    suite = mibench_suite().subset(
        ["qsort", "jpeg", "sha", "fft", "dijkstra", "gsm"]
    )
    simulator = IntervalSimulator(embedded)
    configs = sample_configurations(embedded, 400, seed=9)
    return DesignSpaceDataset(suite, configs, simulator)


class TestRestrictedStack:
    def test_samples_stay_inside_the_windows(self, embedded,
                                             embedded_dataset):
        for config in embedded_dataset.configs:
            assert config.width <= 4
            assert config.l2cache_kb <= 1024
            assert embedded.is_legal(config)

    def test_simulation_works(self, embedded_dataset):
        values = embedded_dataset.values("qsort", Metric.CYCLES)
        assert np.all(values > 0)

    def test_predictor_trains_and_predicts(self, embedded_dataset):
        pool = TrainingPool(embedded_dataset, Metric.CYCLES,
                            training_size=256, seed=3)
        predictor = ArchitectureCentricPredictor(
            pool.models(exclude=["fft"])
        )
        response_idx, holdout_idx = embedded_dataset.split_indices(
            24, seed=4
        )
        predictor.fit_responses(
            embedded_dataset.subset_configs(response_idx),
            embedded_dataset.subset_values(
                "fft", Metric.CYCLES, response_idx
            ),
        )
        scores = predictor.evaluate(
            embedded_dataset.subset_configs(holdout_idx),
            embedded_dataset.subset_values(
                "fft", Metric.CYCLES, holdout_idx
            ),
        )
        assert scores["correlation"] > 0.6

    def test_search_respects_the_windows(self, embedded, embedded_dataset):
        class Oracle:
            def predict(self, configs):
                return embedded_dataset.simulator.simulate_batch(
                    embedded_dataset.suite["qsort"], list(configs)
                ).cycles

        result = hill_climb(Oracle(), embedded, max_steps=15)
        best = result.best.configuration
        assert embedded.is_legal(best)
        assert best.width <= 4

    def test_encoding_bounds_match_the_restriction(self, embedded):
        low, high = embedded.feature_bounds()
        # width feature caps at 4 in the embedded space.
        assert high[0] == 4.0
