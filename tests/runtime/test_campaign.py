"""Tests for the checkpointed, fault-tolerant campaign runner.

The acceptance bar: a campaign through a 10% transient-failure backend
produces *bit-identical* matrices to a fault-free run, and a
killed-then-resumed campaign matches an uninterrupted one while
re-simulating only the unfinished chunks.
"""

import numpy as np
import pytest

from repro.runtime import (
    CampaignJournal,
    CampaignRunner,
    FaultInjectingBackend,
    RetryPolicy,
    SimulationError,
    VirtualClock,
    supports_suite,
)
from repro.sim import Metric


class BatchOnlyBackend:
    """Strip the suite fast path off a backend (per-cell oracle)."""

    def __init__(self, inner):
        self._inner = inner

    @property
    def space(self):
        return self._inner.space

    def simulate_batch(self, profile, configs):
        return self._inner.simulate_batch(profile, configs)


def _journal_cells(checkpoint_dir):
    """The journal as a {cell: checksum} dict (order-insensitive)."""
    journal = CampaignJournal(checkpoint_dir / "journal.jsonl")
    return {
        record["cell"]: record["checksum"] for record in journal.records()
    }


@pytest.fixture()
def clean_result(backend, tiny_suite, tiny_configs, tmp_path):
    runner = CampaignRunner(backend, tmp_path / "clean", chunk_size=16)
    return runner.run(tiny_suite, tiny_configs)


class TestCleanRun:
    def test_completes(self, clean_result):
        assert clean_result.complete
        assert clean_result.failed_cells == ()
        assert clean_result.pending_cells == ()
        # 3 programs x ceil(60 / 16) = 12 cells, served by 4 program-major
        # suite calls (one per chunk: the backend supports simulate_suite)
        assert clean_result.total_cells == 12
        assert clean_result.simulated_cells == 12
        assert clean_result.attempts == 4

    def test_matches_direct_simulation(self, clean_result, simulator,
                                       tiny_suite, tiny_configs):
        for program in tiny_suite.programs:
            direct = simulator.simulate_batch(
                tiny_suite[program], tiny_configs
            )
            assert np.array_equal(
                clean_result.values(program, Metric.CYCLES), direct.cycles
            )
            assert np.array_equal(
                clean_result.values(program, Metric.EDD), direct.edd
            )

    def test_matrix_shape(self, clean_result, tiny_configs):
        matrix = clean_result.matrix(Metric.ENERGY)
        assert matrix.shape == (3, len(tiny_configs))
        assert np.all(np.isfinite(matrix))

    def test_unknown_program_rejected(self, clean_result):
        with pytest.raises(KeyError):
            clean_result.values("doom", Metric.CYCLES)

    def test_to_dataset_round_trip(self, clean_result, tiny_suite):
        dataset = clean_result.to_dataset(tiny_suite)
        for metric in Metric.all():
            assert np.array_equal(
                dataset.matrix(metric), clean_result.matrix(metric)
            )
        assert dataset.hydrated("gzip", Metric.CYCLES)


class TestFaultTolerance:
    def test_bit_identical_under_transient_faults(self, backend, tiny_suite,
                                                  tiny_configs, tmp_path,
                                                  clean_result):
        clock = VirtualClock()
        faulty = FaultInjectingBackend(
            backend, seed=11, transient_rate=0.10, corrupt_rate=0.05,
            sleep=clock.sleep,
        )
        runner = CampaignRunner(
            faulty, tmp_path / "faulty", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.1),
            sleep=clock.sleep, clock=clock,
        )
        result = runner.run(tiny_suite, tiny_configs)
        assert result.complete
        assert result.attempts > result.total_cells  # faults did fire
        for metric in Metric.all():
            assert np.array_equal(
                result.matrix(metric), clean_result.matrix(metric)
            )

    def test_stalls_discarded_by_timeout_guard(self, backend, tiny_suite,
                                               tiny_configs, tmp_path,
                                               clean_result):
        clock = VirtualClock()
        faulty = FaultInjectingBackend(
            backend, seed=5, stall_rate=0.5, stall_seconds=120.0,
            sleep=clock.sleep,
        )
        runner = CampaignRunner(
            faulty, tmp_path / "stalls", chunk_size=16,
            retry_policy=RetryPolicy(
                max_attempts=8, base_delay=0.1, timeout=60.0
            ),
            sleep=clock.sleep, clock=clock,
        )
        result = runner.run(tiny_suite, tiny_configs)
        assert result.complete
        assert faulty.injected_stalls > 0
        assert np.array_equal(
            result.matrix(Metric.CYCLES), clean_result.matrix(Metric.CYCLES)
        )

    def test_permanent_failures_recorded_not_raised(self, backend,
                                                    tiny_suite, tiny_configs,
                                                    tmp_path):
        faulty = FaultInjectingBackend(backend, seed=29, permanent_rate=0.3)
        runner = CampaignRunner(
            faulty, tmp_path / "perm", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            breaker_threshold=100,
        )
        result = runner.run(tiny_suite, tiny_configs)
        assert result.failed_cells  # rate 0.3 over 12 cells must hit
        assert not result.complete
        for cell in result.failed_cells:
            program, chunk = cell.split(":")
            start = int(chunk) * 16
            values = result.values(program, Metric.CYCLES)
            assert np.all(np.isnan(values[start : start + 16]))

    def test_fail_fast_raises(self, backend, tiny_suite, tiny_configs,
                              tmp_path):
        faulty = FaultInjectingBackend(backend, seed=29, permanent_rate=0.3)
        runner = CampaignRunner(
            faulty, tmp_path / "ff", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        with pytest.raises(SimulationError):
            runner.run(tiny_suite, tiny_configs, fail_fast=True)

    def test_open_circuit_stops_the_campaign(self, backend, tiny_suite,
                                             tiny_configs, tmp_path):
        faulty = FaultInjectingBackend(backend, seed=0, transient_rate=1.0)
        runner = CampaignRunner(
            faulty, tmp_path / "down", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            breaker_threshold=4,
        )
        result = runner.run(tiny_suite, tiny_configs)
        assert not result.complete
        assert result.pending_cells  # campaign aborted, not burned down
        assert result.attempts <= 4  # breaker capped the damage

    def test_incomplete_campaign_refuses_dataset(self, backend, tiny_suite,
                                                 tiny_configs, tmp_path):
        runner = CampaignRunner(backend, tmp_path / "part", chunk_size=16)
        partial = runner.run(tiny_suite, tiny_configs, max_cells=3)
        with pytest.raises(ValueError, match="incomplete"):
            partial.to_dataset(tiny_suite)


class TestResume:
    def test_kill_then_resume_matches_uninterrupted(self, backend,
                                                    tiny_suite, tiny_configs,
                                                    tmp_path, clean_result):
        runner = CampaignRunner(backend, tmp_path / "resume", chunk_size=16)
        partial = runner.run(tiny_suite, tiny_configs, max_cells=5)
        assert not partial.complete
        assert partial.simulated_cells == 5

        finished = runner.run(tiny_suite, tiny_configs, resume=True)
        assert finished.complete
        assert finished.resumed_cells == 5  # only unfinished cells rerun
        assert finished.simulated_cells == finished.total_cells - 5
        for metric in Metric.all():
            assert np.array_equal(
                finished.matrix(metric), clean_result.matrix(metric)
            )

    def test_resumed_archive_identical_to_uninterrupted(self, backend,
                                                        tiny_suite,
                                                        tiny_configs,
                                                        tmp_path):
        """Saving the resumed dataset gives the same archive content as
        saving an uninterrupted one."""
        from repro.exploration import save_dataset
        from repro.runtime import file_checksum

        runner = CampaignRunner(backend, tmp_path / "a", chunk_size=16)
        runner.run(tiny_suite, tiny_configs, max_cells=4)
        resumed = runner.run(tiny_suite, tiny_configs, resume=True)

        straight = CampaignRunner(
            backend, tmp_path / "b", chunk_size=16
        ).run(tiny_suite, tiny_configs)

        first = save_dataset(
            resumed.to_dataset(tiny_suite), tmp_path / "resumed.npz"
        )
        second = save_dataset(
            straight.to_dataset(tiny_suite), tmp_path / "straight.npz"
        )
        assert file_checksum(first) == file_checksum(second)

    def test_second_run_is_pure_resume(self, backend, tiny_suite,
                                       tiny_configs, tmp_path):
        runner = CampaignRunner(backend, tmp_path / "twice", chunk_size=16)
        runner.run(tiny_suite, tiny_configs)
        again = runner.run(tiny_suite, tiny_configs, resume=True)
        assert again.simulated_cells == 0
        assert again.resumed_cells == again.total_cells
        assert again.attempts == 0

    def test_corrupt_chunk_file_resimulated(self, backend, tiny_suite,
                                            tiny_configs, tmp_path,
                                            clean_result):
        runner = CampaignRunner(backend, tmp_path / "bitrot", chunk_size=16)
        runner.run(tiny_suite, tiny_configs)
        victim = sorted((tmp_path / "bitrot" / "chunks").glob("*.npz"))[0]
        victim.write_bytes(victim.read_bytes()[:-20])  # truncate

        again = runner.run(tiny_suite, tiny_configs, resume=True)
        assert again.complete
        assert again.simulated_cells == 1  # only the damaged cell
        assert np.array_equal(
            again.matrix(Metric.CYCLES), clean_result.matrix(Metric.CYCLES)
        )

    def test_deleted_chunk_file_resimulated(self, backend, tiny_suite,
                                            tiny_configs, tmp_path):
        runner = CampaignRunner(backend, tmp_path / "gone", chunk_size=16)
        runner.run(tiny_suite, tiny_configs)
        victim = sorted((tmp_path / "gone" / "chunks").glob("*.npz"))[0]
        victim.unlink()
        again = runner.run(tiny_suite, tiny_configs, resume=True)
        assert again.complete
        assert again.simulated_cells == 1

    def test_refuses_existing_checkpoint_without_resume(self, backend,
                                                        tiny_suite,
                                                        tiny_configs,
                                                        tmp_path):
        runner = CampaignRunner(backend, tmp_path / "no", chunk_size=16)
        runner.run(tiny_suite, tiny_configs, max_cells=1)
        with pytest.raises(ValueError, match="already holds a campaign"):
            runner.run(tiny_suite, tiny_configs, resume=False)

    def test_mismatched_campaign_rejected(self, backend, tiny_suite,
                                          tiny_configs, tmp_path):
        runner = CampaignRunner(backend, tmp_path / "mix", chunk_size=16)
        runner.run(tiny_suite, tiny_configs, max_cells=1)
        with pytest.raises(ValueError, match="different campaign"):
            runner.run(tiny_suite, tiny_configs[:32], resume=True)

    def test_faulty_resume_still_bit_identical(self, backend, tiny_suite,
                                               tiny_configs, tmp_path,
                                               clean_result):
        """Interrupt + faults + resume together: still exact."""
        clock = VirtualClock()
        faulty = FaultInjectingBackend(
            backend, seed=17, transient_rate=0.10, sleep=clock.sleep,
        )
        runner = CampaignRunner(
            faulty, tmp_path / "both", chunk_size=16,
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.1),
            sleep=clock.sleep, clock=clock,
        )
        runner.run(tiny_suite, tiny_configs, max_cells=7)
        result = runner.run(tiny_suite, tiny_configs, resume=True)
        assert result.complete
        for metric in Metric.all():
            assert np.array_equal(
                result.matrix(metric), clean_result.matrix(metric)
            )


class TestParallelCampaign:
    """n_jobs must be a pure performance knob: matrices, journal
    contents and resume behaviour all match the serial loop."""

    def test_parallel_matches_serial_bit_identical(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial = CampaignRunner(
            backend, tmp_path / "serial", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        parallel = CampaignRunner(
            backend, tmp_path / "par", chunk_size=16, n_jobs=3
        ).run(tiny_suite, tiny_configs)
        assert parallel.complete
        assert parallel.simulated_cells == serial.simulated_cells
        assert parallel.attempts == serial.attempts
        for metric in Metric.all():
            assert np.array_equal(
                parallel.matrix(metric), serial.matrix(metric)
            )

    def test_parallel_interrupt_then_resume(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        serial = CampaignRunner(
            backend, tmp_path / "serial", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        first = CampaignRunner(
            backend, tmp_path / "resume", chunk_size=16, n_jobs=2
        ).run(tiny_suite, tiny_configs, max_cells=5)
        assert not first.complete
        assert first.simulated_cells == 5
        assert len(first.pending_cells) == 7
        second = CampaignRunner(
            backend, tmp_path / "resume", chunk_size=16, n_jobs=2
        ).run(tiny_suite, tiny_configs)
        assert second.complete
        assert second.resumed_cells == 5
        assert second.simulated_cells == 7
        for metric in Metric.all():
            assert np.array_equal(
                second.matrix(metric), serial.matrix(metric)
            )

    def test_serial_resumes_a_parallel_checkpoint(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        CampaignRunner(
            backend, tmp_path / "mix", chunk_size=16, n_jobs=2
        ).run(tiny_suite, tiny_configs, max_cells=4)
        result = CampaignRunner(
            backend, tmp_path / "mix", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        assert result.complete
        assert result.resumed_cells == 4

    def test_parallel_transient_faults_bit_identical(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        clean = CampaignRunner(
            backend, tmp_path / "clean", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        faulty = FaultInjectingBackend(backend, seed=13, transient_rate=0.2)
        result = CampaignRunner(
            faulty, tmp_path / "faulty", chunk_size=16, n_jobs=3,
            retry_policy=RetryPolicy(max_attempts=5, base_delay=0.0),
        ).run(tiny_suite, tiny_configs)
        assert result.complete
        for metric in Metric.all():
            assert np.array_equal(
                result.matrix(metric), clean.matrix(metric)
            )

    def test_parallel_permanent_failures_recorded(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        faulty = FaultInjectingBackend(backend, seed=29, permanent_rate=0.3)
        result = CampaignRunner(
            faulty, tmp_path / "perm", chunk_size=16, n_jobs=2,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        ).run(tiny_suite, tiny_configs)
        assert result.failed_cells
        assert not result.complete

    def test_parallel_fail_fast_raises(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        faulty = FaultInjectingBackend(backend, seed=29, permanent_rate=0.3)
        runner = CampaignRunner(
            faulty, tmp_path / "ff", chunk_size=16, n_jobs=2,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        with pytest.raises(SimulationError):
            runner.run(tiny_suite, tiny_configs, fail_fast=True)


class TestSuiteFastPath:
    """simulate_suite must be a pure performance knob: same matrices,
    same journal content, fewer backend calls."""

    def test_backend_advertises_suite(self, backend):
        assert supports_suite(backend)
        assert not supports_suite(BatchOnlyBackend(backend))
        assert not supports_suite(FaultInjectingBackend(backend))

    def test_suite_matches_per_cell_path(self, backend, tiny_suite,
                                         tiny_configs, tmp_path):
        fast = CampaignRunner(
            backend, tmp_path / "fast", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        slow = CampaignRunner(
            BatchOnlyBackend(backend), tmp_path / "slow", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        assert fast.complete and slow.complete
        assert fast.attempts == 4  # one suite call per chunk
        assert slow.attempts == 12  # one batch call per cell
        for metric in Metric.all():
            assert np.array_equal(fast.matrix(metric), slow.matrix(metric))
        assert _journal_cells(tmp_path / "fast") == _journal_cells(
            tmp_path / "slow"
        )

    def test_parallel_suite_journal_matches_serial(self, backend,
                                                   tiny_suite, tiny_configs,
                                                   tmp_path):
        serial = CampaignRunner(
            backend, tmp_path / "serial", chunk_size=16
        ).run(tiny_suite, tiny_configs)
        parallel = CampaignRunner(
            backend, tmp_path / "par", chunk_size=16, n_jobs=2
        ).run(tiny_suite, tiny_configs)
        assert parallel.attempts == serial.attempts == 4
        for metric in Metric.all():
            assert np.array_equal(
                parallel.matrix(metric), serial.matrix(metric)
            )
        assert _journal_cells(tmp_path / "par") == _journal_cells(
            tmp_path / "serial"
        )

    def test_suite_interrupt_resumes_per_cell(self, backend, tiny_suite,
                                              tiny_configs, tmp_path,
                                              clean_result):
        """max_cells interrupts mid-chunk-row; the resume recomputes only
        the unjournalled cells, via smaller suite calls."""
        runner = CampaignRunner(backend, tmp_path / "cut", chunk_size=16)
        partial = runner.run(tiny_suite, tiny_configs, max_cells=5)
        assert partial.simulated_cells == 5
        finished = runner.run(tiny_suite, tiny_configs, resume=True)
        assert finished.complete
        assert finished.resumed_cells == 5
        assert finished.simulated_cells == 7
        for metric in Metric.all():
            assert np.array_equal(
                finished.matrix(metric), clean_result.matrix(metric)
            )


class TestInterruptedManifest:
    """A campaign killed mid-run still leaves a provenance manifest."""

    def test_backend_blowup_writes_interrupted_manifest(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        import json

        class ExplodingBackend:
            def __init__(self, inner, after):
                self._inner = inner
                self._after = after
                self._calls = 0

            def simulate_batch(self, *args, **kwargs):
                self._calls += 1
                if self._calls > self._after:
                    raise KeyboardInterrupt  # operator hit ctrl-C
                return self._inner.simulate_batch(*args, **kwargs)

        runner = CampaignRunner(
            ExplodingBackend(backend, after=3),
            tmp_path / "boom", chunk_size=16,
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run(tiny_suite, tiny_configs)

        manifest = json.loads(
            runner.run_manifest_path.read_text(encoding="utf-8")
        )
        assert manifest["run"]["status"] == "interrupted"
        assert "KeyboardInterrupt" in manifest["run"]["error"]
        assert manifest["run"]["kind"] == "campaign"

    def test_completed_manifest_reports_status(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        import json

        runner = CampaignRunner(backend, tmp_path / "done", chunk_size=16)
        runner.run(tiny_suite, tiny_configs)
        manifest = json.loads(
            runner.run_manifest_path.read_text(encoding="utf-8")
        )
        assert manifest["run"]["status"] == "complete"

    def test_interrupted_checkpoint_resumes_cleanly(
        self, backend, tiny_suite, tiny_configs, tmp_path, clean_result
    ):
        class OneShotInterrupt:
            def __init__(self, inner, after):
                self._inner = inner
                self._after = after
                self._calls = 0

            def simulate_batch(self, *args, **kwargs):
                self._calls += 1
                if self._calls == self._after:
                    raise KeyboardInterrupt
                return self._inner.simulate_batch(*args, **kwargs)

        target = tmp_path / "recover"
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                OneShotInterrupt(backend, after=5), target, chunk_size=16
            ).run(tiny_suite, tiny_configs)

        result = CampaignRunner(backend, target, chunk_size=16).run(
            tiny_suite, tiny_configs, resume=True
        )
        assert result.complete
        assert result.resumed_cells == 4  # chunks finished before ctrl-C
        for metric in Metric.all():
            assert np.array_equal(
                result.matrix(metric), clean_result.matrix(metric)
            )


class TestJournalCrashRecovery:
    """Crash anatomy: every way the journal or a chunk file can be left
    half-written must be detected on resume, cost exactly the damaged
    cells, and still converge to bit-identical matrices."""

    @staticmethod
    def _journal(root):
        return root / "journal.jsonl"

    def test_torn_journal_tail_resimulates_that_cell(
        self, backend, tiny_suite, tiny_configs, tmp_path, clean_result
    ):
        """kill -9 mid-append leaves a half-written final line; resume
        must treat that cell as never finished, and nothing else."""
        target = tmp_path / "torn"
        runner = CampaignRunner(backend, target, chunk_size=16)
        runner.run(tiny_suite, tiny_configs)

        journal = self._journal(target)
        text = journal.read_text(encoding="utf-8")
        # Chop the last record off mid-JSON, exactly as an interrupted
        # fsynced append would leave it.
        journal.write_text(text[: len(text) - 25], encoding="utf-8")

        again = runner.run(tiny_suite, tiny_configs, resume=True)
        assert again.complete
        assert again.simulated_cells == 1
        assert again.resumed_cells == again.total_cells - 1
        for metric in Metric.all():
            assert np.array_equal(
                again.matrix(metric), clean_result.matrix(metric)
            )

    def test_tampered_checksum_drops_only_that_chunk(
        self, backend, tiny_suite, tiny_configs, tmp_path, clean_result
    ):
        """A journal record whose checksum no longer matches its chunk
        file invalidates that one cell, not the whole campaign."""
        import json as _json

        target = tmp_path / "tamper"
        runner = CampaignRunner(backend, target, chunk_size=16)
        runner.run(tiny_suite, tiny_configs)

        journal = self._journal(target)
        lines = journal.read_text(encoding="utf-8").splitlines()
        victim = _json.loads(lines[1])
        victim["checksum"] = "0" * len(victim["checksum"])
        lines[1] = _json.dumps(victim, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")

        again = runner.run(tiny_suite, tiny_configs, resume=True)
        assert again.complete
        assert again.simulated_cells == 1  # only the distrusted cell
        for metric in Metric.all():
            assert np.array_equal(
                again.matrix(metric), clean_result.matrix(metric)
            )

    def test_mid_journal_corruption_refuses_resume(
        self, backend, tiny_suite, tiny_configs, tmp_path
    ):
        """Garbage anywhere but the tail is tampering, not a crash, and
        resuming past it would silently trust unverifiable history."""
        target = tmp_path / "midrot"
        runner = CampaignRunner(backend, target, chunk_size=16)
        runner.run(tiny_suite, tiny_configs)

        journal = self._journal(target)
        lines = journal.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][:-10]  # corrupt the FIRST record
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")

        with pytest.raises(ValueError, match="corrupt journal"):
            runner.run(tiny_suite, tiny_configs, resume=True)

    def test_truncated_chunk_file_recovery_is_bit_identical(
        self, backend, tiny_suite, tiny_configs, tmp_path, clean_result
    ):
        """A chunk .npz cut off mid-write fails its journalled checksum;
        the cell is re-simulated and every metric still matches."""
        target = tmp_path / "cutoff"
        runner = CampaignRunner(backend, target, chunk_size=16)
        runner.run(tiny_suite, tiny_configs)

        victims = sorted((target / "chunks").glob("*.npz"))[:2]
        for victim in victims:
            data = victim.read_bytes()
            victim.write_bytes(data[: len(data) // 2])

        again = runner.run(tiny_suite, tiny_configs, resume=True)
        assert again.complete
        assert again.simulated_cells == len(victims)
        for metric in Metric.all():
            assert np.array_equal(
                again.matrix(metric), clean_result.matrix(metric)
            )

    def test_crash_between_chunk_write_and_journal_append(
        self, backend, tiny_suite, tiny_configs, tmp_path, clean_result
    ):
        """The chunk file landed but the process died before the journal
        line: the orphaned file is ignored and the cell redone."""
        target = tmp_path / "orphan"
        runner = CampaignRunner(backend, target, chunk_size=16)
        runner.run(tiny_suite, tiny_configs)

        journal = self._journal(target)
        lines = journal.read_text(encoding="utf-8").splitlines()
        journal.write_text(
            "\n".join(lines[:-1]) + "\n", encoding="utf-8"
        )  # drop the last record entirely; its .npz stays on disk

        again = runner.run(tiny_suite, tiny_configs, resume=True)
        assert again.complete
        assert again.simulated_cells == 1
        for metric in Metric.all():
            assert np.array_equal(
                again.matrix(metric), clean_result.matrix(metric)
            )
