"""Monte Carlo statistical simulation (the HLS-style middle tier).

The paper's related work (Section 9.2) describes *statistical
simulation* — HLS, HLSpower, Eeckhout et al. — as the middle ground
between analytic models and cycle-accurate simulation: synthesise short
instruction sequences from a program's statistical profile and execute
them on an abstract machine model, trading determinism for fidelity to
the profile's distributions.

This module implements that tier.  Per replication it samples a window
of instructions (classes from the mix, dependency distances from the
geometric model, cache/branch outcomes as Bernoulli draws from the
analytic miss/misprediction rates) and schedules them on an abstract
out-of-order window: each instruction starts when its producers finish
and the machine has issue capacity, with front-end stalls injected for
mispredicted branches and instruction misses.  Cycles and energy are
averaged over replications, so estimates carry genuine sampling noise —
which makes this simulator the natural tool for studying how the
architecture-centric predictor copes with noisy responses (ablation
A8), since real responses are themselves SimPoint *estimates*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.space import DesignSpace
from repro.workloads.profile import WorkloadProfile

from .branch import branch_penalties
from .caches import hierarchy_miss_ratios
from .interval import IntervalSimulator
from .machine import FixedParameters, functional_units


@dataclass(frozen=True)
class MonteCarloResult:
    """Estimate with its sampling spread."""

    cycles: float
    energy: float
    cycles_std: float
    replications: int

    @property
    def relative_noise(self) -> float:
        """Standard error of the cycles estimate, relative."""
        if self.cycles == 0.0:
            return 0.0
        return self.cycles_std / np.sqrt(self.replications) / self.cycles


class MonteCarloSimulator:
    """Statistical simulator: replicated synthetic-window execution.

    Args:
        space: Design space (for validation/encoding).
        fixed: Table 2 constants.
        window_instructions: Instructions per sampled window.
        replications: Windows averaged per estimate.
    """

    def __init__(
        self,
        space: Optional[DesignSpace] = None,
        fixed: Optional[FixedParameters] = None,
        window_instructions: int = 2000,
        replications: int = 8,
    ) -> None:
        if window_instructions < 10:
            raise ValueError("window_instructions must be at least 10")
        if replications < 1:
            raise ValueError("replications must be at least 1")
        self.space = space if space is not None else DesignSpace()
        self.fixed = fixed if fixed is not None else FixedParameters()
        self.window_instructions = window_instructions
        self.replications = replications
        # Energy is charged with the interval model's accounting, scaled
        # by the Monte Carlo cycle estimate (activity counts are profile
        # properties; only the elapsed cycles differ).
        self._interval = IntervalSimulator(self.space, self.fixed)

    # ------------------------------------------------------------------
    def simulate(
        self,
        profile: WorkloadProfile,
        config: Configuration,
        seed: Optional[int] = None,
    ) -> MonteCarloResult:
        """Estimate cycles and energy by replicated window sampling."""
        self.space.validate(config)
        rng = np.random.default_rng(seed)
        per_window = np.array(
            [
                self._one_window(profile, config, rng)
                for _ in range(self.replications)
            ]
        )
        scale = profile.instructions / self.window_instructions
        cycles = float(per_window.mean() * scale)
        cycles_std = float(per_window.std() * scale)

        # Energy: interval-model activity accounting at the Monte Carlo
        # cycle count (leakage + clock scale with cycles; dynamic energy
        # is activity-driven and shared).
        reference = self._interval.simulate(profile, config)
        leakage_share = self._leakage_energy(profile, config, reference)
        dynamic = reference.energy - leakage_share
        energy = dynamic + leakage_share * (cycles / reference.cycles)
        return MonteCarloResult(
            cycles=cycles,
            energy=float(energy),
            cycles_std=cycles_std,
            replications=self.replications,
        )

    def _leakage_energy(self, profile, config, reference) -> float:
        """Leakage+clock portion of the interval model's energy."""
        columns = self._interval._columns([config])
        e = __import__("repro.sim.energy", fromlist=["energy"])
        width = columns["width"]
        rf_ports = columns["rf_read_ports"] + columns["rf_write_ports"]
        area = (
            e.array_area(columns["rob_size"], 76, 2 * width)
            + e.array_area(columns["iq_size"], 48, width)
            + e.array_area(columns["lsq_size"], 72, width)
            + 2.0 * e.array_area(columns["rf_size"], 64, rf_ports)
            + e.array_area(columns["gshare_size"], 2)
            + e.array_area(columns["btb_size"], 60)
            + e.cache_area(columns["icache_kb"] * 1024.0)
            + e.cache_area(columns["dcache_kb"] * 1024.0)
            + e.cache_area(columns["l2cache_kb"] * 1024.0)
        )
        per_cycle = float(
            np.asarray(
                area * e.LEAKAGE_PER_AREA
                + e.CLOCK_ENERGY_COEFF * np.sqrt(area) * width
            ).reshape(-1)[0]
        )
        return per_cycle * reference.cycles

    # ------------------------------------------------------------------
    def _one_window(
        self,
        profile: WorkloadProfile,
        config: Configuration,
        rng: np.random.Generator,
    ) -> float:
        """Cycles for one sampled window on the abstract machine."""
        n = self.window_instructions
        fixed = self.fixed
        mix = profile.mix

        # Analytic event rates for this configuration.
        dmiss = hierarchy_miss_ratios(
            profile.data_locality,
            config.dcache_kb * 1024.0,
            config.l2cache_kb * 1024.0,
            fixed.l1_associativity,
            fixed.l2_associativity,
        )
        branches = branch_penalties(
            profile.branches, mix.branch,
            config.gshare_size, config.btb_size,
        )

        # Sample per-instruction properties.
        classes = rng.choice(
            7, size=n, p=np.array(mix.as_tuple()) / sum(mix.as_tuple())
        )
        latencies = np.array(
            [
                fixed.int_alu_latency,
                fixed.int_mul_latency,
                fixed.fp_alu_latency,
                fixed.fp_mul_latency,
                fixed.l1_latency,
                1,  # stores: buffered
                fixed.int_alu_latency,
            ]
        )[classes].astype(float)
        loads = classes == 4
        l1_misses = loads & (rng.random(n) < float(dmiss.l1))
        l2_misses = l1_misses & (rng.random(n) < float(dmiss.l2_local))
        mlp = max(1.0, min(profile.mlp_max, float(fixed.mshr_entries)))
        latencies[l1_misses] += fixed.l2_latency
        latencies[l2_misses] += fixed.memory_latency / mlp

        dependency_mean = max(2.0, profile.ilp_window_scale / 6.0)
        distances = rng.geometric(1.0 / dependency_mean, size=(n, 2))
        ready_mask = rng.random((n, 2)) < 0.3  # immediate/architected

        is_branch = classes == 6
        mispredicted = is_branch & (
            rng.random(n) < float(branches.mispredict_rate)
        )

        # Abstract OoO schedule: finish[i] = max(producer finishes,
        # earliest slot the front end and width allow) + latency.
        width = config.width
        window = min(
            config.rob_size,
            max(1, int((config.rf_size - fixed.architected_registers)
                       / profile.dest_fraction)),
            max(1, int(config.iq_size / profile.iq_pressure)),
        )
        finish = np.zeros(n)
        fetch_ready = np.zeros(n)
        stall_until = 0.0
        for i in range(n):
            fetch_cycle = max(i / width, stall_until)
            ready = fetch_cycle
            for s in range(2):
                if ready_mask[i, s]:
                    continue
                producer = i - int(distances[i, s])
                if producer >= 0:
                    ready = max(ready, finish[producer])
            # The window bounds how far execution runs ahead of commit.
            if i >= window:
                ready = max(ready, finish[i - window])
            finish[i] = ready + latencies[i]
            if mispredicted[i]:
                stall_until = finish[i] + fixed.frontend_depth
        return float(finish.max())


def noisy_responses(
    simulator: MonteCarloSimulator,
    profile: WorkloadProfile,
    configs: Sequence[Configuration],
    seed: Optional[int] = None,
) -> np.ndarray:
    """Monte Carlo cycle estimates for a response set (with noise)."""
    rng = np.random.default_rng(seed)
    return np.array(
        [
            simulator.simulate(
                profile, config, seed=int(rng.integers(0, 2**32))
            ).cycles
            for config in configs
        ]
    )
