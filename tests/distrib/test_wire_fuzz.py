"""Seeded fuzzing of the wire codec.

Every case feeds hostile bytes — mangled length prefixes, truncated
frames, wrong-version headers, flipped payload bytes, raw garbage —
into :func:`read_message` / :func:`decode_frame` and requires the same
outcome: a clean :class:`ProtocolError` (or ``None`` for a clean EOF),
never a hang, never any other exception type.  Each read is wrapped in
``asyncio.wait_for`` so a codec that blocks on malformed input fails
the test instead of wedging the suite.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np
import pytest

from repro.distrib.protocol import (
    MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_message,
)

SEED = 0xC0FFEE
ROUNDS = 50
READ_TIMEOUT = 2.0


def _sample_payload(rng: np.random.Generator) -> dict:
    return {
        "type": "result",
        "lease": f"lease-{int(rng.integers(0, 1 << 30))}",
        "cell": f"gzip:{int(rng.integers(0, 512))}",
        "values": [float(v) for v in rng.normal(size=4)],
    }


def _read_all(data: bytes):
    """Drive read_message over ``data`` until EOF, error or timeout."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        messages = []
        while True:
            message = await asyncio.wait_for(
                read_message(reader), timeout=READ_TIMEOUT
            )
            if message is None:
                return messages
            messages.append(message)

    return asyncio.run(scenario())


class TestLengthPrefixFuzz:
    def test_random_length_prefixes_never_hang(self):
        rng = np.random.default_rng(SEED)
        for _ in range(ROUNDS):
            prefix = rng.integers(0, 256, size=4, dtype=np.uint8).tobytes()
            (length,) = struct.unpack(">I", prefix)
            tail_len = int(rng.integers(0, 64))
            tail = rng.integers(
                0, 256, size=tail_len, dtype=np.uint8
            ).tobytes()
            if length == 0 and tail_len == 0:
                continue  # a zero-length frame decodes as empty JSON -> error anyway
            with pytest.raises(ProtocolError):
                _read_all(prefix + tail)

    def test_oversized_announcement_rejected_before_reading_body(self):
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            _read_all(prefix)

    def test_partial_length_prefix_is_an_error(self):
        rng = np.random.default_rng(SEED + 1)
        for cut in (1, 2, 3):
            frame = encode_frame(_sample_payload(rng))
            with pytest.raises(ProtocolError, match="mid-length-prefix"):
                _read_all(frame[:cut])


class TestTruncationFuzz:
    def test_truncated_frames_raise_cleanly(self):
        rng = np.random.default_rng(SEED + 2)
        for _ in range(ROUNDS):
            frame = encode_frame(_sample_payload(rng))
            cut = int(rng.integers(4, len(frame)))  # keep full prefix
            with pytest.raises(ProtocolError, match="mid-frame"):
                _read_all(frame[:cut])

    def test_truncated_second_frame_after_a_good_first(self):
        rng = np.random.default_rng(SEED + 3)
        first = encode_frame(_sample_payload(rng))
        second = encode_frame(_sample_payload(rng))
        cut = len(second) // 2

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(first + second[:cut])
            reader.feed_eof()
            good = await asyncio.wait_for(
                read_message(reader), timeout=READ_TIMEOUT
            )
            assert good is not None and good["type"] == "result"
            with pytest.raises(ProtocolError):
                await asyncio.wait_for(
                    read_message(reader), timeout=READ_TIMEOUT
                )

        asyncio.run(scenario())

    def test_clean_eof_between_frames_returns_none(self):
        rng = np.random.default_rng(SEED + 4)
        frame = encode_frame(_sample_payload(rng))
        assert len(_read_all(frame)) == 1
        assert _read_all(b"") == []


class TestHeaderFuzz:
    def _reframe(self, envelope: dict) -> bytes:
        body = json.dumps(envelope).encode("utf-8")
        return struct.pack(">I", len(body)) + body

    def test_wrong_version_headers_rejected(self):
        rng = np.random.default_rng(SEED + 5)
        for _ in range(ROUNDS):
            frame = encode_frame(_sample_payload(rng))
            envelope = json.loads(frame[4:].decode("utf-8"))
            wrong = int(rng.integers(-3, 100))
            if MIN_PROTOCOL_VERSION <= wrong <= PROTOCOL_VERSION:
                continue  # supported range: accepted, not a mismatch
            envelope["v"] = wrong
            with pytest.raises(ProtocolError, match="version mismatch"):
                _read_all(self._reframe(envelope))

    def test_supported_version_range_accepted(self):
        rng = np.random.default_rng(SEED + 5)
        payload = _sample_payload(rng)
        frame = encode_frame(payload)
        envelope = json.loads(frame[4:].decode("utf-8"))
        for version in range(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION + 1):
            accepted = dict(envelope)
            accepted["v"] = version
            assert _read_all(self._reframe(accepted)) == [payload]

    def test_non_integer_versions_rejected(self):
        rng = np.random.default_rng(SEED + 6)
        frame = encode_frame(_sample_payload(rng))
        envelope = json.loads(frame[4:].decode("utf-8"))
        for wrong in (None, "2", 2.5, [PROTOCOL_VERSION]):
            mangled = dict(envelope)
            mangled["v"] = wrong
            with pytest.raises(ProtocolError, match="version mismatch"):
                _read_all(self._reframe(mangled))

    def test_missing_envelope_keys_rejected(self):
        rng = np.random.default_rng(SEED + 7)
        frame = encode_frame(_sample_payload(rng))
        envelope = json.loads(frame[4:].decode("utf-8"))
        for key in ("v", "sha256", "payload"):
            mangled = {k: v for k, v in envelope.items() if k != key}
            with pytest.raises(ProtocolError):
                _read_all(self._reframe(mangled))


class TestCorruptionFuzz:
    def test_flipped_bytes_never_pass_the_checksum(self):
        rng = np.random.default_rng(SEED + 8)
        for _ in range(ROUNDS):
            frame = bytearray(encode_frame(_sample_payload(rng)))
            index = int(rng.integers(4, len(frame)))
            bit = 1 << int(rng.integers(0, 8))
            frame[index] ^= bit
            if bytes(frame) == encode_frame(_sample_payload(rng)):
                continue  # pragma: no cover - flip was a no-op
            # Depending on where the flip lands this is a JSON error, a
            # shape error, a version mismatch or a checksum failure; it
            # must always surface as ProtocolError, never decode.
            with pytest.raises(ProtocolError):
                _read_all(bytes(frame))

    def test_checksum_field_corruption_detected(self):
        rng = np.random.default_rng(SEED + 9)
        for _ in range(10):
            frame = encode_frame(_sample_payload(rng))
            envelope = json.loads(frame[4:].decode("utf-8"))
            digest = list(envelope["sha256"])
            pos = int(rng.integers(0, len(digest)))
            digest[pos] = "0" if digest[pos] != "0" else "f"
            envelope["sha256"] = "".join(digest)
            body = json.dumps(envelope).encode("utf-8")
            with pytest.raises(ProtocolError, match="checksum"):
                decode_frame(body)

    def test_random_garbage_never_decodes(self):
        rng = np.random.default_rng(SEED + 10)
        for _ in range(ROUNDS):
            size = int(rng.integers(1, 512))
            blob = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            with pytest.raises(ProtocolError):
                decode_frame(blob)

    def test_valid_json_wrong_shape_never_decodes(self):
        shapes = [
            b"null",
            b"[]",
            b'"frame"',
            b"{}",
            b'{"v": 2}',
            b'{"v": 2, "sha256": "00", "payload": []}',
            b'{"v": 2, "sha256": "00", "payload": {"no_type": 1}}',
        ]
        for blob in shapes:
            with pytest.raises(ProtocolError):
                decode_frame(blob)
