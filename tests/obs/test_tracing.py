"""Span tracing: nesting, bounds, rollups, chrome export."""

import json

import pytest

from repro.obs import Tracer, get_tracer, scoped_tracer, span


class TestSpans:
    def test_span_records_name_and_attrs(self):
        tracer = Tracer()
        with tracer.span("simulate.chunk", program="gzip", chunk=3):
            pass
        (record,) = tracer.spans
        assert record["name"] == "simulate.chunk"
        assert record["attrs"] == {"program": "gzip", "chunk": 3}
        assert record["dur"] >= 0.0

    def test_yielded_record_takes_late_attrs(self):
        tracer = Tracer()
        with tracer.span("simulate.chunk") as record:
            record["attrs"]["attempts"] = 4
        assert tracer.spans[0]["attrs"]["attempts"] == 4

    def test_duration_finalised_only_on_exit(self):
        tracer = Tracer()
        with tracer.span("work") as record:
            assert record["dur"] == 0.0
        assert tracer.spans[0]["dur"] > 0.0

    def test_nesting_tracks_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {record["name"]: record for record in tracer.spans}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # inner exits first, so it is stored first
        assert tracer.spans[0]["name"] == "inner"

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.spans[0]["name"] == "doomed"
        with tracer.span("after"):
            pass
        assert tracer.spans[1]["depth"] == 0  # stack was unwound

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored") as record:
            assert record is None
        tracer.record("ignored", 1.0)
        assert tracer.spans == []

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_record_adopts_external_timing(self):
        tracer = Tracer()
        tracer.record("train.fit", 1.5, program="gzip", worker=True)
        (record,) = tracer.spans
        assert record["dur"] == 1.5
        assert record["attrs"]["worker"] is True

    def test_adopt_folds_worker_spans(self):
        parent, worker = Tracer(), Tracer()
        with worker.span("simulate.chunk", program="art"):
            pass
        parent.adopt(worker.spans)
        assert parent.count("simulate.chunk") == 1


class TestRollups:
    def test_count_scoped_by_mark(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        mark = tracer.mark()
        with tracer.span("x"):
            pass
        assert tracer.count("x") == 2
        assert tracer.count("x", mark) == 1

    def test_summary_shape(self):
        tracer = Tracer()
        tracer.record("a", 1.0)
        tracer.record("a", 3.0)
        tracer.record("b", 0.5)
        summary = tracer.summary()
        assert summary["a"]["count"] == 2
        assert summary["a"]["total_seconds"] == 4.0
        assert summary["a"]["min_seconds"] == 1.0
        assert summary["a"]["max_seconds"] == 3.0
        assert list(summary) == ["a", "b"]  # sorted by name

    def test_clear(self):
        tracer = Tracer(max_spans=1)
        tracer.record("a", 1.0)
        tracer.record("b", 1.0)  # dropped
        tracer.clear()
        assert tracer.spans == []
        assert tracer.dropped == 0


class TestChromeExport:
    def test_complete_events_in_microseconds(self):
        tracer = Tracer()
        tracer.record("simulate.chunk", 0.25, program="gzip")
        (event,) = tracer.to_chrome_events()
        assert event["ph"] == "X"
        assert event["dur"] == 250000.0
        assert event["args"] == {"program": "gzip"}
        assert event["cat"] == "repro"

    def test_write_chrome_is_valid_json(self, tmp_path):
        tracer = Tracer()
        tracer.record("a", 0.1)
        tracer.record("b", 0.2)
        path = tracer.write_chrome(tmp_path / "trace.json")
        events = json.loads(path.read_text())
        assert [event["name"] for event in events] == ["a", "b"]
        assert not (tmp_path / "trace.json.tmp").exists()

    def test_write_chrome_empty_trace(self, tmp_path):
        path = Tracer().write_chrome(tmp_path / "trace.json")
        assert json.loads(path.read_text()) == []

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.record("a", 0.1)
        path = tracer.write_jsonl(tmp_path / "spans.jsonl")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "a"


class TestGlobalTracer:
    def test_module_level_span_uses_scoped_tracer(self):
        with scoped_tracer() as tracer:
            with span("probe", k=1):
                pass
            assert tracer.count("probe") == 1
        assert get_tracer() is not tracer

    def test_invalid_max_spans(self):
        with pytest.raises(ValueError, match="at least 1"):
            Tracer(max_spans=0)
