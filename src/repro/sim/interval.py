"""First-order interval performance/energy model (the bulk simulator).

This is the fast data generator behind the large experiments, playing
the role statistical simulation plays in the paper's related work: a
first-order superscalar model in the tradition of Karkhanis & Smith's
interval analysis.  Execution proceeds at a window-and-width-limited
steady-state issue rate, punctuated by miss events — branch
mispredictions, instruction-cache misses, data misses to L2 and memory —
each charged its exposure after out-of-order latency hiding and
memory-level parallelism.

The model is fully vectorised over configurations with numpy: evaluating
a program on thousands of design points is a single pass of array
arithmetic, which is what makes sampling 3,000 architectures per
benchmark (Section 3.3 of the paper) cheap enough to run everywhere.

Cycle model
-----------
The effective out-of-order window is the binding minimum of the reorder
buffer, the rename registers the register file can supply, the issue
queue and load/store queue occupancies the program generates, and the
in-flight branch limit.  The program's ILP curve maps the window to a
sustainable issue rate, capped (smoothly) by the pipeline width, the
register-file ports, and the width-scaled functional units.  Penalty
terms then add the exposed cost of branch mispredictions (front-end
refill plus window drain), BTB misses, instruction misses, L2 hits that
the window cannot hide, and memory accesses divided by the achievable
memory-level parallelism.

Energy model
------------
Wattch-style: per-instruction activity counts for every structure times
the Cacti-style per-access energies of :mod:`repro.sim.energy`, inflated
on the speculative front-end path by the wrong-path factor, plus leakage
and clock power integrated over the elapsed cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.space import DesignSpace
from repro.workloads.profile import WorkloadProfile

from . import energy as energy_model
from .branch import branch_penalties
from .caches import hierarchy_miss_ratios
from .machine import FixedParameters, functional_units
from .metrics import Metric, derive_metrics

#: Instructions per I-cache line fetch (32-byte lines, 4-byte insns).
_INSTRUCTIONS_PER_FETCH = 8.0
#: Exponent of the smooth minimum combining window ILP and structural
#: width limits (higher = closer to a hard min).
_SOFT_MIN_POWER = 4.0


@dataclass(frozen=True)
class SimulationResult:
    """Metrics for one (program, configuration) pair, with breakdown."""

    cycles: float
    energy: float
    ed: float
    edd: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    def metric(self, metric: Metric) -> float:
        """Look up one of the four target metrics."""
        return {
            Metric.CYCLES: self.cycles,
            Metric.ENERGY: self.energy,
            Metric.ED: self.ed,
            Metric.EDD: self.edd,
        }[metric]


@dataclass(frozen=True)
class BatchResult:
    """Metric arrays for one program across a batch of configurations."""

    cycles: np.ndarray
    energy: np.ndarray
    ed: np.ndarray
    edd: np.ndarray

    def metric(self, metric: Metric) -> np.ndarray:
        """Look up one of the four target metric arrays."""
        return {
            Metric.CYCLES: self.cycles,
            Metric.ENERGY: self.energy,
            Metric.ED: self.ed,
            Metric.EDD: self.edd,
        }[metric]

    def __len__(self) -> int:
        return len(self.cycles)


@dataclass(frozen=True)
class _ProfileInvariants:
    """Config-independent quantities of one profile, cached across
    batches so repeated campaign chunks do not recompute them."""

    instructions: float
    alu_energy: float


class IntervalSimulator:
    """Vectorised first-order simulator over a design space."""

    def __init__(
        self,
        space: Optional[DesignSpace] = None,
        fixed: Optional[FixedParameters] = None,
    ) -> None:
        self.space = space if space is not None else DesignSpace()
        self.fixed = fixed if fixed is not None else FixedParameters()
        # Space-invariant tables for the vectorised column build: the
        # value grids (as float arrays for np.isin), the feature
        # encoding divisors, and the unit-cube scaling bounds.
        parameters = self.space.parameters
        self._param_names = tuple(p.name for p in parameters)
        self._grids = tuple(
            np.asarray(p.values, dtype=float) for p in parameters
        )
        self._divisors = np.array(
            [p.encoding_divisor for p in parameters], dtype=float
        )
        lo, hi = self.space.feature_bounds()
        self._unit_lo = lo
        self._unit_span = hi - lo
        # Per-profile invariants, keyed by object identity (the profile
        # is kept referenced so the id stays valid).
        self._profiles: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def simulate(
        self, profile: WorkloadProfile, config: Configuration
    ) -> SimulationResult:
        """Simulate one configuration, returning a diagnostic breakdown."""
        columns = self._columns([config])
        cycles, energy, breakdown = self._evaluate(profile, columns)
        metrics = derive_metrics(cycles[0], energy[0])
        return SimulationResult(
            cycles=float(metrics[Metric.CYCLES]),
            energy=float(metrics[Metric.ENERGY]),
            ed=float(metrics[Metric.ED]),
            edd=float(metrics[Metric.EDD]),
            breakdown={name: float(values[0]) for name, values in breakdown.items()},
        )

    def simulate_batch(
        self, profile: WorkloadProfile, configs: Sequence[Configuration]
    ) -> BatchResult:
        """Simulate a batch of configurations in one vectorised pass."""
        if not configs:
            empty = np.empty(0)
            return BatchResult(empty, empty.copy(), empty.copy(), empty.copy())
        columns = self._columns(configs)
        return self._batch_from_columns(profile, columns)

    def simulate_suite(
        self,
        profiles: Sequence[WorkloadProfile],
        configs: Sequence[Configuration],
    ) -> List[BatchResult]:
        """Program-major 2-D evaluation: every profile over one batch.

        The configuration columns (validation, raw values, unit-cube
        coordinates) are built once and shared by all profiles, so a
        whole suite costs one column build plus one model pass per
        program.  Results are bit-identical to calling
        :meth:`simulate_batch` per profile.
        """
        profiles = list(profiles)
        if not configs:
            return [
                BatchResult(
                    np.empty(0), np.empty(0), np.empty(0), np.empty(0)
                )
                for _ in profiles
            ]
        columns = self._columns(configs)
        return [
            self._batch_from_columns(profile, columns)
            for profile in profiles
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _batch_from_columns(
        self, profile: WorkloadProfile, columns: Dict[str, np.ndarray]
    ) -> BatchResult:
        cycles, energy, _ = self._evaluate(profile, columns)
        metrics = derive_metrics(cycles, energy)
        return BatchResult(
            cycles=metrics[Metric.CYCLES],
            energy=metrics[Metric.ENERGY],
            ed=metrics[Metric.ED],
            edd=metrics[Metric.EDD],
        )

    def _columns(
        self, configs: Sequence[Configuration]
    ) -> Dict[str, np.ndarray]:
        """Raw parameter columns plus unit-cube coordinates.

        One vectorised pass: the raw value matrix is built from each
        configuration's canonical tuple, grid membership and the
        legality constraints are checked with array operations (the
        error names the offending configuration index), and the feature
        encoding divides by the per-parameter divisors — exactly
        :meth:`Parameter.encode` without the per-config Python loops.
        """
        raw = np.array([c.values() for c in configs], dtype=float)
        raw = raw.reshape(len(configs), len(self._param_names))
        # Batched grid validation, reported in canonical scan order
        # (lowest config index first, then parameter order).
        bad_config = None
        for j, grid in enumerate(self._grids):
            on_grid = np.isin(raw[:, j], grid)
            if not on_grid.all():
                index = int(np.argmin(on_grid))
                if bad_config is None or index < bad_config[0]:
                    bad_config = (index, j)
        if bad_config is not None:
            index, j = bad_config
            parameter = self.space.parameters[j]
            value = getattr(configs[index], parameter.name)
            raise ValueError(
                f"config[{index}]: {parameter.name}={value} is off the "
                f"grid {parameter.values}"
            )
        columns = {
            name: raw[:, j] for j, name in enumerate(self._param_names)
        }
        legal = (
            (columns["rob_size"] >= columns["iq_size"])
            & (columns["rob_size"] >= columns["lsq_size"])
            & (columns["rf_read_ports"] <= 2.0 * columns["width"])
            & (columns["rf_write_ports"] <= columns["width"])
            & (
                columns["l2cache_kb"]
                >= 8.0 * np.maximum(columns["icache_kb"], columns["dcache_kb"])
            )
        )
        if not legal.all():
            index = int(np.argmin(legal))
            raise ValueError(
                f"config[{index}] violates legality constraints: "
                f"{configs[index]}"
            )
        columns["_unit"] = (raw / self._divisors - self._unit_lo) / self._unit_span
        return columns

    def _invariants(self, profile: WorkloadProfile) -> _ProfileInvariants:
        """Cached config-independent per-profile quantities."""
        cached = self._profiles.get(id(profile))
        if cached is not None and cached[0] is profile:
            return cached[1]
        mix = profile.mix
        e = energy_model
        invariants = _ProfileInvariants(
            instructions=float(profile.instructions),
            alu_energy=(
                mix.int_alu * e.ALU_ENERGY["int_alu"]
                + mix.int_mul * e.ALU_ENERGY["int_mul"]
                + mix.fp_alu * e.ALU_ENERGY["fp_alu"]
                + mix.fp_mul * e.ALU_ENERGY["fp_mul"]
            ),
        )
        if len(self._profiles) > 128:  # bound the cache
            self._profiles.clear()
        self._profiles[id(profile)] = (profile, invariants)
        return invariants

    def _effective_window(
        self, profile: WorkloadProfile, columns: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Binding out-of-order window (instructions)."""
        mix = profile.mix
        rename = np.maximum(
            1.0,
            (columns["rf_size"] - self.fixed.architected_registers)
            / profile.dest_fraction,
        )
        branch_limit = columns["max_branches"] / max(mix.branch, 1e-6)
        iq_limit = columns["iq_size"] / profile.iq_pressure
        lsq_limit = columns["lsq_size"] / max(mix.memory, 1e-6)
        window = np.minimum(columns["rob_size"], rename)
        window = np.minimum(window, branch_limit)
        window = np.minimum(window, iq_limit)
        window = np.minimum(window, lsq_limit)
        return np.maximum(window, 1.0)

    def _structural_ipc(
        self, profile: WorkloadProfile, columns: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Width / ports / functional-unit issue-rate ceiling."""
        mix = profile.mix
        width = columns["width"]
        port_limit = np.minimum(
            columns["rf_read_ports"] / profile.reads_per_instruction,
            columns["rf_write_ports"] / profile.dest_fraction,
        )
        # Width-scaled functional units (Table 2b), vectorised.
        int_alu = width
        int_mul = np.maximum(1.0, np.ceil(width / 2.0))
        fp_alu = np.maximum(1.0, np.ceil(width / 2.0))
        fp_mul = np.maximum(1.0, np.ceil(width / 4.0))
        dports = np.maximum(1.0, np.ceil(width / 2.0))
        fu_limit = np.full_like(width, np.inf)
        for count, fraction in (
            (int_alu, mix.int_alu),
            (int_mul, mix.int_mul),
            (fp_alu, mix.fp_alu),
            (fp_mul, mix.fp_mul),
            (dports, mix.memory),
        ):
            if fraction > 1e-9:
                fu_limit = np.minimum(fu_limit, count / fraction)
        return np.minimum(width, np.minimum(port_limit, fu_limit))

    def _evaluate(
        self, profile: WorkloadProfile, columns: Dict[str, np.ndarray]
    ):
        """Core vectorised evaluation -> (cycles, energy, breakdown)."""
        fixed = self.fixed
        mix = profile.mix
        instructions = self._invariants(profile).instructions

        window = self._effective_window(profile, columns)
        ipc_window = np.asarray(profile.ilp(window), dtype=float)
        ipc_struct = self._structural_ipc(profile, columns)
        # Smooth minimum: both limits bind gradually, as in real machines.
        p = _SOFT_MIN_POWER
        ipc_base = (ipc_window**-p + ipc_struct**-p) ** (-1.0 / p)
        ipc_base = np.maximum(ipc_base, 1e-3)

        # Branches ---------------------------------------------------------
        branches = branch_penalties(
            profile.branches,
            mix.branch,
            columns["gshare_size"],
            columns["btb_size"],
        )
        resolve = window / (2.0 * ipc_base)
        mispredict_penalty = branches.mispredicts_per_instruction * (
            fixed.frontend_depth + fixed.branch_redirect_penalty + resolve
        )
        btb_penalty = branches.btb_bubbles_per_instruction * (
            fixed.branch_redirect_penalty + 1.0
        )

        # Instruction fetch -------------------------------------------------
        imiss = hierarchy_miss_ratios(
            profile.instruction_locality,
            columns["icache_kb"] * 1024.0,
            columns["l2cache_kb"] * 1024.0,
            fixed.l1_associativity,
            fixed.l2_associativity,
        )
        fetches_per_instruction = 1.0 / _INSTRUCTIONS_PER_FETCH
        icache_penalty = fetches_per_instruction * (
            imiss.l1 * (1.0 - imiss.l2_local) * fixed.l2_latency * 0.7
            + imiss.l2_global * fixed.memory_latency * 0.8
        )

        # Data memory ---------------------------------------------------------
        dmiss = hierarchy_miss_ratios(
            profile.data_locality,
            columns["dcache_kb"] * 1024.0,
            columns["l2cache_kb"] * 1024.0,
            fixed.l1_associativity,
            fixed.l2_associativity,
        )
        hide = np.exp(-window / profile.latency_hiding_scale)
        l2_hit_penalty = (
            mix.load * dmiss.l1 * (1.0 - dmiss.l2_local) * fixed.l2_latency * hide
        )
        misses_in_window = window * mix.load * dmiss.l2_global
        mlp = np.minimum(
            profile.mlp_max,
            np.minimum(1.0 + misses_in_window, float(fixed.mshr_entries)),
        )
        mlp = np.maximum(mlp, 1.0)
        memory_penalty = (
            mix.load * dmiss.l2_global * fixed.memory_latency / mlp
        )
        store_penalty = (
            mix.store * dmiss.l2_global * fixed.memory_latency * 0.15 / mlp
        )

        cpi = (
            1.0 / ipc_base
            + mispredict_penalty
            + btb_penalty
            + icache_penalty
            + l2_hit_penalty
            + memory_penalty
            + store_penalty
        )
        perf_factor = profile.idiosyncrasy_performance.factor(columns["_unit"])
        cycles = cpi * instructions * perf_factor

        # Energy -------------------------------------------------------------
        energy = self._energy(
            profile, columns, cycles, ipc_base, resolve, branches, imiss, dmiss
        )
        energy_factor = profile.idiosyncrasy_energy.factor(columns["_unit"])
        energy = energy * energy_factor

        breakdown = {
            "window": window,
            "ipc_base": ipc_base,
            "cpi": cpi,
            "mispredict_penalty": mispredict_penalty,
            "icache_penalty": icache_penalty,
            "l2_hit_penalty": l2_hit_penalty,
            "memory_penalty": memory_penalty,
            "l1d_miss_ratio": dmiss.l1,
            "l2d_local_miss_ratio": dmiss.l2_local,
            "mlp": mlp,
        }
        return cycles, energy, breakdown

    def _energy(
        self,
        profile: WorkloadProfile,
        columns: Dict[str, np.ndarray],
        cycles: np.ndarray,
        ipc_base: np.ndarray,
        resolve: np.ndarray,
        branches,
        imiss,
        dmiss,
    ) -> np.ndarray:
        """Wattch-style energy: activity x per-access energy + overheads."""
        fixed = self.fixed
        mix = profile.mix
        invariants = self._invariants(profile)
        instructions = invariants.instructions
        width = columns["width"]
        rf_ports = columns["rf_read_ports"] + columns["rf_write_ports"]

        # Per-access energies, vectorised over the batch.
        e = energy_model
        rob_read = e.array_read_energy(columns["rob_size"], 76, 2 * width)
        rob_write = e.array_write_energy(columns["rob_size"], 76, 2 * width)
        iq_write = e.array_write_energy(columns["iq_size"], 48, width)
        iq_wakeup = e.cam_search_energy(columns["iq_size"], 10)
        lsq_search = e.cam_search_energy(columns["lsq_size"], 40)
        lsq_write = e.array_write_energy(columns["lsq_size"], 72, width)
        rf_read = e.array_read_energy(columns["rf_size"], 64, rf_ports)
        rf_write = e.array_write_energy(columns["rf_size"], 64, rf_ports)
        gshare = e.array_read_energy(columns["gshare_size"], 2)
        btb = e.array_read_energy(columns["btb_size"], 60)
        icache = e.cache_access_energy(
            columns["icache_kb"] * 1024.0,
            fixed.l1_line_bytes,
            fixed.l1_associativity,
        )
        dcache = e.cache_access_energy(
            columns["dcache_kb"] * 1024.0,
            fixed.l1_line_bytes,
            fixed.l1_associativity,
        )
        l2 = e.cache_access_energy(
            columns["l2cache_kb"] * 1024.0,
            fixed.l2_line_bytes,
            fixed.l2_associativity,
        )
        rename = e.array_read_energy(64, 8, 2 * width)

        # Wrong-path inflation: speculatively fetched/renamed work that a
        # misprediction discards.
        wasted = np.clip(
            branches.mispredicts_per_instruction * ipc_base * resolve * 0.5,
            0.0,
            1.5,
        )
        spec = 1.0 + wasted

        alu = invariants.alu_energy
        per_instruction = (
            (1.0 / _INSTRUCTIONS_PER_FETCH) * icache * spec
            + mix.branch * (2.0 * gshare + btb) * spec
            + rename * spec
            + (rob_write + rob_read) * spec
            + (iq_write + iq_wakeup) * spec
            + profile.reads_per_instruction * rf_read * spec
            + profile.dest_fraction * rf_write * spec
            + mix.memory * (lsq_write + dcache) * spec
            + mix.load * lsq_search * spec
            + alu * spec
            + (imiss.l1 / _INSTRUCTIONS_PER_FETCH + mix.memory * dmiss.l1) * l2
        )

        # Area and static power.
        alu_units = {
            "int_alu": width,
            "int_mul": np.maximum(1.0, np.ceil(width / 2.0)),
            "fp_alu": np.maximum(1.0, np.ceil(width / 2.0)),
            "fp_mul": np.maximum(1.0, np.ceil(width / 4.0)),
        }
        alu_area = 1.6e5 * (
            alu_units["int_alu"]
            + 2.0 * alu_units["int_mul"]
            + 2.5 * alu_units["fp_alu"]
            + 4.0 * alu_units["fp_mul"]
        )
        area = (
            e.array_area(columns["rob_size"], 76, 2 * width)
            + e.array_area(columns["iq_size"], 48, width)
            + e.array_area(columns["lsq_size"], 72, width)
            + 2.0 * e.array_area(columns["rf_size"], 64, rf_ports)
            + e.array_area(columns["gshare_size"], 2)
            + e.array_area(columns["btb_size"], 60)
            + e.cache_area(columns["icache_kb"] * 1024.0)
            + e.cache_area(columns["dcache_kb"] * 1024.0)
            + e.cache_area(columns["l2cache_kb"] * 1024.0)
            + alu_area
        )
        leakage = area * e.LEAKAGE_PER_AREA
        clock = e.CLOCK_ENERGY_COEFF * np.sqrt(area) * width

        return instructions * per_instruction + cycles * (leakage + clock)


def simulate(
    profile: WorkloadProfile,
    config: Configuration,
    space: Optional[DesignSpace] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate one (program, configuration) pair."""
    return IntervalSimulator(space).simulate(profile, config)
