"""Parametric random workload generation for robustness studies.

The two fixed suites mimic SPEC CPU 2000 and MiBench.  For stress
testing the predictor beyond them — how does accuracy degrade as new
programs drift away from the training distribution? — this module draws
random but plausible profiles from a parametric family whose *drift*
knob interpolates between "another typical SPEC-like program" (0.0) and
"far outside anything in the pools" (1.0).

Used by the robustness example/tests; a generated suite behaves exactly
like the built-in ones (it is a normal :class:`BenchmarkSuite`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .builders import make_profile
from .profile import WorkloadProfile, stable_seed
from .suite import BenchmarkSuite

#: Knob ranges spanned by the typical (drift = 0) population; roughly the
#: envelope of the SPEC CPU 2000 profiles.
_TYPICAL = {
    "memory_fraction": (0.28, 0.40),
    "branch_fraction": (0.04, 0.17),
    "fp_fraction": (0.0, 0.6),
    "ilp_max": (1.8, 3.9),
    "ilp_window_scale": (40.0, 100.0),
    "hot_ws_kb": (12.0, 512.0),
    "big_ws_kb": (160.0, 24000.0),
    "big_weight": (0.02, 0.22),
    "ifootprint_kb": (16.0, 512.0),
    "mispredict_floor": (0.006, 0.08),
    "mlp_max": (1.25, 6.5),
}

#: How far (multiplicatively, in log space) the drifted population may
#: exceed the typical envelope at drift = 1.
_DRIFT_STRETCH = 2.5


def _draw(rng: np.random.Generator, low: float, high: float,
          drift: float) -> float:
    """Sample within the typical range, stretched outward by drift.

    Positive ranges are sampled log-uniformly (scale knobs: working
    sets, ILP); ranges touching zero are sampled linearly.
    """
    if low <= 0.0:
        stretch = drift * (high - low) * (_DRIFT_STRETCH - 1.0) / 2.0
        return float(rng.uniform(max(0.0, low - stretch), high + stretch))
    log_low, log_high = np.log(low), np.log(high)
    stretch = drift * np.log(_DRIFT_STRETCH)
    value = rng.uniform(log_low - stretch, log_high + stretch)
    return float(np.exp(value))


def random_profile(
    name: str,
    seed: Optional[int] = None,
    drift: float = 0.0,
    idiosyncrasy: float = 0.06,
) -> WorkloadProfile:
    """Draw one random workload profile.

    Args:
        name: Program name for the generated profile.
        seed: Draw seed (defaults to a stable hash of the name).
        drift: 0 = within the SPEC-like envelope; 1 = far outside it.
        idiosyncrasy: Private non-linear residual amplitude.
    """
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must be in [0, 1]")
    if seed is None:
        seed = stable_seed("synthetic", name)
    rng = np.random.default_rng(seed)
    knobs = {
        key: _draw(rng, low, high, drift)
        for key, (low, high) in _TYPICAL.items()
    }
    # Keep probabilities legal regardless of drift.
    memory = float(np.clip(knobs["memory_fraction"], 0.12, 0.5))
    branch = float(np.clip(knobs["branch_fraction"], 0.02, 0.24))
    fp = float(np.clip(knobs["fp_fraction"], 0.0, 0.8))
    floor = float(np.clip(knobs["mispredict_floor"], 0.002, 0.18))
    big_weight = float(np.clip(knobs["big_weight"], 0.005, 0.32))
    return make_profile(
        name,
        "synthetic",
        "generated",
        memory_fraction=memory,
        branch_fraction=branch,
        fp_fraction=fp,
        ilp_max=float(np.clip(knobs["ilp_max"], 1.2, 6.0)),
        ilp_window_scale=float(np.clip(knobs["ilp_window_scale"], 15, 250)),
        working_sets_kb=[
            (float(np.clip(knobs["hot_ws_kb"], 2, 2048)), 0.04),
            (float(np.clip(knobs["big_ws_kb"], 64, 64000)), big_weight),
        ],
        cold_miss=0.004,
        instruction_footprint_kb=float(
            np.clip(knobs["ifootprint_kb"], 4, 2048)
        ),
        mispredict_floor=floor,
        mispredict_scale=floor * 0.8 + 0.005,
        mlp_max=float(np.clip(knobs["mlp_max"], 1.0, 8.0)),
        idiosyncrasy=idiosyncrasy + 0.06 * drift,
    )


def synthetic_suite(
    count: int,
    seed: int = 0,
    drift: float = 0.0,
    name: str = "synthetic",
) -> BenchmarkSuite:
    """Generate a whole random suite of ``count`` programs."""
    if count < 1:
        raise ValueError("count must be at least 1")
    rng = np.random.default_rng(seed)
    profiles = [
        random_profile(
            f"{name}{index:03d}",
            seed=int(rng.integers(0, 2**32)),
            drift=drift,
        )
        for index in range(count)
    ]
    return BenchmarkSuite(name, profiles)


def drift_study_suites(
    count: int,
    drifts: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    seed: int = 0,
) -> dict:
    """One suite per drift level, for degradation studies."""
    return {
        drift: synthetic_suite(
            count, seed=seed + int(drift * 1000), drift=drift,
            name=f"drift{int(drift * 100):03d}",
        )
        for drift in drifts
    }
