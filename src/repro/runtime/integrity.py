"""Content checksums guarding on-disk simulation artefacts.

A silently truncated archive or a bit-flipped metric matrix is worse
than a lost one: it hydrates into a plausible-looking dataset and
poisons every model trained on it.  Both the campaign journal and the
dataset persistence layer therefore fingerprint their payloads with
SHA-256 and refuse to load anything whose recomputed digest disagrees.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Union

import numpy as np


def array_checksum(*arrays: np.ndarray) -> str:
    """SHA-256 hex digest over a sequence of arrays.

    Shape and dtype are folded into the digest so that a reshaped or
    re-typed matrix with identical bytes does not collide.
    """
    digest = hashlib.sha256()
    for array in arrays:
        array = np.asarray(array)
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def file_checksum(path: Union[str, pathlib.Path]) -> str:
    """SHA-256 hex digest of a file's raw bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()
