"""Feature and target scalers used by the learning machinery.

Neural networks need inputs and targets in a numerically friendly range.
Both scalers follow the fit/transform protocol, are exactly invertible,
and tolerate constant columns (zero spread maps to zero, not NaN).
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaler."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot fit a scaler on empty data")
        self.mean_ = values.mean(axis=0)
        scale = values.std(axis=0)
        self.scale_ = np.where(scale > 0.0, scale, 1.0)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Scale values using the fitted statistics."""
        self._require_fitted()
        return (np.asarray(values, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original units."""
        self._require_fitted()
        return np.asarray(values, dtype=float) * self.scale_ + self.mean_

    def _require_fitted(self) -> None:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler has not been fitted")


class MinMaxScaler:
    """Scaler mapping each column onto [0, 1] over the fitted range.

    Bounds may also be supplied directly (``fit_bounds``) — the design
    space knows its exact grid extents, which beats estimating them from
    a small training sample.
    """

    def __init__(self) -> None:
        self.low_: np.ndarray | None = None
        self.high_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        """Learn per-column bounds from data."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot fit a scaler on empty data")
        return self.fit_bounds(values.min(axis=0), values.max(axis=0))

    def fit_bounds(self, low: np.ndarray, high: np.ndarray) -> "MinMaxScaler":
        """Use known exact bounds instead of estimating them."""
        low = np.asarray(low, dtype=float)
        high = np.asarray(high, dtype=float)
        if low.shape != high.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(high < low):
            raise ValueError("high must be >= low")
        self.low_ = low
        self.high_ = high
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Scale values into the unit interval."""
        self._require_fitted()
        spread = np.where(self.high_ > self.low_, self.high_ - self.low_, 1.0)
        return (np.asarray(values, dtype=float) - self.low_) / spread

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map unit-interval values back to the original units."""
        self._require_fitted()
        spread = np.where(self.high_ > self.low_, self.high_ - self.low_, 1.0)
        return np.asarray(values, dtype=float) * spread + self.low_

    def _require_fitted(self) -> None:
        if self.low_ is None or self.high_ is None:
            raise RuntimeError("scaler has not been fitted")
