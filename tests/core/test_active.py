"""Tests for active response selection (the beyond-paper extension)."""

import numpy as np
import pytest

from repro.core import (
    ArchitectureCentricPredictor,
    model_disagreement,
    select_responses,
)
from repro.sim import Metric


@pytest.fixture(scope="module")
def models(cycles_pool):
    return cycles_pool.models(exclude=["applu"])


class TestDisagreement:
    def test_shape(self, models, small_dataset):
        configs = list(small_dataset.configs[:50])
        scores = model_disagreement(models, configs)
        assert scores.shape == (50,)
        assert np.all(scores >= 0)

    def test_empty_configs(self, models):
        assert model_disagreement(models, []).shape == (0,)

    def test_no_models_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            model_disagreement([], list(small_dataset.configs[:5]))

    def test_varies_over_space(self, models, small_dataset):
        scores = model_disagreement(models, list(small_dataset.configs[:200]))
        assert scores.std() > 0


class TestSelectResponses:
    def test_count_and_uniqueness(self, models, small_dataset):
        candidates = list(small_dataset.configs[:300])
        chosen = select_responses(models, candidates, 32, seed=1)
        assert len(chosen) == 32
        assert len(set(chosen)) == 32
        assert all(0 <= i < 300 for i in chosen)

    def test_deterministic(self, models, small_dataset):
        candidates = list(small_dataset.configs[:200])
        a = select_responses(models, candidates, 16, seed=5)
        b = select_responses(models, candidates, 16, seed=5)
        assert a == b

    def test_first_pick_maximises_disagreement(self, models, small_dataset):
        candidates = list(small_dataset.configs[:200])
        chosen = select_responses(models, candidates, 4, seed=2)
        scores = model_disagreement(models, candidates)
        assert chosen[0] == int(np.argmax(scores))

    def test_invalid_count_rejected(self, models, small_dataset):
        candidates = list(small_dataset.configs[:10])
        with pytest.raises(ValueError):
            select_responses(models, candidates, 11)
        with pytest.raises(ValueError):
            select_responses(models, candidates, 0)

    def test_negative_diversity_rejected(self, models, small_dataset):
        with pytest.raises(ValueError):
            select_responses(models, list(small_dataset.configs[:10]), 2,
                             diversity_weight=-1.0)

    def test_active_selection_is_usable(self, models, small_dataset):
        """Fitting on actively chosen responses must give a working
        predictor (comparable to random selection)."""
        candidates = list(small_dataset.configs)
        chosen = select_responses(models, candidates, 32, seed=3)
        predictor = ArchitectureCentricPredictor(models)
        predictor.fit_responses(
            [candidates[i] for i in chosen],
            small_dataset.values("applu", Metric.CYCLES)[chosen],
        )
        rest = [i for i in range(len(candidates)) if i not in set(chosen)]
        scores = predictor.evaluate(
            small_dataset.subset_configs(rest),
            small_dataset.subset_values("applu", Metric.CYCLES, rest),
        )
        assert scores["correlation"] > 0.8
