"""Find energy-delay sweet spots for a new program without simulating it.

The scenario the paper's introduction motivates: an architect wants the
configurations where performance and power are optimally balanced
("sweet spots") for a workload, but can only afford a few real
simulations of it.  This example:

1. characterises the new program with 32 responses,
2. *predicts* ED over a 20,000-configuration sample of the space,
3. short-lists the predicted-best machines,
4. spends a handful of real simulations verifying the short-list.

Run:  python examples/sweet_spot_search.py
"""

import numpy as np

from repro import (
    ArchitectureCentricPredictor,
    DesignSpaceDataset,
    Metric,
    TrainingPool,
    sample_configurations,
    spec2000_suite,
)

NEW_PROGRAM = "equake"
SEARCH_SIZE = 20_000
SHORTLIST = 8


def main() -> None:
    suite = spec2000_suite()
    dataset = DesignSpaceDataset.sampled(suite, sample_size=1000, seed=3)
    space = dataset.simulator.space

    pool = TrainingPool(dataset, Metric.ED, training_size=512, seed=0)
    predictor = ArchitectureCentricPredictor(
        pool.models(exclude=[NEW_PROGRAM])
    )
    response_idx, _ = dataset.split_indices(32, seed=11)
    predictor.fit_responses(
        dataset.subset_configs(response_idx),
        dataset.subset_values(NEW_PROGRAM, Metric.ED, response_idx),
    )
    print(f"Characterised {NEW_PROGRAM} with 32 simulations "
          f"(training error {predictor.training_error:.1f}%)")

    # Predict a much larger sample of the space than we could simulate.
    candidates = sample_configurations(space, SEARCH_SIZE, seed=99)
    predicted = predictor.predict(candidates)
    order = np.argsort(predicted)
    print(f"Predicted ED over {SEARCH_SIZE:,} candidate configurations")

    # Verify the shortlist with real simulations.
    profile = suite[NEW_PROGRAM]
    print(f"\nTop {SHORTLIST} predicted sweet spots (verified):")
    print(f"{'rank':>4} {'predicted ED':>14} {'simulated ED':>14}  machine")
    shortlist_actual = []
    for rank, index in enumerate(order[:SHORTLIST], start=1):
        config = candidates[index]
        actual = dataset.simulator.simulate(profile, config).ed
        shortlist_actual.append(actual)
        summary = (f"width={config.width} rob={config.rob_size} "
                   f"rf={config.rf_size} L2={config.l2cache_kb}KB")
        print(f"{rank:>4} {predicted[index]:>14.4e} {actual:>14.4e}  {summary}")

    baseline_ed = dataset.simulator.simulate(profile, space.baseline).ed
    best = min(shortlist_actual)
    print(f"\nBaseline machine ED: {baseline_ed:.4e}")
    print(f"Best verified sweet spot improves ED by "
          f"{(1 - best / baseline_ed) * 100:.1f}% over the baseline, "
          f"found with 32 + {SHORTLIST} real simulations in total.")


if __name__ == "__main__":
    main()
