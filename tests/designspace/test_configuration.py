"""Tests for the Configuration value object."""

import pytest

from repro.designspace import Configuration
from repro.designspace.configuration import PARAMETER_ORDER


def _baseline() -> Configuration:
    return Configuration(
        width=4, rob_size=96, iq_size=32, lsq_size=48, rf_size=96,
        rf_read_ports=8, rf_write_ports=4, gshare_size=16384,
        btb_size=4096, max_branches=16, icache_kb=32, dcache_kb=32,
        l2cache_kb=2048,
    )


class TestConfiguration:
    def test_values_follow_canonical_order(self):
        config = _baseline()
        values = config.values()
        assert values[0] == config.width
        assert values[-1] == config.l2cache_kb
        assert len(values) == len(PARAMETER_ORDER)

    def test_as_dict_round_trips(self):
        config = _baseline()
        assert Configuration.from_values(config.as_dict()) == config

    def test_from_values_tuple(self):
        config = _baseline()
        assert Configuration.from_values(config.values()) == config

    def test_from_values_wrong_length(self):
        with pytest.raises(ValueError, match="13"):
            Configuration.from_values((1, 2, 3))

    def test_replace(self):
        config = _baseline().replace(width=8)
        assert config.width == 8
        assert config.rob_size == 96

    def test_replace_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown"):
            _baseline().replace(cache_levels=3)

    def test_hashable_and_equal(self):
        assert _baseline() == _baseline()
        assert hash(_baseline()) == hash(_baseline())
        assert len({_baseline(), _baseline().replace(width=8)}) == 2

    def test_iter(self):
        assert tuple(_baseline()) == _baseline().values()

    def test_str_mentions_parameters(self):
        text = str(_baseline())
        assert "width=4" in text
        assert "l2cache_kb=2048" in text

    def test_immutable(self):
        with pytest.raises(AttributeError):
            _baseline().width = 8
