"""Rendering of the paper's Table 1 and Table 2 as ASCII tables.

These renderers back the ``bench_table1_design_space`` and
``bench_table2_fixed_params`` benchmark targets, which print the design
space inventory exactly the way the paper tabulates it: parameter, value
range with step, number of distinct values, and the baseline value.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .space import DesignSpace


def _render(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a minimal aligned ASCII table."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(space: DesignSpace) -> str:
    """Render Table 1: varied parameters, ranges, cardinalities, baseline."""
    rows: List[Tuple[str, str, str, str]] = []
    for parameter in space.parameters:
        rows.append(
            (
                parameter.label,
                f"{parameter.describe_range()} {parameter.unit}".strip(),
                str(parameter.cardinality),
                str(parameter.baseline),
            )
        )
    table = _render(("Parameter", "Range : step", "Values", "Baseline"), rows)
    footer = (
        f"\nRaw cross product : {space.raw_size:,} configurations"
        f"\nLegal subspace    : {space.legal_size:,} configurations"
    )
    return table + footer


def render_table2(fixed_parameters: Sequence[Tuple[str, str]],
                  width_scaled: Sequence[Tuple[str, str]]) -> str:
    """Render Table 2: (a) constant parameters, (b) width-scaled units.

    Args:
        fixed_parameters: (name, value) pairs that never vary.
        width_scaled: (name, rule) pairs scaled from the pipeline width.
    """
    part_a = _render(("Constant parameter", "Value"),
                     [tuple(row) for row in fixed_parameters])
    part_b = _render(("Width-scaled unit", "Count rule"),
                     [tuple(row) for row in width_scaled])
    return f"(a) Constant\n{part_a}\n\n(b) Related to width\n{part_b}"
