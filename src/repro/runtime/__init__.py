"""Fault-tolerant campaign execution for long simulation runs.

The paper's pipeline rests on large offline campaigns — T = 512
simulations per training program across a 26-program suite, plus R = 32
responses per new program.  This package makes those campaigns
survivable: every batch of simulations runs behind a
:class:`SimulationBackend` interface with retry, backoff and a circuit
breaker, completed work is journalled to disk with content checksums,
and an interrupted campaign resumes from the last good chunk instead of
restarting from zero.

Public surface:

* :class:`SimulationBackend` / :class:`IntervalBackend` — the backend
  interface and its interval-simulator implementation; backends may
  additionally offer the program-major ``simulate_suite`` fast path,
  discovered via :func:`supports_suite`.
* :class:`FaultInjectingBackend` — deterministic, seeded fault injection
  (transient errors, NaN/Inf corruption, latency stalls); the test
  substrate for every resilience feature.
* :class:`RetryPolicy` / :class:`CircuitBreaker` /
  :func:`call_with_retry` — per-batch retry with exponential backoff,
  jitter, a per-call timeout guard and trip-after-K-failures breaking.
* :class:`CampaignRunner` / :class:`CampaignResult` — the chunked,
  journalled, resumable campaign executor.
* :class:`CampaignJournal` — the append-only on-disk journal.
* :class:`VirtualClock` — a deterministic clock/sleep pair for tests.
* :func:`write_archive` / :func:`read_archive` — the shared checksummed
  ``.npz`` artifact layer under datasets, model pools and the registry.
"""

from .artifact import payload_checksum, read_archive, write_archive
from .backend import (
    CorruptResultError,
    IntervalBackend,
    SimulationBackend,
    SimulationError,
    supports_suite,
    validate_batch,
)
from .campaign import CampaignCell, CampaignPlan, CampaignResult, CampaignRunner
from .faults import (
    FaultInjectingBackend,
    PermanentSimulationError,
    TransientSimulationError,
    VirtualClock,
)
from .integrity import array_checksum, file_checksum
from .journal import CampaignJournal
from .retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    SimulationTimeoutError,
    call_with_retry,
)

__all__ = [
    "CampaignCell",
    "CampaignJournal",
    "CampaignPlan",
    "CampaignResult",
    "CampaignRunner",
    "CircuitBreaker",
    "CircuitOpenError",
    "CorruptResultError",
    "FaultInjectingBackend",
    "IntervalBackend",
    "PermanentSimulationError",
    "RetryPolicy",
    "SimulationBackend",
    "SimulationError",
    "SimulationTimeoutError",
    "TransientSimulationError",
    "VirtualClock",
    "array_checksum",
    "call_with_retry",
    "file_checksum",
    "payload_checksum",
    "read_archive",
    "supports_suite",
    "validate_batch",
    "write_archive",
]
