"""Synthetic stand-ins for the SPEC CPU 2000 benchmark suite.

SPEC CPU 2000 binaries are licensed, so each of the 26 programs is
replaced by a statistical profile qualitatively modelled on its widely
published characterisation (working-set sizes, branch behaviour, ILP,
memory-boundedness).  The paper's Section 4 analysis identifies ``art``
and ``mcf`` as the suite's outliers — far from every other program in
design-space distance and hardest to predict — so those two profiles are
deliberately extreme: ``art`` has a cache-defeating ~3.6 MB working set
with high memory-level parallelism, ``mcf`` chases pointers through a
multi-hundred-megabyte footprint with almost no MLP.  Both also carry a
larger idiosyncratic residual, reproducing their elevated prediction
error in Figures 5 and 11.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .builders import make_profile
from .profile import WorkloadProfile
from .suite import BenchmarkSuite

#: knobs per program: (category, memory, branch, fp, ilp_max, window_scale,
#: working sets [(KB, weight)...], cold, ifootprint KB, mispred floor,
#: mispred scale, mlp_max, idiosyncrasy)
_SPEC_KNOBS: Dict[str, Tuple] = {
    # ---------------------------------------------------------- integer
    "gzip": ("int", 0.31, 0.14, 0.00, 2.6, 45,
             [(64, 0.05), (256, 0.03)], 0.002, 32, 0.055, 0.045, 2.4, 0.05),
    "vpr": ("int", 0.34, 0.13, 0.02, 2.2, 55,
            [(16, 0.04), (1500, 0.05)], 0.003, 48, 0.075, 0.060, 2.0, 0.05),
    "gcc": ("int", 0.35, 0.17, 0.00, 2.3, 50,
            [(32, 0.05), (2048, 0.04)], 0.004, 320, 0.060, 0.075, 2.2, 0.06),
    "mcf": ("int", 0.39, 0.16, 0.00, 1.6, 90,
            [(64, 0.03), (24000, 0.22)], 0.010, 24, 0.080, 0.055, 1.25, 0.30),
    "crafty": ("int", 0.29, 0.15, 0.00, 3.0, 40,
               [(48, 0.05), (512, 0.02)], 0.002, 96, 0.070, 0.070, 2.2, 0.05),
    "parser": ("int", 0.33, 0.16, 0.00, 2.1, 50,
               [(24, 0.04), (640, 0.04)], 0.003, 64, 0.065, 0.060, 1.9, 0.04),
    "eon": ("int", 0.32, 0.12, 0.18, 2.8, 45,
            [(20, 0.04), (160, 0.02)], 0.002, 128, 0.045, 0.040, 2.0, 0.05),
    "perlbmk": ("int", 0.34, 0.17, 0.00, 2.4, 48,
                [(40, 0.05), (768, 0.03)], 0.003, 256, 0.055, 0.065, 2.0, 0.05),
    "gap": ("int", 0.33, 0.13, 0.01, 2.5, 50,
            [(48, 0.04), (1024, 0.04)], 0.003, 96, 0.050, 0.050, 2.3, 0.05),
    "vortex": ("int", 0.36, 0.15, 0.00, 2.4, 52,
               [(64, 0.05), (2560, 0.04)], 0.004, 384, 0.040, 0.050, 2.2, 0.05),
    "bzip2": ("int", 0.32, 0.13, 0.00, 2.7, 45,
              [(96, 0.05), (3072, 0.04)], 0.002, 32, 0.050, 0.045, 2.6, 0.05),
    "twolf": ("int", 0.33, 0.14, 0.02, 2.2, 55,
              [(12, 0.04), (900, 0.05)], 0.003, 64, 0.075, 0.065, 1.9, 0.05),
    # ----------------------------------------------------- floating point
    "wupwise": ("fp", 0.30, 0.06, 0.55, 3.8, 70,
                [(128, 0.04), (4096, 0.03)], 0.002, 40, 0.012, 0.015, 3.5, 0.05),
    "swim": ("fp", 0.36, 0.04, 0.60, 3.5, 85,
             [(512, 0.05), (15000, 0.12)], 0.004, 24, 0.008, 0.010, 5.5, 0.06),
    "mgrid": ("fp", 0.37, 0.04, 0.58, 3.6, 80,
              [(384, 0.05), (9000, 0.09)], 0.003, 24, 0.007, 0.010, 5.0, 0.05),
    "applu": ("fp", 0.35, 0.05, 0.57, 3.4, 80,
              [(256, 0.05), (12000, 0.10)], 0.003, 40, 0.009, 0.012, 4.5, 0.05),
    "mesa": ("fp", 0.31, 0.09, 0.40, 3.0, 50,
             [(32, 0.04), (512, 0.02)], 0.002, 96, 0.030, 0.030, 2.5, 0.05),
    "galgel": ("fp", 0.33, 0.06, 0.55, 3.9, 75,
               [(96, 0.05), (2048, 0.05)], 0.002, 40, 0.012, 0.015, 4.0, 0.06),
    "art": ("fp", 0.41, 0.07, 0.45, 1.8, 100,
            [(48, 0.03), (3700, 0.30)], 0.006, 16, 0.020, 0.020, 6.5, 0.50),
    "equake": ("fp", 0.38, 0.07, 0.48, 2.4, 70,
               [(64, 0.05), (8000, 0.11)], 0.004, 32, 0.020, 0.020, 3.5, 0.06),
    "facerec": ("fp", 0.32, 0.06, 0.52, 3.2, 65,
                [(128, 0.05), (3500, 0.05)], 0.003, 40, 0.015, 0.018, 3.5, 0.05),
    "ammp": ("fp", 0.36, 0.08, 0.46, 2.3, 70,
             [(32, 0.04), (5000, 0.09)], 0.004, 48, 0.025, 0.025, 2.5, 0.06),
    "lucas": ("fp", 0.34, 0.04, 0.58, 3.3, 80,
              [(256, 0.05), (10000, 0.09)], 0.003, 24, 0.006, 0.009, 4.5, 0.05),
    "fma3d": ("fp", 0.34, 0.08, 0.50, 2.9, 60,
              [(96, 0.05), (4500, 0.06)], 0.004, 512, 0.022, 0.025, 3.0, 0.05),
    "sixtrack": ("fp", 0.29, 0.07, 0.55, 3.7, 60,
                 [(48, 0.04), (768, 0.02)], 0.002, 192, 0.015, 0.018, 3.0, 0.05),
    "apsi": ("fp", 0.33, 0.07, 0.52, 3.1, 65,
             [(96, 0.05), (2500, 0.05)], 0.003, 64, 0.018, 0.020, 3.2, 0.05),
}

#: Programs the paper's integer/floating-point split contains.
SPEC_INT = tuple(
    name for name, knobs in _SPEC_KNOBS.items() if knobs[0] == "int"
)
SPEC_FP = tuple(
    name for name, knobs in _SPEC_KNOBS.items() if knobs[0] == "fp"
)


def spec2000_profile(name: str) -> WorkloadProfile:
    """Build the synthetic profile for one SPEC CPU 2000 program."""
    try:
        knobs = _SPEC_KNOBS[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC CPU 2000 program {name!r}; "
            f"known: {sorted(_SPEC_KNOBS)}"
        ) from None
    (category, memory, branch, fp, ilp, window, working_sets, cold,
     ifootprint, floor, scale, mlp, idiosyncrasy) = knobs
    return make_profile(
        name,
        "spec2000",
        category,
        memory_fraction=memory,
        branch_fraction=branch,
        fp_fraction=fp,
        ilp_max=ilp,
        ilp_window_scale=window,
        working_sets_kb=working_sets,
        cold_miss=cold,
        instruction_footprint_kb=ifootprint,
        mispredict_floor=floor,
        mispredict_scale=scale,
        mlp_max=mlp,
        idiosyncrasy=idiosyncrasy,
    )


def spec2000_suite() -> BenchmarkSuite:
    """The full synthetic SPEC CPU 2000 suite (26 programs)."""
    return BenchmarkSuite(
        "spec2000", tuple(spec2000_profile(name) for name in _SPEC_KNOBS)
    )
