"""The campaign coordinator: one work queue, many hosts.

The coordinator owns everything stateful about a distributed campaign —
the work queue of (program, chunk) cells from
:meth:`~repro.runtime.campaign.CampaignRunner.plan`, the checkpoint
journal, the lease table — and workers own nothing: they connect, lease
a task, simulate it and ship the arrays back.  That asymmetry is the
whole fault story:

* a worker that **dies** drops its TCP connection and every lease it
  held is requeued immediately;
* a worker that **hangs** misses its lease deadline (heartbeats extend
  it while real progress is being made) and the lease is reclaimed by
  the monitor loop;
* a worker that **keeps failing** trips its per-worker
  :class:`~repro.runtime.retry.CircuitBreaker` and is drained rather
  than fed more of the campaign;
* a **stale result** for a cell another worker already finished is
  acknowledged and discarded, never double-journalled;
* a **straggler** gets its outstanding lease speculatively re-leased to
  an idle faster worker (*work stealing*) — whichever copy finishes
  first wins, the loser is cancelled, and the journal records exactly
  one result;
* an **elastic fleet** is first-class: workers advertise capabilities
  at HELLO and the :class:`~repro.distrib.membership.FleetMembership`
  roster sizes lease bundles capacity-weighted, admits late joiners
  mid-campaign, and flags workers whose observed completion rate drops
  below a fraction of the fleet median.

Completed cells go through the *same*
:meth:`~repro.runtime.campaign.CampaignRunner.store_cell` path as a
serial run — same checksummed ``.npz`` files, same journal records — so
``--resume`` is transparent across serial, process-parallel and
distributed executions, and per-task retry seeds are the same
``stable_seed("campaign-retry", cell, seed)`` stream the serial loop
draws from, which is what makes a distributed campaign bit-identical
to a serial one regardless of worker count or interleaving.
"""

from __future__ import annotations

import asyncio
import signal
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import __version__
from repro.designspace.configuration import Configuration
from repro.obs import (
    ObservabilityEndpoint,
    SLOTracker,
    TimeSeriesSampler,
    get_logger,
    get_registry,
    get_tracer,
    git_sha,
    span,
)
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, dump_json
from repro.runtime.backend import SimulationError, validate_batch
from repro.runtime.campaign import (
    CampaignCell,
    CampaignPlan,
    CampaignResult,
    CampaignRunner,
)
from repro.runtime.retry import CircuitBreaker
from repro.sim.metrics import Metric
from repro.workloads.profile import stable_seed

from .membership import FleetMembership, WorkerCapabilities
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    read_message,
    write_message,
)
from .wire import (
    batch_checksum,
    batch_from_wire,
    configs_to_wire,
    policy_to_wire,
    profile_to_wire,
)

__all__ = [
    "CampaignCoordinator",
    "CoordinatorStats",
    "fetch_status",
    "fetch_status_async",
]

_log = get_logger(__name__)


@dataclass
class _Lease:
    """One outstanding task: which cell, whose worker, until when."""

    lease_id: str
    cell: CampaignCell
    worker_id: str
    deadline: float
    issued_at: float
    speculative: bool = False  # a stolen duplicate of a live lease


@dataclass
class _WorkerState:
    """Per-worker accounting and the worker's circuit breaker."""

    worker_id: str
    breaker: CircuitBreaker
    connected_at: float
    last_seen: float
    tasks_completed: int = 0
    version: str = ""
    sha: Optional[str] = None


@dataclass
class CoordinatorStats:
    """Run accounting the benchmarks and smoke tests read.

    Attributes:
        workers_seen: Distinct workers that completed the handshake.
        tasks_issued: Leases handed out (requeues included).
        tasks_completed: Results accepted and journalled.
        stale_results: Results for cells already completed elsewhere.
        reclaims: Leases reclaimed from dead or expired workers.
        reclaim_latencies: Seconds from lease expiry (or disconnect)
            to reclaim, one entry per reclaim.
        first_task_at: Monotonic time the first lease was issued.
        finished_at: Monotonic time the campaign completed.
        steals: Speculative duplicate leases issued to idle workers.
        speculative_wins: Stolen leases whose copy finished first.
        rebalances: Slow/recovered flag flips from the rate scan.
        joins: HELLO handshakes (reconnects included).
        leaves: Workers that disconnected or said goodbye.
        releases: Leases handed back cleanly by a draining worker.
    """

    workers_seen: int = 0
    tasks_issued: int = 0
    tasks_completed: int = 0
    stale_results: int = 0
    reclaims: int = 0
    reclaim_latencies: List[float] = field(default_factory=list)
    first_task_at: Optional[float] = None
    finished_at: Optional[float] = None
    steals: int = 0
    speculative_wins: int = 0
    rebalances: int = 0
    joins: int = 0
    leaves: int = 0
    releases: int = 0

    @property
    def elapsed(self) -> Optional[float]:
        """Seconds from first lease to completion (``None`` if idle)."""
        if self.first_task_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.first_task_at


class CampaignCoordinator:
    """Shard one campaign across TCP-connected workers.

    Args:
        runner: The campaign runner whose checkpoint directory, chunk
            size, retry policy and seed define the campaign.  All
            journalling goes through it, so the checkpoint is
            indistinguishable from a serial run's.
        host: Bind address (use ``0.0.0.0`` to accept remote workers).
        port: Bind port; 0 picks a free one (read :attr:`port` after
            the server is up).
        lease_timeout: Seconds a worker may hold a lease without a
            heartbeat before it is reclaimed.
        monitor_interval: How often the reclaim monitor scans leases.
        max_requeues: Reclaims of one cell before it is marked failed
            (guards against a task that kills every worker it visits).
        worker_breaker_threshold: Consecutive reclaims/failures that
            circuit-break one worker out of the campaign.
        min_workers: Hold task hand-out until this many workers have
            connected (benchmarks use it to time pure execution).
        max_bundle: Ceiling on cells per capacity-weighted lease
            bundle (1 restores the old one-chunk-at-a-time hand-out).
        steal_after_fraction: An idle worker may steal (speculatively
            re-lease) an un-duplicated lease once the lease is older
            than this fraction of ``lease_timeout``; leases held by a
            slow-flagged worker can be stolen immediately.  Values
            above 1 effectively disable stealing (expiry reclaims the
            lease first).
        slow_fraction: Observed-rate threshold (fraction of the fleet
            median) below which a worker is flagged slow.
        http_port: When not ``None``, serve read-only HTTP twins of
            the status endpoint on this port (0 picks a free one; read
            :attr:`http_port` once running): ``/metrics`` (Prometheus
            text), ``/healthz`` and ``/status`` — the same surface
            ``repro serve`` exposes, for the same scrapers.
        slo: Objectives evaluated each sampling tick against the
            campaign time series; state rides the status payload,
            ``slo.*`` gauges, and ``/metrics``.
        sample_interval: Seconds between
            :class:`~repro.obs.TimeSeriesSampler` ticks feeding the
            throughput series, windowed percentiles and SLO burn.
        series_capacity: Ring-buffer points retained per instrument.
    """

    def __init__(
        self,
        runner: CampaignRunner,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 60.0,
        monitor_interval: float = 0.1,
        max_requeues: int = 5,
        worker_breaker_threshold: int = 3,
        min_workers: int = 0,
        max_bundle: int = 4,
        steal_after_fraction: float = 0.25,
        slow_fraction: float = 0.25,
        http_port: Optional[int] = None,
        slo: Optional[SLOTracker] = None,
        sample_interval: float = 1.0,
        series_capacity: int = 720,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_requeues < 1:
            raise ValueError("max_requeues must be at least 1")
        if steal_after_fraction <= 0.0:
            raise ValueError("steal_after_fraction must be positive")
        self.runner = runner
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.monitor_interval = monitor_interval
        self.max_requeues = max_requeues
        self.worker_breaker_threshold = worker_breaker_threshold
        self.min_workers = min_workers
        self.steal_after_fraction = steal_after_fraction
        self.stats = CoordinatorStats()
        self.membership = FleetMembership(
            max_bundle=max_bundle, slow_fraction=slow_fraction
        )
        #: Chaos harness hook: injected fault events land here and ride
        #: out on the status endpoint (the coordinator never writes it).
        self.chaos_log: List[Dict] = []
        # Campaign state, created by run_async().
        self._plan: Optional[CampaignPlan] = None
        self._values: Dict[Tuple[str, Metric], np.ndarray] = {}
        self._queue: Deque[CampaignCell] = deque()
        self._not_before: Dict[str, float] = {}
        self._requeues: Dict[str, int] = {}
        self._leases: Dict[str, _Lease] = {}
        self._cell_leases: Dict[str, List[str]] = {}  # cell -> lease ids
        self._done: Dict[str, int] = {}  # cell id -> worker attempts
        self._failed: Dict[str, str] = {}  # cell id -> error
        self._workers: Dict[str, _WorkerState] = {}
        self._connections: Dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._connected = 0
        self._barrier_open = min_workers <= 0
        self._draining = False
        self._complete = asyncio.Event()
        self._abort: Optional[SimulationError] = None
        self._fail_fast = False
        self._server: Optional[asyncio.base_events.Server] = None
        # Observability plane, started alongside the TCP server.
        self.http_port = http_port
        self.slo = slo
        self.sample_interval = sample_interval
        self.sampler = TimeSeriesSampler(capacity=series_capacity)
        self.trace_id: Optional[str] = None
        self._root_span_id: Optional[str] = None
        self._http: Optional[ObservabilityEndpoint] = None
        self._slo_statuses: List[Dict] = []

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(
        self,
        profiles,
        configs: Sequence[Configuration],
        resume: bool = True,
        fail_fast: bool = False,
        ready_callback=None,
    ) -> CampaignResult:
        """Blocking wrapper: serve the campaign until it completes.

        Mirrors :meth:`CampaignRunner.run`'s manifest contract — a
        completed campaign writes its run manifest, an interrupted one
        (SIGTERM, Ctrl-C, crash) writes an ``interrupted`` manifest
        before re-raising.
        """
        started = time.time()
        trace_start = get_tracer().mark()
        try:
            result = asyncio.run(
                self.run_async(
                    profiles, configs, resume=resume, fail_fast=fail_fast,
                    ready_callback=ready_callback, install_signals=True,
                )
            )
        except BaseException as error:
            self.runner._write_interrupted_manifest(
                error, trace_start, started
            )
            raise
        self.runner._finalize(result, trace_start, started)
        return result

    async def run_async(
        self,
        profiles,
        configs: Sequence[Configuration],
        resume: bool = True,
        fail_fast: bool = False,
        ready_callback=None,
        install_signals: bool = False,
    ) -> CampaignResult:
        """Serve the campaign on the current event loop."""
        plan = self.runner.plan(profiles, configs, resume)
        self._plan = plan
        self._fail_fast = fail_fast
        self._values = {
            (program, metric): np.full(len(plan.configs), np.nan)
            for program in plan.programs
            for metric in Metric.all()
        }
        resumed = self._restore_completed(plan)
        self._queue = deque(plan.remaining)
        _log.info(
            "coordinator: %d cell(s) total, %d journalled, %d to "
            "distribute",
            len(plan.cells), resumed, len(self._queue),
            extra={"event": "distrib.start", "cells": len(plan.cells),
                   "resumed": resumed, "queued": len(self._queue)},
        )
        if not self._queue:
            self._complete.set()

        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.initiate_drain)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-Unix loop or not the main thread

        # One trace id for the whole campaign: the coordinator mints it,
        # every task ships it, every worker span stitches under it.
        self.trace_id = get_tracer().ensure_trace_id()
        with span("distrib.coordinate", cells=len(plan.cells)) as root:
            self._root_span_id = root["span_id"] if root else None
            self._server = await asyncio.start_server(
                self._handle_worker, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            get_registry().gauge("distrib.coordinator.up").set(1)
            if self.http_port is not None:
                self._http = ObservabilityEndpoint(
                    self._http_routes(), host=self.host,
                    port=self.http_port,
                )
                await self._http.start()
                self.http_port = self._http.port
                _log.info(
                    "coordinator observability HTTP on %s:%d",
                    self.host, self.http_port,
                    extra={"event": "distrib.http_up",
                           "port": self.http_port},
                )
            if ready_callback is not None:
                ready_callback(self)
            monitor = asyncio.create_task(self._monitor())
            sampler = asyncio.create_task(self._sample_loop())
            try:
                await self._complete.wait()
            finally:
                self.stats.finished_at = time.monotonic()
                self._draining = True
                monitor.cancel()
                sampler.cancel()
                self._sample_once()  # final tick: campaign-end truth
                if self._http is not None:
                    await self._http.stop()
                self._server.close()
                await self._server.wait_closed()
                # Tell idle workers the campaign is over before hanging
                # up: a reconnect-enabled worker treats a bare EOF as a
                # lost coordinator and would burn its whole retry budget
                # against a closed port.  The frame is best-effort
                # (buffered, flushed by close()) and only sent when the
                # campaign really finished — a cancelled or aborted
                # coordinator leaves EOF to mean "re-dial me", which is
                # exactly what a restarted coordinator needs.  Then let
                # handlers run to completion so loop teardown never has
                # to cancel a mid-read handler.
                farewell = None
                if self._complete.is_set() and self._abort is None:
                    farewell = encode_frame(
                        {"type": "drain", "reason": "campaign finished"}
                    )
                for writer in list(self._connections.values()):
                    if farewell is not None:
                        try:
                            writer.write(farewell)
                        except (ConnectionError, OSError, RuntimeError):
                            pass
                    writer.close()
                if self._connections:
                    await asyncio.wait(
                        list(self._connections), timeout=5.0
                    )
                get_registry().gauge("distrib.coordinator.up").set(0)
        if self._abort is not None:
            raise self._abort
        return self._assemble(plan, resumed)

    def initiate_drain(self) -> None:
        """Stop handing out work; complete once leases settle.

        Safe to call from a signal handler.  Outstanding leases are
        still honoured — workers finish their current task and the
        results are journalled — so the checkpoint loses nothing a
        ``--resume`` cannot pick up.
        """
        if self._draining:
            return
        self._draining = True
        _log.warning(
            "coordinator draining: no new leases; %d outstanding",
            len(self._leases),
            extra={"event": "distrib.drain", "leases": len(self._leases)},
        )
        if not self._leases:
            self._complete.set()

    # ------------------------------------------------------------------
    # Campaign state
    # ------------------------------------------------------------------
    def _restore_completed(self, plan: CampaignPlan) -> int:
        by_id = {cell.cell: cell for cell in plan.cells}
        resumed = 0
        for cell_id, path in plan.completed.items():
            cell = by_id[cell_id]
            batch = self.runner.resume_cell(
                cell_id, path, cell.stop - cell.start
            )
            self.runner.fill_values(
                self._values, cell.profile.name, cell.start, cell.stop,
                batch,
            )
            resumed += 1
        return resumed

    def _assemble(self, plan: CampaignPlan, resumed: int) -> CampaignResult:
        pending = tuple(
            cell.cell
            for cell in plan.cells
            if cell.cell not in plan.completed
            and cell.cell not in self._done
            and cell.cell not in self._failed
        )
        return CampaignResult(
            programs=plan.programs,
            configs=plan.configs,
            total_cells=len(plan.cells),
            simulated_cells=len(self._done),
            resumed_cells=resumed,
            failed_cells=tuple(sorted(self._failed)),
            pending_cells=pending,
            attempts=sum(self._done.values()),
            _values=self._values,
        )

    def _maybe_complete(self) -> None:
        outstanding = bool(self._queue) or bool(self._leases)
        if self._draining and not self._leases:
            self._complete.set()
            return
        if not outstanding:
            self._complete.set()

    # ------------------------------------------------------------------
    # Lease lifecycle
    # ------------------------------------------------------------------
    def _new_lease(
        self, cell: CampaignCell, worker: _WorkerState,
        speculative: bool = False,
    ) -> _Lease:
        """Register a fresh lease on ``cell`` for ``worker``."""
        now = time.monotonic()
        lease = _Lease(
            lease_id=uuid.uuid4().hex,
            cell=cell,
            worker_id=worker.worker_id,
            deadline=now + self.lease_timeout,
            issued_at=now,
            speculative=speculative,
        )
        self._leases[lease.lease_id] = lease
        self._cell_leases.setdefault(cell.cell, []).append(lease.lease_id)
        self.stats.tasks_issued += 1
        if self.stats.first_task_at is None:
            self.stats.first_task_at = now
        get_registry().counter("distrib.tasks.issued").inc()
        return lease

    def _drop_cell_lease(self, lease: _Lease) -> None:
        """Forget one cell -> lease-id mapping (multimap-aware)."""
        ids = self._cell_leases.get(lease.cell.cell)
        if ids and lease.lease_id in ids:
            ids.remove(lease.lease_id)
            if not ids:
                del self._cell_leases[lease.cell.cell]

    def _task_message(self, lease: _Lease) -> Dict:
        """The wire payload handing ``lease``'s cell to its worker."""
        assert self._plan is not None
        cell = lease.cell
        start, stop = cell.start, cell.stop
        message = {
            "type": "task",
            "lease": lease.lease_id,
            "cell": cell.cell,
            "chunk_index": cell.chunk_index,
            "profile": profile_to_wire(cell.profile),
            "configs": configs_to_wire(
                self._plan.configs[start:stop]
            ),
            "retry_seed": stable_seed(
                "campaign-retry", cell.cell, str(self.runner.seed)
            ),
            "policy": policy_to_wire(self.runner.retry_policy),
            "lease_timeout": self.lease_timeout,
        }
        if self.trace_id is not None:
            # Optional key: a v2 worker ignores it, a v3 worker binds
            # it so its spans stitch under the campaign trace with the
            # coordinate span as their cross-host parent.
            message["trace"] = {
                "trace_id": self.trace_id,
                "parent_id": self._root_span_id,
            }
        return message

    def _issue_lease(self, worker: _WorkerState) -> Optional[Dict]:
        """Pop the next runnable cell and lease it to ``worker``."""
        now = time.monotonic()
        for _ in range(len(self._queue)):
            cell = self._queue.popleft()
            if cell.cell in self._done or cell.cell in self._failed:
                continue  # settled late (first result won); drop it
            if self._not_before.get(cell.cell, 0.0) > now:
                self._queue.append(cell)  # backoff not elapsed: rotate
                continue
            return self._task_message(self._new_lease(cell, worker))
        return None

    def _take_chunk_cell(
        self, chunk_index: int, now: float
    ) -> Optional[CampaignCell]:
        """Pop the first runnable queued cell of chunk ``chunk_index``.

        The bundle filler for a suite-capable worker: same-chunk cells
        in one bundle share their configs, so the worker computes them
        in a single program-major ``simulate_suite`` call.  Settled or
        backing-off cells are skipped in place; :meth:`_issue_lease`
        drops or rotates them on its next pass.
        """
        for index, cell in enumerate(self._queue):
            if cell.chunk_index != chunk_index:
                continue
            if cell.cell in self._done or cell.cell in self._failed:
                continue
            if self._not_before.get(cell.cell, 0.0) > now:
                continue
            del self._queue[index]
            return cell
        return None

    def _try_steal(self, worker: _WorkerState) -> Optional[Dict]:
        """Speculatively re-lease the most overdue outstanding cell.

        Called only when the queue has nothing runnable for an idle
        worker.  A lease qualifies once it is older than
        ``steal_after_fraction * lease_timeout`` — or immediately when
        its holder is flagged slow — and a cell is never duplicated
        more than once: one primary plus one speculative copy.  The
        first result back wins; the loser is cancelled and discarded,
        so the journal stays bit-identical to a serial run.
        """
        member = self.membership.get(worker.worker_id)
        if member is not None and member.slow:
            return None  # never speculate onto a straggler
        now = time.monotonic()
        min_age = self.steal_after_fraction * self.lease_timeout
        candidates = []
        for lease in self._leases.values():
            if lease.worker_id == worker.worker_id:
                continue
            if len(self._cell_leases.get(lease.cell.cell, ())) > 1:
                continue  # already speculated
            holder = self.membership.get(lease.worker_id)
            slow_holder = holder is not None and holder.slow
            if not slow_holder and now - lease.issued_at < min_age:
                continue
            candidates.append(
                (not slow_holder, lease.issued_at, lease.lease_id, lease)
            )
        if not candidates:
            return None
        candidates.sort(key=lambda entry: entry[:3])
        victim = candidates[0][3]
        lease = self._new_lease(victim.cell, worker, speculative=True)
        self.stats.steals += 1
        get_registry().counter("distrib.steals").inc()
        _log.info(
            "worker %s stole cell %s from %s (lease age %.2fs)",
            worker.worker_id, victim.cell.cell, victim.worker_id,
            now - victim.issued_at,
            extra={"event": "distrib.steal", "cell": victim.cell.cell,
                   "thief": worker.worker_id, "victim": victim.worker_id},
        )
        return self._task_message(lease)

    def _release_lease(self, lease: _Lease) -> None:
        """Take back a lease its worker handed over cleanly.

        A clean release (a draining worker returning the unstarted rest
        of its bundle) is not the cell's fault: it goes back to the
        *front* of the queue with no backoff, no requeue-budget charge
        and no breaker penalty.
        """
        self._leases.pop(lease.lease_id, None)
        self._drop_cell_lease(lease)
        self.stats.releases += 1
        get_registry().counter("distrib.lease.released").inc()
        if not self._cell_leases.get(lease.cell.cell):
            self._queue.appendleft(lease.cell)

    def _reclaim(self, lease: _Lease, reason: str, overdue: float) -> None:
        """Requeue a lease whose worker died, hung or disconnected."""
        self._leases.pop(lease.lease_id, None)
        self._drop_cell_lease(lease)
        self.stats.reclaims += 1
        self.stats.reclaim_latencies.append(max(0.0, overdue))
        registry = get_registry()
        registry.counter("distrib.lease.reclaimed", reason=reason).inc()
        registry.histogram("distrib.reclaim.latency.seconds").observe(
            max(0.0, overdue)
        )
        worker = self._workers.get(lease.worker_id)
        if worker is not None:
            worker.breaker.record_failure()
        if self._cell_leases.get(lease.cell.cell):
            # A sibling (speculative) lease is still live, so the cell
            # is in good hands: drop this copy without requeueing it or
            # charging the cell's requeue budget.
            _log.info(
                "lease %s on cell %s reclaimed (%s); sibling lease "
                "still live, not requeued",
                lease.lease_id[:8], lease.cell.cell, reason,
                extra={"event": "distrib.lease_reclaimed",
                       "cell": lease.cell.cell, "reason": reason},
            )
            return
        count = self._requeues.get(lease.cell.cell, 0) + 1
        self._requeues[lease.cell.cell] = count
        if count > self.max_requeues:
            self._failed[lease.cell.cell] = (
                f"lease reclaimed {count} time(s) ({reason}); "
                "giving up on this cell"
            )
            _log.error(
                "cell %s failed permanently after %d reclaim(s)",
                lease.cell.cell, count,
                extra={"event": "distrib.cell_failed",
                       "cell": lease.cell.cell},
            )
            self._maybe_complete()
            return
        # Deterministically jittered backoff before the cell is handed
        # out again — the same RetryPolicy math the per-call retry uses.
        rng = np.random.default_rng(
            stable_seed("distrib-requeue", lease.cell.cell, str(count))
        )
        delay = self.runner.retry_policy.delay(count, rng)
        self._not_before[lease.cell.cell] = time.monotonic() + delay
        self._queue.appendleft(lease.cell)
        _log.warning(
            "lease %s on cell %s reclaimed (%s); requeued with %.2fs "
            "backoff",
            lease.lease_id[:8], lease.cell.cell, reason, delay,
            extra={"event": "distrib.lease_reclaimed",
                   "cell": lease.cell.cell, "reason": reason},
        )

    async def _monitor(self) -> None:
        """Reclaim expired leases and re-flag slow/recovered workers."""
        while True:
            await asyncio.sleep(self.monitor_interval)
            now = time.monotonic()
            for lease in list(self._leases.values()):
                if lease.deadline < now:
                    self._reclaim(lease, "expired", now - lease.deadline)
            for worker_id, slow in self.membership.rebalance_scan():
                self.stats.rebalances += 1
                get_registry().counter(
                    "distrib.rebalances",
                    direction="slow" if slow else "recovered",
                ).inc()
            self._maybe_complete()

    # ------------------------------------------------------------------
    # Worker protocol
    # ------------------------------------------------------------------
    async def _handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
        worker: Optional[_WorkerState] = None
        clean_goodbye = False
        try:
            worker = await self._handshake(reader, writer)
            if worker is None:
                return
            while True:
                message = await read_message(reader)
                if message is None or message.get("type") == "goodbye":
                    clean_goodbye = message is not None
                    break
                reply = self._dispatch(worker, message)
                await write_message(writer, reply)
        except ProtocolError as error:
            _log.warning(
                "dropping worker %s: %s",
                worker.worker_id if worker else "<handshake>", error,
                extra={"event": "distrib.protocol_error"},
            )
            try:
                await write_message(
                    writer, {"type": "error", "reason": str(error)}
                )
            except (ProtocolError, ConnectionError, OSError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # handled below: the disconnect reclaim
        finally:
            if task is not None:
                self._connections.pop(task, None)
            if worker is not None:
                self._connected -= 1
                get_registry().gauge("distrib.workers.connected").inc(-1)
                now = time.monotonic()
                for lease in list(self._leases.values()):
                    if lease.worker_id == worker.worker_id:
                        self._reclaim(lease, "disconnect", 0.0)
                self.membership.leave(
                    worker.worker_id, now,
                    reason="goodbye" if clean_goodbye else "disconnect",
                )
                self.stats.leaves += 1
                get_registry().counter("distrib.fleet.leaves").inc()
                _log.info(
                    "worker %s disconnected after %d task(s)",
                    worker.worker_id, worker.tasks_completed,
                    extra={"event": "distrib.worker_gone",
                           "worker": worker.worker_id},
                )
                self._maybe_complete()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_WorkerState]:
        hello = await read_message(reader)
        if hello is None:
            return None
        if hello.get("type") == "status_request":
            # A read-only observer, not a worker: answer and hang up.
            await write_message(writer, self._status_payload())
            return None
        if hello.get("type") != "hello":
            raise ProtocolError(
                f"expected a hello, got {hello.get('type')!r}"
            )
        worker_id = str(hello.get("worker") or uuid.uuid4().hex[:12])
        worker = self._workers.get(worker_id)
        if worker is None:
            worker = _WorkerState(
                worker_id=worker_id,
                breaker=CircuitBreaker(self.worker_breaker_threshold),
                connected_at=time.monotonic(),
                last_seen=time.monotonic(),
                version=str(hello.get("version", "")),
                sha=hello.get("git_sha"),
            )
            self._workers[worker_id] = worker
            self.stats.workers_seen += 1
        self._connected += 1
        self.stats.joins += 1
        self.membership.hello(
            worker_id,
            WorkerCapabilities.from_wire(hello.get("capabilities")),
            time.monotonic(),
        )
        registry = get_registry()
        registry.counter("distrib.fleet.joins").inc()
        registry.gauge("distrib.workers.connected").inc()
        mine, theirs = __version__, worker.version
        if theirs and theirs != mine:
            _log.warning(
                "version skew: worker %s runs repro %s, coordinator "
                "runs %s (protocol %d matches; results stay "
                "bit-identical only if the simulator did not change)",
                worker_id, theirs, mine, PROTOCOL_VERSION,
                extra={"event": "distrib.version_skew",
                       "worker": worker_id},
            )
        assert self._plan is not None
        await write_message(writer, {
            "type": "welcome",
            "version": mine,
            "git_sha": git_sha(),
            "protocol": PROTOCOL_VERSION,
            "campaign": {
                "programs": list(self._plan.programs),
                "config_count": len(self._plan.configs),
                "chunk_size": self.runner.chunk_size,
                "total_cells": len(self._plan.cells),
                "seed": self.runner.seed,
            },
            "heartbeat_interval": self.lease_timeout / 4.0,
        })
        _log.info(
            "worker %s connected (repro %s)", worker_id, theirs or "?",
            extra={"event": "distrib.worker_joined", "worker": worker_id},
        )
        return worker

    def _dispatch(self, worker: _WorkerState, message: Dict) -> Dict:
        kind = message.get("type")
        worker.last_seen = time.monotonic()
        if kind == "task_request":
            return self._on_task_request(worker)
        if kind == "heartbeat":
            return self._on_heartbeat(message)
        if kind == "result":
            return self._on_result(worker, message)
        if kind == "release":
            return self._on_release(worker, message)
        raise ProtocolError(f"unexpected message type {kind!r}")

    def _on_task_request(self, worker: _WorkerState) -> Dict:
        if self._complete.is_set() or self._draining:
            return {"type": "drain", "reason": "campaign finished"}
        if worker.breaker.open:
            return {"type": "drain", "reason": "worker circuit-broken"}
        if not self._barrier_open and self._connected < self.min_workers:
            return {"type": "wait", "delay": self.monitor_interval}
        # The barrier is a start gate, not an ongoing quorum: once the
        # fleet has assembled, losing a worker must not stall the rest.
        self._barrier_open = True
        bundle: List[Dict] = []
        member = self.membership.get(worker.worker_id)
        suite_capable = (
            member is not None and member.capabilities.simulate_suite
        )
        anchor_chunk: Optional[int] = None
        for _ in range(self.membership.bundle_size(worker.worker_id)):
            task = None
            if suite_capable and anchor_chunk is not None:
                # Prefer cells from the bundle's first chunk: the
                # worker folds them into one simulate_suite call.
                cell = self._take_chunk_cell(
                    anchor_chunk, time.monotonic()
                )
                if cell is not None:
                    task = self._task_message(
                        self._new_lease(cell, worker)
                    )
            if task is None:
                task = self._issue_lease(worker)
            if task is None:
                break
            if anchor_chunk is None:
                anchor_chunk = task.get("chunk_index")
            bundle.append(task)
        if not bundle:
            stolen = self._try_steal(worker)
            if stolen is not None:
                bundle.append(stolen)
        if len(bundle) == 1:
            return bundle[0]  # the pre-elastic single-task shape
        if bundle:
            return {"type": "task_bundle", "tasks": bundle}
        if self._leases or self._queue:
            # Work exists but is leased out or backing off: poll again.
            return {"type": "wait", "delay": self.monitor_interval * 2}
        return {"type": "drain", "reason": "no work left"}

    def _on_heartbeat(self, message: Dict) -> Dict:
        """Extend every lease the heartbeat names (bundles send many)."""
        # v3 heartbeats piggyback span batches so long tasks stream
        # their trace instead of holding it until the result frame.
        self._merge_telemetry(message.get("telemetry"))
        raw = message.get("leases")
        ids = [str(i) for i in raw] if isinstance(raw, list) else []
        primary = message.get("lease")
        if primary is not None and str(primary) not in ids:
            ids.insert(0, str(primary))
        now = time.monotonic()
        leases_ok: Dict[str, bool] = {}
        for lease_id in ids:
            lease = self._leases.get(lease_id)
            if lease is None:
                leases_ok[lease_id] = False
            else:
                lease.deadline = now + self.lease_timeout
                leases_ok[lease_id] = True
        return {
            "type": "hb_ack",
            "lease_ok": (
                leases_ok.get(str(primary), False)
                if primary is not None
                else all(leases_ok.values()) and bool(leases_ok)
            ),
            "leases_ok": leases_ok,
        }

    def _on_release(self, worker: _WorkerState, message: Dict) -> Dict:
        """A draining worker hands back the unstarted rest of a bundle."""
        released = 0
        for lease_id in message.get("leases") or ():
            lease = self._leases.get(str(lease_id))
            if lease is not None and lease.worker_id == worker.worker_id:
                self._release_lease(lease)
                released += 1
        if released:
            _log.info(
                "worker %s released %d unstarted lease(s)",
                worker.worker_id, released,
                extra={"event": "distrib.leases_released",
                       "worker": worker.worker_id, "count": released},
            )
        self._maybe_complete()
        return {"type": "release_ack", "released": released}

    def _on_result(self, worker: _WorkerState, message: Dict) -> Dict:
        lease_id = str(message.get("lease"))
        lease = self._leases.pop(lease_id, None)
        cell_id = str(message.get("cell"))
        if lease is not None:
            self._drop_cell_lease(lease)
            cell = lease.cell
        else:
            # The lease was reclaimed or cancelled — first result wins,
            # so the arrays are still welcome if nobody delivered yet.
            cell = next(
                (c for c in (self._plan.cells if self._plan else ())
                 if c.cell == cell_id),
                None,
            )
        if cell is None or cell_id != cell.cell:
            raise ProtocolError(f"result for unknown cell {cell_id!r}")
        if (
            cell_id in self._done
            or cell_id in self._failed
            or (self._plan is not None and cell_id in self._plan.completed)
        ):
            # Already settled — this run, or journalled before a
            # coordinator restart.  Never double-journal.
            self.stats.stale_results += 1
            get_registry().counter("distrib.results.stale").inc()
            self._maybe_complete()
            return {"type": "ack", "accepted": False}
        if lease is None and not message.get("ok"):
            # A failure from a reclaimed lease proves nothing about the
            # cell — its live or future lease still gets a fair try.
            self.stats.stale_results += 1
            get_registry().counter("distrib.results.stale").inc()
            return {"type": "ack", "accepted": False}

        attempts = int(message.get("attempts", 1))
        self._merge_telemetry(message.get("telemetry"))
        if not message.get("ok"):
            error = str(message.get("error") or "unknown worker error")
            worker.breaker.record_failure()
            self._failed[cell_id] = error
            _log.warning(
                "cell %s failed permanently on worker %s: %s",
                cell_id, worker.worker_id, error,
                extra={"event": "campaign.cell_failed", "cell": cell_id},
            )
            if self._fail_fast and self._abort is None:
                self._abort = SimulationError(error)
                self._draining = True
            self._maybe_complete()
            return {"type": "ack", "accepted": True}

        try:
            batch = batch_from_wire(message.get("arrays") or {})
            recorded = str(message.get("arrays_checksum") or "")
            if batch_checksum(batch) != recorded:
                raise ProtocolError(
                    f"result for cell {cell_id} failed its array "
                    "checksum"
                )
            validate_batch(batch, f"for cell {cell_id}")
            if len(batch) != cell.stop - cell.start:
                raise ProtocolError(
                    f"result for cell {cell_id} holds {len(batch)} "
                    f"configurations, expected {cell.stop - cell.start}"
                )
        except (ValueError, SimulationError) as error:
            raise ProtocolError(str(error)) from error
        self.runner.store_cell(
            cell_id, cell.profile.name, cell.chunk_index, batch
        )
        self.runner.fill_values(
            self._values, cell.profile.name, cell.start, cell.stop, batch
        )
        self._done[cell_id] = attempts
        registry = get_registry()
        # First result wins: cancel any losing sibling lease (the other
        # side of a steal, or a lease issued after ours was reclaimed).
        # The loser's next heartbeat reads lease_ok=False and it drops
        # its copy; a copy that races in anyway is discarded as stale.
        for sibling_id in list(self._cell_leases.get(cell_id, ())):
            sibling = self._leases.pop(sibling_id, None)
            if sibling is not None:
                registry.counter("distrib.lease.cancelled").inc()
                _log.info(
                    "cell %s settled by %s; cancelling sibling lease "
                    "%s on %s",
                    cell_id, worker.worker_id, sibling_id[:8],
                    sibling.worker_id,
                    extra={"event": "distrib.lease_cancelled",
                           "cell": cell_id,
                           "worker": sibling.worker_id},
                )
        self._cell_leases.pop(cell_id, None)
        if lease is not None and lease.speculative:
            self.stats.speculative_wins += 1
            registry.counter("distrib.steals.won").inc()
        # The cell may also sit in the queue (requeued after a reclaim
        # the slow worker then out-raced): purge so it is never reissued.
        if any(c.cell == cell_id for c in self._queue):
            self._queue = deque(
                c for c in self._queue if c.cell != cell_id
            )
        self._not_before.pop(cell_id, None)
        now = time.monotonic()
        self.membership.task_done(worker.worker_id, now)
        worker.breaker.record_success()
        worker.tasks_completed += 1
        self.stats.tasks_completed += 1
        registry.counter("distrib.tasks.completed").inc()
        if lease is not None:
            registry.histogram("distrib.task.seconds").observe(
                now - lease.issued_at
            )
        self._maybe_complete()
        return {"type": "ack", "accepted": True}

    def _merge_telemetry(self, telemetry) -> None:
        if not isinstance(telemetry, dict):
            return
        metrics = telemetry.get("metrics")
        if isinstance(metrics, dict):
            get_registry().merge(metrics)
        spans = telemetry.get("spans")
        if isinstance(spans, list):
            get_tracer().adopt(spans)

    # ------------------------------------------------------------------
    # Time series + SLO + HTTP twins
    # ------------------------------------------------------------------
    async def _sample_loop(self) -> None:
        """Tick the time-series sampler on ``sample_interval``."""
        while True:
            await asyncio.sleep(self.sample_interval)
            self._sample_once()

    def _sample_once(self) -> None:
        """Refresh progress gauges, take one sample, re-evaluate SLOs."""
        registry = get_registry()
        plan = self._plan
        if plan is not None:
            journalled = len(plan.completed) + len(self._done)
            registry.gauge("distrib.cells.journalled").set(journalled)
            registry.gauge("distrib.cells.queued").set(len(self._queue))
            registry.gauge("distrib.cells.leased").set(len(self._leases))
            registry.gauge("distrib.cells.failed").set(len(self._failed))
        self.sampler.sample()
        self._refresh_slo()

    def _refresh_slo(self) -> None:
        """Evaluate objectives against the series; mirror as gauges."""
        if self.slo is None:
            return
        statuses = self.slo.evaluate(self.sampler)
        self.slo.export_gauges(statuses, get_registry())
        self._slo_statuses = [status.to_payload() for status in statuses]

    def _http_routes(self) -> Dict:
        """The read-only GET surface, mirroring ``repro serve``'s."""

        def healthz():
            ok = self._abort is None
            return (
                200 if ok else 503,
                dump_json({
                    "status": "ok" if ok else "aborting",
                    "draining": self._draining,
                    "trace_id": self.trace_id,
                }),
                "application/json",
            )

        def metrics():
            self._refresh_slo()
            text = get_registry().to_prometheus()
            return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE

        def status():
            payload = self._status_payload()
            return 200, dump_json(payload), "application/json"

        return {"/healthz": healthz, "/metrics": metrics,
                "/status": status}

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def _status_payload(self) -> Dict:
        """The read-only JSON snapshot the status endpoint answers with."""
        now = time.monotonic()
        plan = self._plan
        campaign: Dict = {}
        progress: Dict = {}
        if plan is not None:
            campaign = {
                "programs": list(plan.programs),
                "config_count": len(plan.configs),
                "chunk_size": self.runner.chunk_size,
                "total_cells": len(plan.cells),
                "seed": self.runner.seed,
            }
            progress = {
                "journalled": len(plan.completed) + len(self._done),
                "failed": len(self._failed),
                "queued": len(self._queue),
                "leased": len(self._leases),
                "total": len(plan.cells),
            }
        return {
            "type": "status",
            "version": __version__,
            "draining": self._draining,
            "trace_id": self.trace_id,
            "campaign": campaign,
            "progress": progress,
            "fleet": self.membership.roster(now),
            "leases": [
                {
                    "lease": lease.lease_id,
                    "cell": lease.cell.cell,
                    "worker": lease.worker_id,
                    "age_seconds": round(now - lease.issued_at, 3),
                    "deadline_in": round(lease.deadline - now, 3),
                    "speculative": lease.speculative,
                }
                for lease in sorted(
                    self._leases.values(), key=lambda l: l.issued_at
                )
            ],
            "stats": {
                "workers_seen": self.stats.workers_seen,
                "tasks_issued": self.stats.tasks_issued,
                "tasks_completed": self.stats.tasks_completed,
                "stale_results": self.stats.stale_results,
                "reclaims": self.stats.reclaims,
                "steals": self.stats.steals,
                "speculative_wins": self.stats.speculative_wins,
                "rebalances": self.stats.rebalances,
                "joins": self.stats.joins,
                "leaves": self.stats.leaves,
                "releases": self.stats.releases,
            },
            "chaos_events": list(self.chaos_log),
            "series": self.sampler.to_payload(
                names=(
                    "distrib.tasks.completed",
                    "distrib.tasks.issued",
                    "distrib.workers.connected",
                    "distrib.cells.journalled",
                    "distrib.lease.reclaimed",
                    "distrib.steals",
                )
            ),
            "slo": list(self._slo_statuses),
        }


async def fetch_status_async(
    host: str, port: int, timeout: float = 10.0
) -> Dict:
    """Ask a live coordinator for its status snapshot.

    Opens a plain protocol connection, sends ``status_request`` instead
    of a HELLO, and returns the coordinator's answer.  Read-only: the
    coordinator treats the caller as an observer, never a worker.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        await write_message(writer, {"type": "status_request"})
        reply = await asyncio.wait_for(read_message(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if reply is None or reply.get("type") != "status":
        raise ProtocolError(
            "coordinator did not answer the status request"
        )
    return reply


def fetch_status(host: str, port: int, timeout: float = 10.0) -> Dict:
    """Blocking wrapper around :func:`fetch_status_async`."""
    return asyncio.run(fetch_status_async(host, port, timeout))
