"""Trace-driven out-of-order superscalar pipeline simulator.

The detailed counterpart to :mod:`repro.sim.interval`: a cycle-by-cycle
model of the machine of Tables 1 and 2 — fetch through a real I-cache
and real gshare/BTB, rename against a finite physical register file,
dispatch into ROB/IQ/LSQ, oldest-first issue limited by register-file
read ports, functional units and D-cache ports, write-back limited by
register-file write ports, and in-order commit.

Two engines implement the same machine:

* ``engine="tick"`` advances one cycle at a time, re-scanning the
  in-flight structures every cycle.  It is the straightforward
  transcription of the stage semantics and serves as the equivalence
  oracle.
* ``engine="event"`` (the default) is the event-driven rewrite of the
  hot loop: a wakeup-time event queue lets the simulator jump straight
  to the next interesting cycle instead of burning a full stage pass on
  every idle one, and producer→consumer wakeup lists replace the
  all-producers ``ready()`` poll.

Event-engine invariants (what makes the two engines bit-identical)
------------------------------------------------------------------
The event engine never reorders or approximates anything.  Every
*active* cycle runs the exact tick stage sequence — commit, MSHR
release, write-back, squash, issue, rename/dispatch, fetch, stall
accounting — with the same per-cycle budgets.  Only cycles that are
provably inert are skipped:

* a cycle is *idle* when it committed nothing, wrote nothing back (a
  write-port-blocked retry counts as work), issued nothing, dispatched
  nothing, probed no cache and squashed nothing, **and** no ready
  instruction is waiting to retry a structural hazard.  An idle cycle
  leaves the machine state untouched except for ``now``, so the state
  is frozen until the next timed event;
* the next timed event is the minimum of the earliest execution
  completion (a heap keyed on ``(result_cycle, seq)``), the earliest
  MSHR release, and ``fetch_resume`` when fetch is pending — exactly
  the quantities the frozen stages are waiting on;
* every skipped cycle is charged the same stall reason the tick engine
  would compute.  The reason is constant across a frozen span: with a
  non-empty ROB the head (and its ``issued``/memory class) cannot
  change without activity, and with an empty ROB nothing is in flight,
  so the span ends at ``fetch_resume`` and every skipped cycle
  satisfies ``now < fetch_resume`` ("fetch_miss");
* issue order is preserved because the ready queue is a list sorted on
  the dispatch sequence number: walking it reproduces the tick engine's
  program-order scan over exactly the ready instructions (dispatch
  appends the youngest live seq, data wake-ups insert in order, squash
  purges eagerly), and structurally blocked instructions carry over to
  the next cycle (which is then never skipped);
* the write-back heap pops in ``(result_cycle, seq)`` order, and since
  no completion cycle is ever jumped over, all live entries popped in
  one cycle share ``result_cycle == now`` — i.e. the pop order is the
  tick engine's seq-sorted ``finished`` list;
* jumps are capped at ``last_commit_cycle + _DEADLOCK_LIMIT`` so the
  deadlock guard fires on the same cycle with the same counters;
* the warm-up snapshot is taken at the top of the cycle following the
  crossing commit — commits only happen on active cycles, and jumps
  happen after the snapshot check, so the snapshot sees the same
  ``now`` as the tick engine.

Squash in wrong-path mode removes instructions that may still sit in
the heaps; those entries are invalidated lazily (skipped on pop), which
can only make a wake-up conservative (too early), never late — landing
on an extra idle cycle is harmless because the cycle then executes the
identical do-nothing stage pass.

Modelling simplifications (standard for trace-driven simulators, and
documented here so the fidelity ablation is honest):

* By default wrong-path instructions are not fetched; a mispredicted
  branch stalls fetch from the following instruction until it resolves,
  then charges the front-end redirect penalty, and wrong-path *energy*
  is charged statistically from the misprediction count.  With
  ``wrong_path=True`` the simulator instead keeps fetching down the
  wrong path (using upcoming trace instructions as statistically
  faithful stand-ins): phantom instructions consume fetch/rename/issue
  resources, pollute the caches and burn measured energy until the
  branch resolves and they are squashed — at which point the rename
  state is restored from a checkpoint.
* Stores retire through a store buffer: they access the cache hierarchy
  for miss statistics but complete in one cycle on the critical path.
* Both register files share one rename pool (the trace uses a unified
  logical register namespace).
* Loads that miss the L1 occupy an MSHR until their data returns;
  when all MSHRs are busy further memory operations cannot issue, so
  memory-level parallelism is genuinely bounded by the MSHR count.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from operator import attrgetter
from typing import Dict, List, Optional, Sequence

from repro.designspace.configuration import Configuration
from repro.sim.energy import EnergyModel
from repro.sim.machine import FixedParameters, MachineSpec, functional_units
from repro.workloads.tracegen import OpClass, TraceInstruction

#: Cycles without a commit after which the simulator declares a hang.
_DEADLOCK_LIMIT = 20000

#: The two hot-loop implementations (see the module docstring).
ENGINES = ("event", "tick")

#: Per-class lookups the hot loops use instead of enum properties.
_IS_MEMORY = {cls: cls.is_memory for cls in OpClass}

#: Functional-unit names in the order the event engine's indexed
#: budget/ops counters use (``fu_idx`` indexes into this order).
_FU_NAMES = ("int_alu", "int_mul", "fp_alu", "fp_mul")

#: Stall reasons in the order the event engine's indexed counters use.
_STALL_REASONS = (
    "mispredict_block",
    "fetch_miss",
    "fetch_supply",
    "issue_wait",
    "memory_wait",
    "execute_wait",
)

_SEQ_KEY = attrgetter("seq")


@dataclass(slots=True)
class _Op:
    """In-flight state of one instruction.

    The first nine fields are the machine state both engines share; the
    trailing fields are event-engine bookkeeping (consumer wakeup list,
    outstanding-producer count, issue-queue membership, squash flag)
    that the tick engine never touches.
    """

    instr: TraceInstruction
    seq: int
    producers: List["_Op"]
    completed: bool
    issued: bool
    result_cycle: int
    mispredicted: bool
    btb_missed: bool
    wrong_path: bool
    consumers: Optional[List["_Op"]] = None
    pending: int = 0
    in_iq: bool = False
    squashed: bool = False
    memory: bool = False
    branch: bool = False
    fu: str = ""
    base_latency: int = 0
    fu_idx: int = 0

    @property
    def has_dest(self) -> bool:
        return self.instr.dest is not None

    @property
    def is_memory(self) -> bool:
        return self.instr.op.is_memory

    def ready(self) -> bool:
        """All source operands produced?"""
        return all(producer.completed for producer in self.producers)


@dataclass
class PipelineStats:
    """Counters accumulated over a simulation run."""

    cycles: int = 0
    committed: int = 0
    dispatched: int = 0
    issued: int = 0
    rf_reads: int = 0
    rf_writes: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    btb_misses: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    alu_ops: Dict[str, int] = field(default_factory=dict)
    stall_cycles: Dict[str, int] = field(default_factory=dict)
    wrong_path_fetched: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def mispredict_ratio(self) -> float:
        """Mispredictions per executed branch."""
        if self.branches == 0:
            return 0.0
        return self.mispredicts / self.branches


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one pipeline simulation."""

    cycles: int
    energy: float
    stats: PipelineStats

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def ed(self) -> float:
        """Energy-delay product."""
        return self.energy * self.cycles

    @property
    def edd(self) -> float:
        """Energy-delay-squared product."""
        return self.energy * self.cycles * self.cycles


class PipelineSimulator:
    """Cycle-level simulator of one machine configuration.

    Args:
        config: The design point to simulate.
        fixed: Fixed machine parameters (defaults to Table 2's).
        wrong_path: Fetch and execute down mispredicted paths (see the
            module docstring).
        engine: ``"event"`` (default) or ``"tick"``.  Both produce
            bit-identical :class:`PipelineStats`; the tick engine is the
            straightforward cycle loop kept as the equivalence oracle.
    """

    def __init__(
        self,
        config: Configuration,
        fixed: Optional[FixedParameters] = None,
        wrong_path: bool = False,
        engine: str = "event",
    ) -> None:
        from .cachesim import build_hierarchy
        from .predictor import BranchTargetBuffer, GsharePredictor

        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose one of {ENGINES}"
            )
        self.engine = engine
        self.wrong_path = wrong_path
        self.spec = MachineSpec(config, fixed or FixedParameters())
        fixed = self.spec.fixed
        self.caches = build_hierarchy(
            config.icache_kb,
            config.dcache_kb,
            config.l2cache_kb,
            l1_line_bytes=fixed.l1_line_bytes,
            l2_line_bytes=fixed.l2_line_bytes,
            l1_associativity=fixed.l1_associativity,
            l2_associativity=fixed.l2_associativity,
            l1_latency=fixed.l1_latency,
            l2_latency=fixed.l2_latency,
            memory_latency=fixed.memory_latency,
        )
        self.gshare = GsharePredictor(config.gshare_size)
        self.btb = BranchTargetBuffer(config.btb_size)
        self.units = functional_units(config.width)
        self._latency = {
            OpClass.INT_ALU: fixed.int_alu_latency,
            OpClass.INT_MUL: fixed.int_mul_latency,
            OpClass.FP_ALU: fixed.fp_alu_latency,
            OpClass.FP_MUL: fixed.fp_mul_latency,
            OpClass.BRANCH: fixed.int_alu_latency,
            OpClass.STORE: 1,
        }
        self._fu_class = {
            OpClass.INT_ALU: "int_alu",
            OpClass.INT_MUL: "int_mul",
            OpClass.FP_ALU: "fp_alu",
            OpClass.FP_MUL: "fp_mul",
            OpClass.BRANCH: "int_alu",
            OpClass.LOAD: "int_alu",
            OpClass.STORE: "int_alu",
        }

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Sequence[TraceInstruction],
        warmup: int = 0,
    ) -> PipelineResult:
        """Simulate the trace to completion and account energy.

        Args:
            trace: Dynamic instruction stream.
            warmup: Number of leading instructions used only to warm the
                caches and predictors (the paper warms for 10 M
                instructions before each SimPoint interval); counters and
                cycles reported cover the remaining instructions.
        """
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        if not 0 <= warmup < len(trace):
            raise ValueError("warmup must leave at least one measured instruction")
        if self.spec.rename_registers < 1:
            raise ValueError("register file leaves no rename registers")
        if self.engine == "event":
            stats, warm_snapshot = self._run_event(trace, warmup)
        else:
            stats, warm_snapshot = self._run_tick(trace, warmup)
        self._harvest_cache_stats(stats)
        if warm_snapshot is not None:
            stats = self._subtract_snapshot(stats, warm_snapshot)
        energy = self._account_energy(stats)
        return PipelineResult(cycles=stats.cycles, energy=energy, stats=stats)

    def _run_tick(self, trace, warmup):
        """The cycle-by-cycle oracle loop (``engine="tick"``)."""
        config = self.spec.configuration
        fixed = self.spec.fixed
        stats = PipelineStats()
        width = config.width
        rename_pool = self.spec.rename_registers

        rob: deque = deque()
        iq: List[_Op] = []
        executing: List[_Op] = []
        fetch_buffer: deque = deque()
        # Outstanding L1 misses: a min-heap of completion cycles, one
        # entry per busy MSHR (only the count and the earliest release
        # matter, so a heap replaces the per-cycle list rebuild).
        mshrs: List[int] = []
        lsq_used = 0
        branches_used = 0
        regs_free = rename_pool
        # Maps logical register -> in-flight producing op (None = in RF).
        rename_map: Dict[int, Optional[_Op]] = {}

        next_fetch = 0  # trace index of the next instruction to fetch
        fetch_resume = 0  # earliest cycle fetch may proceed
        fetch_block: Optional[_Op] = None  # unresolved mispredicted branch
        # Wrong-path episode state (wrong_path mode only): the
        # mispredicted branch being speculated past, the rename-map
        # checkpoint taken at the mispredict, and the phantom counter.
        speculating_past: Optional[_Op] = None
        rename_checkpoint: Optional[Dict[int, Optional[_Op]]] = None
        phantom_offset = 0
        phantom_seq = len(trace)
        now = 0
        last_commit_cycle = 0
        warm_snapshot: Optional[Dict[str, float]] = None

        while stats.committed < len(trace):
            if warm_snapshot is None and stats.committed >= warmup > 0:
                warm_snapshot = self._snapshot(stats, now)
            # ---------------- commit ----------------------------------
            commits = 0
            while rob and rob[0].completed and commits < width:
                op = rob.popleft()
                if op.is_memory:
                    lsq_used -= 1
                if op.instr.op is OpClass.BRANCH:
                    branches_used -= 1
                if op.has_dest:
                    regs_free += 1
                    if rename_map.get(op.instr.dest) is op:
                        rename_map[op.instr.dest] = None
                stats.committed += 1
                commits += 1
                last_commit_cycle = now

            # ---------------- MSHR release -----------------------------
            while mshrs and mshrs[0] <= now:
                heappop(mshrs)

            # ---------------- writeback -------------------------------
            finished = [op for op in executing if op.result_cycle <= now]
            finished.sort(key=lambda op: op.seq)
            writebacks = 0
            speculation_resolved = False
            for op in finished:
                if op.has_dest:
                    if writebacks >= config.rf_write_ports:
                        op.result_cycle = now + 1  # retry next cycle
                        continue
                    writebacks += 1
                    stats.rf_writes += 1
                executing.remove(op)
                op.completed = True
                if op is fetch_block:
                    fetch_resume = now + fixed.branch_redirect_penalty + 1
                    fetch_block = None
                if op is speculating_past:
                    speculation_resolved = True

            if speculation_resolved:
                # Squash every wrong-path op and restore rename state
                # (done after the write-back loop so its iteration list
                # stays valid).
                released_regs = sum(
                    1 for w in rob if w.wrong_path and w.has_dest
                )
                released_lsq = sum(
                    1 for w in rob if w.wrong_path and w.is_memory
                )
                released_branches = sum(
                    1 for w in rob
                    if w.wrong_path and w.instr.op is OpClass.BRANCH
                )
                rob = deque(w for w in rob if not w.wrong_path)
                iq = [w for w in iq if not w.wrong_path]
                executing = [w for w in executing if not w.wrong_path]
                fetch_buffer = deque(
                    w for w in fetch_buffer if not w.wrong_path
                )
                regs_free += released_regs
                lsq_used -= released_lsq
                branches_used -= released_branches
                rename_map = dict(rename_checkpoint)
                rename_checkpoint = None
                speculating_past = None
                fetch_resume = now + fixed.branch_redirect_penalty + 1

            # ---------------- issue ------------------------------------
            issue_budget = width
            read_port_budget = config.rf_read_ports
            dcache_port_budget = self.units["dcache_ports"]
            fu_budget = dict(self.units)
            # Dispatch appends in program order, so the issue queue
            # is already oldest-first.
            for op in list(iq):
                if issue_budget == 0:
                    break
                if not op.ready():
                    continue
                fu = self._fu_class[op.instr.op]
                reads = len(op.instr.sources)
                if fu_budget[fu] == 0 or read_port_budget < reads:
                    continue
                if op.is_memory and dcache_port_budget == 0:
                    continue
                if (
                    op.is_memory
                    and len(mshrs) >= fixed.mshr_entries
                    and not self.caches["l1d"].lookup(op.instr.address)
                ):
                    # The access would miss but no MSHR is free.
                    continue
                # Issue the operation.
                iq.remove(op)
                op.issued = True
                issue_budget -= 1
                fu_budget[fu] -= 1
                read_port_budget -= reads
                stats.issued += 1
                stats.rf_reads += reads
                if op.is_memory:
                    dcache_port_budget -= 1
                    latency = self.caches["l1d"].access(op.instr.address)
                    if latency > fixed.l1_latency:
                        heappush(mshrs, now + latency)
                    if op.instr.op is OpClass.STORE:
                        stats.stores += 1
                        latency = self._latency[OpClass.STORE]
                    else:
                        stats.loads += 1
                else:
                    latency = self._latency[op.instr.op]
                if op.instr.op is OpClass.BRANCH and not op.wrong_path:
                    stats.branches += 1
                    mispredicted = self.gshare.update(
                        op.instr.pc, op.instr.taken
                    )
                    op.mispredicted = mispredicted
                    if op.instr.taken:
                        self.btb.update(op.instr.pc, 0)
                    if mispredicted:
                        stats.mispredicts += 1
                stats.alu_ops[fu] = stats.alu_ops.get(fu, 0) + 1
                op.result_cycle = now + max(1, latency)
                executing.append(op)

            # ---------------- rename / dispatch ------------------------
            dispatch_budget = width
            while fetch_buffer and dispatch_budget > 0:
                op = fetch_buffer[0]
                if len(rob) >= config.rob_size or len(iq) >= config.iq_size:
                    break
                if op.is_memory and lsq_used >= config.lsq_size:
                    break
                if (
                    op.instr.op is OpClass.BRANCH
                    and branches_used >= config.max_branches
                ):
                    break
                if op.has_dest and regs_free == 0:
                    break
                fetch_buffer.popleft()
                # Source renaming: find in-flight producers.
                op.producers = [
                    producer
                    for source in op.instr.sources
                    if (producer := rename_map.get(source)) is not None
                    and not producer.completed
                ]
                if op.has_dest:
                    regs_free -= 1
                    rename_map[op.instr.dest] = op
                if op.is_memory:
                    lsq_used += 1
                if op.instr.op is OpClass.BRANCH:
                    branches_used += 1
                rob.append(op)
                iq.append(op)
                dispatch_budget -= 1
                stats.dispatched += 1

            # ---------------- fetch -------------------------------------
            if (
                self.wrong_path
                and speculating_past is not None
                and now >= fetch_resume
            ):
                # Keep fetching down the wrong path: upcoming trace
                # instructions serve as statistically faithful phantoms
                # (short speculation mostly revisits the same loops).
                fetched = 0
                current_line = -1
                while (
                    fetched < width
                    and len(fetch_buffer) < fixed.fetch_buffer_entries
                ):
                    template = trace[
                        (next_fetch + phantom_offset) % len(trace)
                    ]
                    line = template.pc // fixed.l1_line_bytes
                    if line != current_line:
                        stats.icache_accesses += 1
                        latency = self.caches["l1i"].access(template.pc)
                        current_line = line
                        if latency > fixed.l1_latency:
                            fetch_resume = now + latency
                            break
                    fetch_buffer.append(
                        _Op(
                            instr=template,
                            seq=phantom_seq,
                            producers=[],
                            completed=False,
                            issued=False,
                            result_cycle=-1,
                            mispredicted=False,
                            btb_missed=False,
                            wrong_path=True,
                        )
                    )
                    phantom_seq += 1
                    phantom_offset += 1
                    fetched += 1
                    stats.wrong_path_fetched += 1
            elif (
                fetch_block is None
                and speculating_past is None
                and now >= fetch_resume
                and next_fetch < len(trace)
            ):
                fetched = 0
                current_line = -1
                while (
                    fetched < width
                    and len(fetch_buffer) < fixed.fetch_buffer_entries
                    and next_fetch < len(trace)
                ):
                    instr = trace[next_fetch]
                    line = instr.pc // fixed.l1_line_bytes
                    if line != current_line:
                        stats.icache_accesses += 1
                        latency = self.caches["l1i"].access(instr.pc)
                        current_line = line
                        if latency > fixed.l1_latency:
                            # Fetch stalls for the miss; this line's
                            # instructions arrive when it returns.
                            fetch_resume = now + latency
                            break
                    op = _Op(
                        instr=instr,
                        seq=next_fetch,
                        producers=[],
                        completed=False,
                        issued=False,
                        result_cycle=-1,
                        mispredicted=False,
                        btb_missed=False,
                        wrong_path=False,
                    )
                    next_fetch += 1
                    fetched += 1
                    fetch_buffer.append(op)
                    if instr.op is OpClass.BRANCH:
                        predicted_taken = self.gshare.predict(instr.pc)
                        if predicted_taken != instr.taken:
                            if self.wrong_path:
                                # Speculate past it: checkpoint rename
                                # state and start fetching phantoms.
                                speculating_past = op
                                rename_checkpoint = dict(rename_map)
                                phantom_offset = 0
                                break
                            # Default: block fetch until resolution.
                            fetch_block = op
                            break
                        if instr.taken:
                            target = self.btb.lookup(instr.pc)
                            if target is None:
                                op.btb_missed = True
                                stats.btb_misses += 1
                                fetch_resume = (
                                    now + fixed.branch_redirect_penalty + 1
                                )
                            break  # taken branch ends the fetch group

            # ---------------- stall accounting --------------------------
            if commits == 0:
                if not rob:
                    if fetch_block is not None:
                        reason = "mispredict_block"
                    elif now < fetch_resume:
                        reason = "fetch_miss"
                    else:
                        reason = "fetch_supply"
                else:
                    head = rob[0]
                    if not head.issued:
                        reason = "issue_wait"
                    elif head.is_memory:
                        reason = "memory_wait"
                    else:
                        reason = "execute_wait"
                stats.stall_cycles[reason] = stats.stall_cycles.get(reason, 0) + 1

            now += 1
            if now - last_commit_cycle > _DEADLOCK_LIMIT:
                raise RuntimeError(
                    f"pipeline deadlock at cycle {now}: "
                    f"{stats.committed}/{len(trace)} committed, "
                    f"rob={len(rob)} iq={len(iq)} regs_free={regs_free}"
                )

        stats.cycles = now
        return stats, warm_snapshot

    def _run_event(self, trace, warmup):
        """The event-driven hot loop (``engine="event"``).

        Executes every *active* cycle with the exact tick stage
        semantics and jumps over provably idle spans; see the module
        docstring for the invariant argument.  Counters are kept in
        locals and flushed into the :class:`PipelineStats` at the
        snapshot boundary and at the end of the run.
        """
        config = self.spec.configuration
        fixed = self.spec.fixed
        stats = PipelineStats()
        width = config.width
        rename_pool = self.spec.rename_registers

        # Hot-path bindings: resolving these once keeps the per-cycle
        # cost down to the work the cycle actually does.
        is_mem = _IS_MEMORY
        latency_of = self._latency
        fu_of = self._fu_class
        units = self.units
        l1d = self.caches["l1d"]
        l1d_access = l1d.access
        l1d_lookup = l1d.lookup
        l1i_access = self.caches["l1i"].access
        gshare_update = self.gshare.update
        gshare_predict = self.gshare.predict
        btb_lookup = self.btb.lookup
        btb_update = self.btb.update
        BRANCH = OpClass.BRANCH
        STORE = OpClass.STORE
        rob_size = config.rob_size
        iq_size = config.iq_size
        lsq_size = config.lsq_size
        max_branches = config.max_branches
        rf_read_ports = config.rf_read_ports
        rf_write_ports = config.rf_write_ports
        dcache_ports = units["dcache_ports"]
        mshr_entries = fixed.mshr_entries
        fetch_entries = fixed.fetch_buffer_entries
        line_bytes = fixed.l1_line_bytes
        l1_latency = fixed.l1_latency
        redirect = fixed.branch_redirect_penalty
        store_latency = latency_of[STORE]
        wrong_path_mode = self.wrong_path
        trace_len = len(trace)

        # Per-trace-index op metadata, computed once so the hot loop
        # never hashes OpClass members (enum __hash__ is a Python call;
        # keying the 7-entry table by id() hashes a plain int instead).
        fu_index = {name: idx for idx, name in enumerate(_FU_NAMES)}
        meta_by_id = {
            id(cls): (
                is_mem[cls],
                latency_of.get(cls, 0),
                fu_index[fu_of[cls]],
                cls is OpClass.BRANCH,
            )
            for cls in OpClass
        }
        op_meta = [meta_by_id[id(instr.op)] for instr in trace]
        budget0 = units["int_alu"]
        budget1 = units["int_mul"]
        budget2 = units["fp_alu"]
        budget3 = units["fp_mul"]
        new_op = _Op.__new__
        seq_key = _SEQ_KEY
        # Committed ops are dead (no structure references them once they
        # leave the ROB), so their shells are recycled by fetch.
        free_ops: list = []

        rob: deque = deque()
        rob_count = 0
        iq_count = 0
        # Ready-to-issue ops in ascending dispatch-sequence order — the
        # tick engine's oldest-first IQ scan.  Dispatch appends (its seq
        # is always the largest live one: the squash purge below removes
        # every phantom before correct-path dispatch resumes); wake-ups
        # insort.  Each op enters at most once: dispatch pushes only
        # ops born ready, wake-up pushes only on the 1→0 pending edge.
        ready: list = []
        # In-execution ops keyed (result_cycle, seq); squashed entries
        # are invalidated lazily on pop.  Single-cycle ops bypass the
        # heap entirely: issue appends them (in seq order) to
        # ``next_complete``, consumed by the next cycle's write-back.
        exec_heap: list = []
        next_complete: list = []
        fetch_buffer: deque = deque()
        fb_count = 0
        mshrs: List[int] = []  # min-heap of MSHR release cycles
        mshr_count = 0
        lsq_used = 0
        branches_used = 0
        regs_free = rename_pool
        # Pre-seeded with every register the trace touches so the hot
        # loop can index directly instead of calling .get().
        rename_map: Dict[int, Optional[_Op]] = {}
        for instr in trace:
            if instr.dest is not None:
                rename_map[instr.dest] = None
            for source in instr.sources:
                rename_map[source] = None

        next_fetch = 0
        fetch_resume = 0
        fetch_block: Optional[_Op] = None
        speculating_past: Optional[_Op] = None
        rename_checkpoint: Optional[Dict[int, Optional[_Op]]] = None
        phantom_offset = 0
        phantom_seq = trace_len
        now = 0
        last_commit_cycle = 0
        warm_snapshot: Optional[Dict[str, float]] = None

        # Local counters, flushed into ``stats`` at the snapshot and at
        # the end; the dicts are shared with ``stats`` directly.
        committed = 0
        dispatched = 0
        issued_total = 0
        rf_reads = 0
        rf_writes = 0
        loads = 0
        stores = 0
        branches = 0
        mispredicts = 0
        btb_misses = 0
        icache_accesses = 0
        wrong_path_fetched = 0
        # Indexed counters (flushed into the stats dicts at the
        # snapshot and at the end): alu by ``fu_idx``, stalls by the
        # ``_STALL_REASONS`` index.
        alu_counts = [0, 0, 0, 0]
        stall_counts = [0, 0, 0, 0, 0, 0]

        need_snapshot = warmup > 0
        executed_cycles = 0

        while committed < trace_len:
            executed_cycles += 1
            if need_snapshot and committed >= warmup:
                need_snapshot = False
                stats.committed = committed
                stats.dispatched = dispatched
                stats.issued = issued_total
                stats.rf_reads = rf_reads
                stats.rf_writes = rf_writes
                stats.loads = loads
                stats.stores = stores
                stats.branches = branches
                stats.mispredicts = mispredicts
                stats.btb_misses = btb_misses
                stats.icache_accesses = icache_accesses
                stats.wrong_path_fetched = wrong_path_fetched
                for idx, count in enumerate(alu_counts):
                    if count:
                        stats.alu_ops[_FU_NAMES[idx]] = count
                for idx, count in enumerate(stall_counts):
                    if count:
                        stats.stall_cycles[_STALL_REASONS[idx]] = count
                warm_snapshot = self._snapshot(stats, now)

            active = False

            # ---------------- commit ----------------------------------
            commits = 0
            while rob_count and commits < width:
                op = rob.popleft()
                if not op.completed:
                    rob.appendleft(op)
                    break
                rob_count -= 1
                instr = op.instr
                if op.memory:
                    lsq_used -= 1
                if op.branch:
                    branches_used -= 1
                dest = instr.dest
                if dest is not None:
                    regs_free += 1
                    if rename_map[dest] is op:
                        rename_map[dest] = None
                if rename_checkpoint is None:
                    # Safe to recycle: nothing references a committed op
                    # once its rename entry is cleared.  A live
                    # checkpoint may still reference it (the squash
                    # restore would resurrect a recycled shell), so ops
                    # committed under speculation are left to the GC.
                    free_ops.append(op)
                committed += 1
                commits += 1
                last_commit_cycle = now
            if commits:
                active = True

            # ---------------- MSHR release -----------------------------
            while mshrs and mshrs[0] <= now:
                heappop(mshrs)
                mshr_count -= 1

            # ---------------- writeback -------------------------------
            # Completions arrive from two seq-sorted streams merged in
            # order: ``next_complete`` (single-cycle ops issued last
            # cycle, appended in seq order) and the heap (live entries
            # popped here all carry result_cycle == now because no
            # completion cycle is ever jumped over, so heap order is the
            # tick engine's seq-sorted ``finished`` list).
            writebacks = 0
            speculation_resolved = False
            completing = next_complete
            ci = 0
            clen = len(completing)
            if clen:
                next_complete = []
            while True:
                if exec_heap and exec_heap[0][0] <= now:
                    if ci < clen and completing[ci].seq < exec_heap[0][1]:
                        op = completing[ci]
                        ci += 1
                        seq = op.seq
                    else:
                        _, seq, op = heappop(exec_heap)
                elif ci < clen:
                    op = completing[ci]
                    ci += 1
                    seq = op.seq
                else:
                    break
                if op.squashed:
                    continue  # removed by a squash; stale entry
                active = True
                instr = op.instr
                if instr.dest is not None:
                    if writebacks >= rf_write_ports:
                        # Retry next cycle (through the heap so the two
                        # streams stay disjoint in seq order).
                        heappush(exec_heap, (now + 1, seq, op))
                        continue
                    writebacks += 1
                    rf_writes += 1
                op.completed = True
                consumers = op.consumers
                if consumers:
                    for consumer in consumers:
                        consumer.pending -= 1
                        if consumer.pending == 0 and consumer.in_iq:
                            insort(ready, consumer, key=seq_key)
                if op is fetch_block:
                    fetch_resume = now + redirect + 1
                    fetch_block = None
                if op is speculating_past:
                    speculation_resolved = True

            if speculation_resolved:
                released_regs = 0
                released_lsq = 0
                released_branches = 0
                survivors: deque = deque()
                for w in rob:
                    if not w.wrong_path:
                        survivors.append(w)
                        continue
                    w.squashed = True
                    if w.in_iq:
                        w.in_iq = False
                        iq_count -= 1
                    instr = w.instr
                    if instr.dest is not None:
                        released_regs += 1
                    if w.memory:
                        released_lsq += 1
                    if w.branch:
                        released_branches += 1
                rob = survivors
                rob_count = len(rob)
                if ready:
                    # Eager purge (unlike the lazy heaps) so the sorted
                    # list holds only live in-IQ ops: dispatch can then
                    # plain-append and issue can skip liveness checks.
                    ready = [w for w in ready if not w.wrong_path]
                if fetch_buffer:
                    fetch_buffer = deque(
                        w for w in fetch_buffer if not w.wrong_path
                    )
                    fb_count = len(fetch_buffer)
                regs_free += released_regs
                lsq_used -= released_lsq
                branches_used -= released_branches
                rename_map = dict(rename_checkpoint)
                rename_checkpoint = None
                speculating_past = None
                fetch_resume = now + redirect + 1
                active = True

            # ---------------- issue ------------------------------------
            if ready:
                issue_budget = width
                read_port_budget = rf_read_ports
                dcache_port_budget = dcache_ports
                fu_budget = [budget0, budget1, budget2, budget3]
                blocked = None
                i = 0
                n_ready = len(ready)
                while i < n_ready and issue_budget:
                    op = ready[i]
                    i += 1
                    instr = op.instr
                    fu_idx = op.fu_idx
                    reads = len(instr.sources)
                    memory = op.memory
                    if (
                        fu_budget[fu_idx] == 0
                        or read_port_budget < reads
                        or (memory and dcache_port_budget == 0)
                        or (
                            memory
                            and mshr_count >= mshr_entries
                            and not l1d_lookup(instr.address)
                        )
                    ):
                        # Structurally blocked: retry next cycle.
                        if blocked is None:
                            blocked = [op]
                        else:
                            blocked.append(op)
                        continue
                    op.in_iq = False
                    iq_count -= 1
                    op.issued = True
                    issue_budget -= 1
                    fu_budget[fu_idx] -= 1
                    read_port_budget -= reads
                    issued_total += 1
                    rf_reads += reads
                    if memory:
                        dcache_port_budget -= 1
                        latency = l1d_access(instr.address)
                        if latency > l1_latency:
                            heappush(mshrs, now + latency)
                            mshr_count += 1
                        if instr.op is STORE:
                            stores += 1
                            latency = store_latency
                        else:
                            loads += 1
                    else:
                        latency = op.base_latency
                    if op.branch and not op.wrong_path:
                        branches += 1
                        mispredicted = gshare_update(instr.pc, instr.taken)
                        op.mispredicted = mispredicted
                        if instr.taken:
                            btb_update(instr.pc, 0)
                        if mispredicted:
                            mispredicts += 1
                    alu_counts[fu_idx] += 1
                    if latency > 1:
                        heappush(exec_heap, (now + latency, op.seq, op))
                    else:
                        # Completes next cycle: bypass the heap (appends
                        # happen in seq order because ``ready`` is
                        # walked in seq order).
                        next_complete.append(op)
                    active = True
                # Blocked ops (all older than the unvisited tail) plus
                # the tail carry over, still in ascending seq order.
                if blocked is None:
                    del ready[:i]
                else:
                    if i < n_ready:
                        blocked.extend(ready[i:])
                    ready = blocked

            # ---------------- rename / dispatch ------------------------
            if fb_count:
                dispatch_budget = width
                while fb_count and dispatch_budget:
                    op = fetch_buffer[0]
                    if rob_count >= rob_size or iq_count >= iq_size:
                        break
                    instr = op.instr
                    memory = op.memory
                    if memory and lsq_used >= lsq_size:
                        break
                    if op.branch and branches_used >= max_branches:
                        break
                    dest = instr.dest
                    if dest is not None and regs_free == 0:
                        break
                    fetch_buffer.popleft()
                    fb_count -= 1
                    pending = 0
                    for source in instr.sources:
                        producer = rename_map[source]
                        if producer is not None and not producer.completed:
                            pending += 1
                            if producer.consumers is None:
                                producer.consumers = [op]
                            else:
                                producer.consumers.append(op)
                    op.pending = pending
                    if dest is not None:
                        regs_free -= 1
                        rename_map[dest] = op
                    if memory:
                        lsq_used += 1
                    if op.branch:
                        branches_used += 1
                    rob.append(op)
                    rob_count += 1
                    op.in_iq = True
                    iq_count += 1
                    if pending == 0:
                        ready.append(op)
                    dispatch_budget -= 1
                    dispatched += 1
                    active = True

            # ---------------- fetch -------------------------------------
            if (
                wrong_path_mode
                and speculating_past is not None
                and now >= fetch_resume
            ):
                fetched = 0
                current_line = -1
                while fetched < width and fb_count < fetch_entries:
                    template_index = (next_fetch + phantom_offset) % trace_len
                    template = trace[template_index]
                    line = template.pc // line_bytes
                    if line != current_line:
                        icache_accesses += 1
                        active = True
                        latency = l1i_access(template.pc)
                        current_line = line
                        if latency > l1_latency:
                            fetch_resume = now + latency
                            break
                    # result_cycle / mispredicted / btb_missed / fu are
                    # never read by this engine, so those slots stay
                    # unset (or stale on a recycled shell).
                    meta = op_meta[template_index]
                    op = free_ops.pop() if free_ops else new_op(_Op)
                    op.instr = template
                    op.seq = phantom_seq
                    op.completed = False
                    op.issued = False
                    op.wrong_path = True
                    op.consumers = None
                    op.pending = 0
                    op.in_iq = False
                    op.squashed = False
                    op.memory = meta[0]
                    op.base_latency = meta[1]
                    op.fu_idx = meta[2]
                    op.branch = meta[3]
                    fetch_buffer.append(op)
                    fb_count += 1
                    phantom_seq += 1
                    phantom_offset += 1
                    fetched += 1
                    wrong_path_fetched += 1
                    active = True
            elif (
                fetch_block is None
                and speculating_past is None
                and now >= fetch_resume
                and next_fetch < trace_len
            ):
                fetched = 0
                current_line = -1
                while (
                    fetched < width
                    and fb_count < fetch_entries
                    and next_fetch < trace_len
                ):
                    instr = trace[next_fetch]
                    line = instr.pc // line_bytes
                    if line != current_line:
                        icache_accesses += 1
                        active = True
                        latency = l1i_access(instr.pc)
                        current_line = line
                        if latency > l1_latency:
                            fetch_resume = now + latency
                            break
                    meta = op_meta[next_fetch]
                    op = free_ops.pop() if free_ops else new_op(_Op)
                    op.instr = instr
                    op.seq = next_fetch
                    op.completed = False
                    op.issued = False
                    op.wrong_path = False
                    op.consumers = None
                    op.pending = 0
                    op.in_iq = False
                    op.squashed = False
                    op.memory = meta[0]
                    op.base_latency = meta[1]
                    op.fu_idx = meta[2]
                    op.branch = meta[3]
                    next_fetch += 1
                    fetched += 1
                    fetch_buffer.append(op)
                    fb_count += 1
                    active = True
                    if meta[3]:
                        predicted_taken = gshare_predict(instr.pc)
                        if predicted_taken != instr.taken:
                            if wrong_path_mode:
                                speculating_past = op
                                rename_checkpoint = dict(rename_map)
                                phantom_offset = 0
                                break
                            fetch_block = op
                            break
                        if instr.taken:
                            target = btb_lookup(instr.pc)
                            if target is None:
                                op.btb_missed = True
                                btb_misses += 1
                                fetch_resume = now + redirect + 1
                            break  # taken branch ends the fetch group

            # ---------------- stall accounting --------------------------
            if commits == 0:
                # Indexes into _STALL_REASONS.
                if not rob_count:
                    if fetch_block is not None:
                        ridx = 0  # mispredict_block
                    elif now < fetch_resume:
                        ridx = 1  # fetch_miss
                    else:
                        ridx = 2  # fetch_supply
                else:
                    head = rob[0]
                    if not head.issued:
                        ridx = 3  # issue_wait
                    elif head.memory:
                        ridx = 4  # memory_wait
                    else:
                        ridx = 5  # execute_wait
                stall_counts[ridx] += 1

            now += 1
            if now - last_commit_cycle > _DEADLOCK_LIMIT:
                raise RuntimeError(
                    f"pipeline deadlock at cycle {now}: "
                    f"{committed}/{trace_len} committed, "
                    f"rob={rob_count} iq={iq_count} regs_free={regs_free}"
                )

            if active:
                continue

            # ---------------- idle-span jump ---------------------------
            # The cycle did nothing, so the machine is frozen until the
            # next timed event: structurally blocked ready ops retry
            # with side-effect-free checks whose outcome cannot change
            # while the state is frozen (budgets reset every cycle and
            # the MSHR probe is a pure lookup), so they keep failing
            # identically until a write-back, MSHR release, or fetch
            # event.  Charge each skipped cycle the (constant) stall
            # reason computed above and jump.
            wake = exec_heap[0][0] if exec_heap else None
            if mshrs and (wake is None or mshrs[0] < wake):
                wake = mshrs[0]
            if fetch_resume >= now and (
                speculating_past is not None
                or (fetch_block is None and next_fetch < trace_len)
            ):
                if wake is None or fetch_resume < wake:
                    wake = fetch_resume
            cap = last_commit_cycle + _DEADLOCK_LIMIT
            if wake is None or wake > cap:
                wake = cap
            if wake > now:
                # Same reason as the idle cycle just executed.
                stall_counts[ridx] += wake - now
                now = wake

        self._executed_cycles = executed_cycles
        for idx, count in enumerate(alu_counts):
            if count:
                stats.alu_ops[_FU_NAMES[idx]] = count
        for idx, count in enumerate(stall_counts):
            if count:
                stats.stall_cycles[_STALL_REASONS[idx]] = count
        stats.cycles = now
        stats.committed = committed
        stats.dispatched = dispatched
        stats.issued = issued_total
        stats.rf_reads = rf_reads
        stats.rf_writes = rf_writes
        stats.loads = loads
        stats.stores = stores
        stats.branches = branches
        stats.mispredicts = mispredicts
        stats.btb_misses = btb_misses
        stats.icache_accesses = icache_accesses
        stats.wrong_path_fetched = wrong_path_fetched
        return stats, warm_snapshot

    def run_profile(
        self,
        profile,
        length: int = 40_000,
        warmup: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> PipelineResult:
        """Generate a synthetic trace for ``profile`` and simulate it.

        Args:
            profile: A :class:`~repro.workloads.profile.WorkloadProfile`.
            length: Total trace length in instructions.
            warmup: Warmup instructions (defaults to half the trace).
            seed: Trace seed (defaults to the profile's stable seed).
        """
        from repro.workloads.tracegen import generate_trace

        if warmup is None:
            warmup = length // 2
        trace = generate_trace(profile, length, seed=seed)
        return self.run(trace, warmup=warmup)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _snapshot(self, stats: PipelineStats, now: int) -> Dict[str, float]:
        """Capture counters at the end of warmup."""
        snapshot: Dict[str, float] = {"cycles": now}
        for name in (
            "committed", "dispatched", "issued", "rf_reads", "rf_writes",
            "loads", "stores", "branches", "mispredicts", "btb_misses",
            "icache_accesses", "wrong_path_fetched",
        ):
            snapshot[name] = getattr(stats, name)
        for level in ("l1i", "l1d", "l2"):
            snapshot[f"{level}_accesses"] = self.caches[level].stats.accesses
            snapshot[f"{level}_misses"] = self.caches[level].stats.misses
        snapshot["alu_ops"] = dict(stats.alu_ops)
        snapshot["stall_cycles"] = dict(stats.stall_cycles)
        return snapshot

    def _subtract_snapshot(
        self, stats: PipelineStats, snapshot: Dict[str, float]
    ) -> PipelineStats:
        """Report only the post-warmup portion of the run."""
        measured = PipelineStats()
        measured.cycles = stats.cycles - int(snapshot["cycles"])
        for name in (
            "committed", "dispatched", "issued", "rf_reads", "rf_writes",
            "loads", "stores", "branches", "mispredicts", "btb_misses",
            "icache_accesses", "wrong_path_fetched",
        ):
            setattr(measured, name, getattr(stats, name) - int(snapshot[name]))
        measured.icache_misses = stats.icache_misses - int(snapshot["l1i_misses"])
        measured.dcache_accesses = (
            stats.dcache_accesses - int(snapshot["l1d_accesses"])
        )
        measured.dcache_misses = stats.dcache_misses - int(snapshot["l1d_misses"])
        measured.l2_accesses = stats.l2_accesses - int(snapshot["l2_accesses"])
        measured.l2_misses = stats.l2_misses - int(snapshot["l2_misses"])
        measured.alu_ops = {
            fu: count - snapshot["alu_ops"].get(fu, 0)
            for fu, count in stats.alu_ops.items()
        }
        measured.stall_cycles = {
            reason: count - snapshot["stall_cycles"].get(reason, 0)
            for reason, count in stats.stall_cycles.items()
        }
        return measured

    def _harvest_cache_stats(self, stats: PipelineStats) -> None:
        stats.icache_misses = self.caches["l1i"].stats.misses
        stats.dcache_accesses = self.caches["l1d"].stats.accesses
        stats.dcache_misses = self.caches["l1d"].stats.misses
        stats.l2_accesses = self.caches["l2"].stats.accesses
        stats.l2_misses = self.caches["l2"].stats.misses

    def _account_energy(self, stats: PipelineStats) -> float:
        """Wattch-style energy from the run's activity counters."""
        model = EnergyModel(self.spec)
        if self.wrong_path:
            # Speculative work was executed and counted; no inflation.
            wrong_path = 1.0
        else:
            # Wrong-path inflation estimated from misprediction stalls.
            wrong_path = 1.0 + min(
                1.5, 0.4 * stats.mispredicts * self.spec.configuration.width
                / max(1, stats.committed)
            )
        activity: Dict[str, float] = {
            "icache_access": stats.icache_accesses * wrong_path,
            "gshare_access": 2.0 * stats.branches * wrong_path,
            "btb_access": stats.branches * wrong_path,
            "rename_access": stats.dispatched * wrong_path,
            "rob_write": stats.dispatched * wrong_path,
            "rob_read": stats.committed,
            "iq_write": stats.dispatched * wrong_path,
            "iq_wakeup": stats.issued,
            "rf_read": stats.rf_reads,
            "rf_write": stats.rf_writes,
            "lsq_write": stats.loads + stats.stores,
            "lsq_search": stats.loads,
            "dcache_access": stats.dcache_accesses,
            "l2_access": stats.l2_accesses,
        }
        for fu, count in stats.alu_ops.items():
            activity[fu] = activity.get(fu, 0.0) + count
        return model.total_energy(activity, stats.cycles)
