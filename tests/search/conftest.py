"""Search fixtures: fitted cycles/energy predictors and environments.

The cycles predictor reuses the expensive session ``cycles_pool``; the
energy pool is trained here once per session at a smaller training size
(the search tests need plausible surfaces, not peak accuracy).
"""

from __future__ import annotations

import pytest

from repro.core import ArchitectureCentricPredictor
from repro.core.training import TrainingPool
from repro.sim import Metric

#: Responses split seed shared so both metric predictors fit the same
#: response configurations.
_SPLIT_SEED = 23


def _fit(pool, dataset, metric):
    predictor = ArchitectureCentricPredictor(pool.models(exclude=["gzip"]))
    response_idx, _ = dataset.split_indices(24, seed=_SPLIT_SEED)
    predictor.fit_responses(
        dataset.subset_configs(response_idx),
        dataset.subset_values("gzip", metric, response_idx),
    )
    return predictor


@pytest.fixture(scope="session")
def energy_pool(small_dataset) -> TrainingPool:
    pool = TrainingPool(
        small_dataset, Metric.ENERGY, training_size=200, seed=7
    )
    pool.train_all()
    return pool


@pytest.fixture(scope="session")
def cycles_predictor(cycles_pool, small_dataset):
    return _fit(cycles_pool, small_dataset, Metric.CYCLES)


@pytest.fixture(scope="session")
def energy_predictor(energy_pool, small_dataset):
    return _fit(energy_pool, small_dataset, Metric.ENERGY)


@pytest.fixture(scope="session")
def search_predictors(cycles_predictor, energy_predictor):
    return {
        Metric.CYCLES: cycles_predictor,
        Metric.ENERGY: energy_predictor,
    }
