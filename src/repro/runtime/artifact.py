"""The one checksummed ``.npz`` artifact writer/reader.

Every durable array artefact in this repository — trained model pools,
fitted predictors, simulated datasets, registry entries — shares the
same failure modes: a truncated download, a bit flip, a hand-edited
matrix, an archive produced by an incompatible code version.  They used
to share the *defences* only by copy-paste (``core/persistence.py`` and
``exploration/persistence.py`` each grew their own version/checksum
plumbing); this module is the single implementation both of them, and
the model registry, now build on.

An archive written by :func:`write_archive` carries two reserved keys:

* ``format_version`` — the caller's schema version, checked on read;
* ``checksum`` — a SHA-256 digest over every other entry's *name*,
  dtype, shape and bytes, recomputed and compared on read.

Writes are atomic (scratch file, fsync, rename), so a crash mid-write
leaves either the previous artifact or none — never a torn archive that
a later load would have to distrust.  Reads wrap every way an archive
can be unreadable (truncation, zip damage, missing keys) into one
:class:`ValueError` with the path in the message.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import zipfile
import zlib
from typing import Dict, Mapping, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "CHECKSUM_KEY",
    "FORMAT_KEY",
    "payload_checksum",
    "read_archive",
    "write_archive",
]

#: Reserved archive key holding the caller's schema version.
FORMAT_KEY = "format_version"

#: Reserved archive key holding the content digest.
CHECKSUM_KEY = "checksum"

_RESERVED = (FORMAT_KEY, CHECKSUM_KEY)


def payload_checksum(payload: Mapping[str, np.ndarray]) -> str:
    """SHA-256 hex digest over named arrays, in sorted key order.

    The key names are folded into the digest alongside each array's
    dtype, shape and bytes, so renaming an entry — not just corrupting
    one — changes the checksum.
    """
    digest = hashlib.sha256()
    for name in sorted(payload):
        if name in _RESERVED:
            continue
        array = np.asarray(payload[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def write_archive(
    path: Union[str, pathlib.Path],
    payload: Mapping[str, np.ndarray],
    format_version: int,
) -> pathlib.Path:
    """Write ``payload`` to ``path`` with version and checksum embedded.

    Args:
        path: Destination ``.npz`` path.
        payload: Named arrays (anything ``np.asarray`` accepts).  The
            reserved keys ``format_version`` and ``checksum`` are
            written by this function and must not appear in it.
        format_version: The caller's schema version.

    Returns:
        The destination path.
    """
    path = pathlib.Path(path)
    reserved = sorted(set(payload) & set(_RESERVED))
    if reserved:
        raise ValueError(f"payload uses reserved archive keys: {reserved}")
    complete = {
        FORMAT_KEY: np.array(int(format_version)),
        CHECKSUM_KEY: np.array(payload_checksum(payload)),
        **payload,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    # numpy appends ".npz" to names lacking it, so the scratch file must
    # already end in ".npz" for the rename below to find it.
    scratch = path.with_name(path.stem + ".tmp.npz")
    try:
        np.savez_compressed(scratch, **complete)
        with open(scratch, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(scratch, path)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    return path


def read_archive(
    path: Union[str, pathlib.Path],
    current_version: int,
    legacy_versions: Sequence[int] = (),
    label: str = "archive",
) -> Tuple[int, Dict[str, np.ndarray]]:
    """Load and verify an archive written by :func:`write_archive`.

    Args:
        path: The ``.npz`` archive.
        current_version: The schema version this code writes; archives
            at this version must carry a matching content checksum.
        legacy_versions: Older versions still accepted.  Their payload
            is returned *unverified* — the caller owns whatever
            integrity story those formats had (or lacked).
        label: Human-facing artefact kind for error messages
            ("dataset archive", "model pool", ...).

    Returns:
        ``(version, payload)`` with every array materialised and the
        reserved keys stripped from the payload.

    Raises:
        ValueError: on a truncated or unreadable file, an unsupported
            version, or a checksum mismatch.
    """
    path = pathlib.Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
    except (
        zipfile.BadZipFile, zlib.error, EOFError, OSError, KeyError,
        ValueError,
    ) as error:
        raise ValueError(
            f"corrupt or truncated {label} {path}: {error}"
        ) from error
    if FORMAT_KEY not in payload:
        raise ValueError(
            f"corrupt or truncated {label} {path}: no format version"
        )
    version = int(payload.pop(FORMAT_KEY))
    accepted = {int(current_version), *(int(v) for v in legacy_versions)}
    if version not in accepted:
        raise ValueError(f"unsupported {label} format version {version}")
    if version == int(current_version):
        recorded = payload.pop(CHECKSUM_KEY, None)
        if recorded is None:
            raise ValueError(
                f"corrupt or truncated {label} {path}: no checksum"
            )
        if payload_checksum(payload) != str(recorded):
            raise ValueError(
                f"{label} {path} failed its content checksum "
                "(the file was corrupted or tampered with)"
            )
    # Legacy versions keep their "checksum" entry (if any) in the
    # payload: its digest semantics belong to the caller's old format.
    return version, payload
