"""Ablation A7: direct vs composed prediction of ED and EDD.

The paper trains a separate predictor per metric and reports the
heavier products are the hardest (EDD ~21 % vs ~7 % for cycles).  Since
ED/EDD are algebraic products of cycles and energy, an obvious
alternative is to predict the two easy base metrics from the same 32
responses and compose.  This ablation measures both routes.
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE

from repro.core import evaluate_on_program
from repro.core.multimetric import MultiMetricPredictor
from repro.exploration import format_table, scale_banner
from repro.ml import correlation, rmae
from repro.sim import Metric
from repro.workloads.profile import stable_seed

PROGRAMS = ("gzip", "applu", "swim", "art", "crafty", "mesa")


def test_ablation_composed_metrics(benchmark, spec_dataset, pools,
                                   record_artifact):
    cycles_pool = pools(Metric.CYCLES)
    energy_pool = pools(Metric.ENERGY)
    ed_pool = pools(Metric.ED)
    edd_pool = pools(Metric.EDD)

    def run():
        composed = {Metric.ED: [], Metric.EDD: []}
        direct = {Metric.ED: [], Metric.EDD: []}
        for program in PROGRAMS:
            seed = stable_seed("a7", program)
            response_idx, holdout_idx = spec_dataset.split_indices(
                RESPONSES, seed=seed
            )
            response_configs = spec_dataset.subset_configs(response_idx)
            holdout_configs = spec_dataset.subset_configs(holdout_idx)

            predictor = MultiMetricPredictor(
                cycles_pool.models(exclude=[program]),
                energy_pool.models(exclude=[program]),
            )
            predictor.fit_responses(
                response_configs,
                spec_dataset.subset_values(
                    program, Metric.CYCLES, response_idx
                ),
                spec_dataset.subset_values(
                    program, Metric.ENERGY, response_idx
                ),
            )
            for metric, pool in ((Metric.ED, ed_pool),
                                 (Metric.EDD, edd_pool)):
                actual = spec_dataset.subset_values(
                    program, metric, holdout_idx
                )
                prediction = predictor.predict(holdout_configs, metric)
                composed[metric].append(
                    (rmae(prediction, actual),
                     correlation(prediction, actual))
                )
                score = evaluate_on_program(
                    pool.models(exclude=[program]), spec_dataset, program,
                    responses=RESPONSES, seed=seed,
                )
                direct[metric].append((score.rmae, score.correlation))
        return composed, direct

    composed, direct = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    means = {}
    for metric in (Metric.ED, Metric.EDD):
        for label, data in (("composed", composed), ("direct", direct)):
            mean_rmae = float(np.mean([s[0] for s in data[metric]]))
            mean_corr = float(np.mean([s[1] for s in data[metric]]))
            means[(metric, label)] = (mean_rmae, mean_corr)
            rows.append(
                (metric.value, label, round(mean_rmae, 1),
                 round(mean_corr, 3))
            )
    text = (
        scale_banner(
            "Ablation A7 — composed (cycles x energy) vs direct "
            "prediction of ED/EDD",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
            programs=len(PROGRAMS),
        )
        + "\n"
        + format_table(("metric", "route", "rmae%", "corr"), rows)
    )
    record_artifact("ablation_composed_metrics", text)

    # Composition must at least match the direct route on both products
    # (it reuses the easy base targets), and the shared-response design
    # means it costs half the response simulations of two direct fits.
    for metric in (Metric.ED, Metric.EDD):
        assert (means[(metric, "composed")][0]
                < 1.2 * means[(metric, "direct")][0])
