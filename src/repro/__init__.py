"""repro — architecture-centric microarchitectural design space exploration.

A from-scratch reproduction of Dubach, Jones and O'Boyle,
*Microarchitectural Design Space Exploration Using An Architecture-
Centric Approach* (MICRO-40, 2007; extended in IEEE TC 60(10), 2011).

Quick start::

    from repro import (
        DesignSpace, DesignSpaceDataset, Metric, TrainingPool,
        ArchitectureCentricPredictor, spec2000_suite,
    )

    suite = spec2000_suite()
    dataset = DesignSpaceDataset.sampled(suite, sample_size=1000, seed=0)
    pool = TrainingPool(dataset, Metric.CYCLES, training_size=512)
    models = pool.models(exclude=["applu"])  # offline, once

    predictor = ArchitectureCentricPredictor(models)
    responses, _ = dataset.split_indices(32, seed=1)
    predictor.fit_responses(
        dataset.subset_configs(responses),
        dataset.subset_values("applu", Metric.CYCLES, responses),
    )
    prediction = predictor.predict_one(dataset.simulator.space.baseline)

The subpackages:

* :mod:`repro.designspace` — the 13-parameter space of Table 1.
* :mod:`repro.workloads` — synthetic SPEC CPU 2000 / MiBench substrate.
* :mod:`repro.sim` — interval and pipeline simulators, energy model.
* :mod:`repro.ml` — MLP, linear regression, rmae/correlation.
* :mod:`repro.core` — the architecture-centric predictor itself.
* :mod:`repro.analysis` — space characterisation and clustering.
* :mod:`repro.exploration` — datasets and per-figure experiment runners.
* :mod:`repro.search` — closed-loop design-space search: gym-style
  environment, seeded agents, Pareto frontiers and hypervolume.
* :mod:`repro.runtime` — fault-tolerant, resumable campaign execution.
* :mod:`repro.distrib` — coordinator/worker campaigns across hosts.
* :mod:`repro.obs` — logging, metrics, tracing and run manifests.
"""

from repro.core import (
    ArchitectureCentricPredictor,
    ProgramSpecificPredictor,
    TrainingPool,
    cross_suite,
    evaluate_on_program,
    leave_one_out,
    program_specific_score,
)
from repro.designspace import Configuration, DesignSpace, sample_configurations
from repro.exploration import DesignSpaceDataset
from repro.ml import correlation, rmae
from repro.sim import IntervalSimulator, Metric
from repro.workloads import mibench_suite, spec2000_suite

__version__ = "1.0.0"

__all__ = [
    "ArchitectureCentricPredictor",
    "Configuration",
    "DesignSpace",
    "DesignSpaceDataset",
    "IntervalSimulator",
    "Metric",
    "ProgramSpecificPredictor",
    "TrainingPool",
    "correlation",
    "cross_suite",
    "evaluate_on_program",
    "leave_one_out",
    "mibench_suite",
    "program_specific_score",
    "rmae",
    "sample_configurations",
    "spec2000_suite",
]
