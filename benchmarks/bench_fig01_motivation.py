"""Fig. 1: the applu energy space — program-specific vs our model.

Both predictors receive the same 32 simulations of applu; the
architecture-centric model additionally carries offline knowledge of the
other 25 SPEC programs.  The paper's point: given equal per-program
budget, prior cross-program knowledge slashes the error.
"""

import numpy as np

from scale import RESPONSES, SAMPLE_SIZE, TRAINING_SIZE
from repro.exploration import motivation_experiment, scale_banner
from repro.sim import Metric


def test_fig01_motivation(benchmark, spec_dataset, record_artifact):
    result = benchmark.pedantic(
        motivation_experiment,
        args=(spec_dataset,),
        kwargs=dict(program="applu", metric=Metric.ENERGY,
                    responses=RESPONSES, training_size=TRAINING_SIZE),
        rounds=1,
        iterations=1,
    )

    # Summarise the sorted space in deciles, as a text rendering of the
    # figure's scatter-vs-line plot.
    lines = [
        scale_banner(
            "Fig 1 — applu energy space, predictions at 32 simulations",
            samples=SAMPLE_SIZE, T=TRAINING_SIZE, R=RESPONSES,
        ),
        f"{'decile':>6} | {'actual':>12} | {'program-specific':>16} | "
        f"{'architecture-centric':>20}",
    ]
    edges = np.linspace(0, len(result.actual) - 1, 11).astype(int)
    for decile, index in enumerate(edges):
        lines.append(
            f"{decile:>6} | {result.actual[index]:12.4e} | "
            f"{result.program_specific[index]:16.4e} | "
            f"{result.architecture_centric[index]:20.4e}"
        )
    lines.append(
        f"\nrmae: program-specific {result.program_specific_rmae:.1f}%  "
        f"architecture-centric {result.architecture_centric_rmae:.1f}%"
    )
    record_artifact("fig01_motivation", "\n".join(lines))

    # The figure's visible claim: our predictions hug the actual curve,
    # the program-specific ones scatter.
    assert result.architecture_centric_rmae < 0.5 * result.program_specific_rmae
