"""Fig. 4: per-program design-space characteristics for all 4 metrics."""

from scale import SAMPLE_SIZE

from repro.analysis import suite_statistics
from repro.exploration import format_table, scale_banner
from repro.sim import Metric


def test_fig04_program_variation(benchmark, spec_dataset, record_artifact):
    def regenerate():
        return {
            metric: suite_statistics(spec_dataset, metric)
            for metric in Metric.all()
        }

    per_metric = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    sections = [
        scale_banner(
            "Fig 4 — per-program space statistics (10M-instruction phase)",
            samples=SAMPLE_SIZE,
        )
    ]
    for metric, stats in per_metric.items():
        rows = [
            (
                s.program,
                f"{s.minimum:.3e}",
                f"{s.quartile25:.3e}",
                f"{s.median:.3e}",
                f"{s.quartile75:.3e}",
                f"{s.maximum:.3e}",
                f"{s.baseline:.3e}",
                f"{s.spread:.1f}x",
            )
            for s in stats.values()
        ]
        table = format_table(
            ("program", "min", "q25", "median", "q75", "max", "baseline",
             "spread"),
            rows,
        )
        sections.append(f"\n({metric.value})\n{table}")
    record_artifact("fig04_program_variation", "\n".join(sections))

    cycles = per_metric[Metric.CYCLES]
    # Fig. 4a: programs differ wildly in level (mcf slowest) and spread
    # (art varies enormously, parser only slightly).
    medians = {name: s.median for name, s in cycles.items()}
    assert max(medians, key=medians.get) in ("mcf", "art")
    assert cycles["art"].spread > 1.5 * cycles["parser"].spread
