"""Compiler-optimisation variants of a workload profile.

The paper's introduction motivates the architecture-centric model with
exactly this scenario: "there is a large overhead even if the designer
just wants to compile with a different optimization level" (citing
Vaswani et al., CGO 2007).  Under a program-specific predictor, gcc -O3
output of the same source is a brand-new program needing hundreds of
fresh simulations; under the architecture-centric model it needs 32.

This module derives optimisation-level variants from a base profile by
applying the first-order effects compiler optimisation has on the
characteristics the simulators consume:

* **-O0** (no optimisation): more dynamic instructions (no CSE, stack
  traffic), heavier memory fraction (spills), shorter dependency
  distances (no scheduling), larger hot-code footprint.
* **-O2**: the reference point — profiles in this repository model
  "highest optimisation level" binaries, so -O2/-O3 are near identity.
* **-O3 / unrolled**: fewer dynamic branches (unrolling), slightly
  higher ILP, larger code footprint, marginally fewer instructions.

Each variant keeps the program's idiosyncrasy *seed* lineage but
re-derives it per variant (the same source at a different optimisation
level is a similar-but-not-identical point in behaviour space).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .profile import Idiosyncrasy, InstructionMix, WorkloadProfile, stable_seed

#: Per-level first-order transformation knobs:
#: (instruction multiplier, memory-fraction multiplier, branch multiplier,
#:  ILP multiplier, dependency/window-scale multiplier, code-size multiplier)
_LEVELS: Dict[str, Tuple[float, float, float, float, float, float]] = {
    "O0": (1.6, 1.35, 1.05, 0.75, 0.7, 1.3),
    "O1": (1.2, 1.12, 1.02, 0.9, 0.85, 1.1),
    "O2": (1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
    "O3": (0.97, 0.97, 0.85, 1.08, 1.15, 1.25),
    "unrolled": (0.95, 0.98, 0.6, 1.15, 1.3, 1.6),
}

OPTIMIZATION_LEVELS: Tuple[str, ...] = tuple(_LEVELS)


def optimization_variant(
    profile: WorkloadProfile, level: str
) -> WorkloadProfile:
    """Derive the ``level`` build of a program from its base profile.

    Args:
        profile: The base (``-O2``-class) profile.
        level: One of :data:`OPTIMIZATION_LEVELS`.

    Returns:
        A new profile named ``"<name>-<level>"`` with the transformed
        characteristics and a fresh (but deterministic) idiosyncrasy.
    """
    try:
        (instr_mult, mem_mult, branch_mult, ilp_mult, window_mult,
         code_mult) = _LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown optimisation level {level!r}; "
            f"known: {list(_LEVELS)}"
        ) from None

    mix = profile.mix
    new_memory = min(0.55, mix.memory * mem_mult)
    new_branch = min(0.25, mix.branch * branch_mult)
    compute = 1.0 - new_memory - new_branch
    old_compute = 1.0 - mix.memory - mix.branch
    scale = compute / old_compute
    store_share = mix.store / mix.memory if mix.memory > 0 else 0.3
    new_mix = InstructionMix(
        int_alu=mix.int_alu * scale,
        int_mul=mix.int_mul * scale,
        fp_alu=mix.fp_alu * scale,
        fp_mul=mix.fp_mul * scale,
        load=new_memory * (1.0 - store_share),
        store=new_memory * store_share,
        branch=new_branch,
    ).normalised()

    code = profile.instruction_locality
    new_instruction_locality = type(code)(
        working_sets=tuple(
            (size * code_mult, weight) for size, weight in code.working_sets
        ),
        cold=code.cold,
        sharpness=code.sharpness,
    )
    name = f"{profile.name}-{level}"
    return profile.with_overrides(
        name=name,
        mix=new_mix,
        ilp_max=max(0.5, profile.ilp_max * ilp_mult),
        ilp_window_scale=max(5.0, profile.ilp_window_scale * window_mult),
        instruction_locality=new_instruction_locality,
        instructions=int(profile.instructions * instr_mult),
        idiosyncrasy_performance=Idiosyncrasy(
            amplitude=profile.idiosyncrasy_performance.amplitude,
            seed=stable_seed(profile.suite, name, "idio-perf"),
        ),
        idiosyncrasy_energy=Idiosyncrasy(
            amplitude=profile.idiosyncrasy_energy.amplitude,
            seed=stable_seed(profile.suite, name, "idio-energy"),
        ),
    )


def optimization_family(
    profile: WorkloadProfile,
    levels: Tuple[str, ...] = OPTIMIZATION_LEVELS,
) -> Dict[str, WorkloadProfile]:
    """All requested optimisation variants of one program, keyed by level."""
    return {level: optimization_variant(profile, level) for level in levels}
