"""Recompile a program, predict the new binary from 32 simulations.

The paper's introduction points out the Achilles heel of program-
specific predictors: "there is a large overhead even if the designer
just wants to compile with a different optimization level" — the new
binary is, to the predictor, a brand-new program.  This example plays
the scenario: the offline pool knows the standard (-O2-class) SPEC
binaries; we then "recompile" gzip at -O0, -O3 and with aggressive
unrolling, characterise each rebuild with 32 simulations, and compare
against training a fresh program-specific model on the same 32.

Run:  python examples/recompile_and_predict.py
"""

from repro import (
    DesignSpaceDataset,
    Metric,
    TrainingPool,
    evaluate_on_program,
    program_specific_score,
    spec2000_suite,
)
from repro.workloads import BenchmarkSuite, optimization_variant

PROGRAM = "gzip"
LEVELS = ("O0", "O1", "O3", "unrolled")


def main() -> None:
    suite = spec2000_suite()
    dataset = DesignSpaceDataset.sampled(suite, sample_size=1000, seed=29)
    pool = TrainingPool(dataset, Metric.CYCLES, training_size=512, seed=0)
    models = pool.models()  # includes the -O2-class gzip
    print(f"Offline pool: {len(models)} models over the standard binaries\n")

    rebuilds = [
        optimization_variant(suite[PROGRAM], level) for level in LEVELS
    ]
    rebuild_dataset = DesignSpaceDataset(
        BenchmarkSuite("rebuilds", rebuilds), dataset.configs,
        dataset.simulator,
    )

    print(f"{'rebuild':<15} | {'ours rmae':>9} | {'ours corr':>9} | "
          f"{'fresh-model rmae':>16}")
    print("-" * 60)
    for profile in rebuilds:
        ours = evaluate_on_program(
            models, rebuild_dataset, profile.name, responses=32, seed=13
        )
        fresh = program_specific_score(
            rebuild_dataset, profile.name, Metric.CYCLES, 32, seed=13
        )
        print(f"{profile.name:<15} | {ours.rmae:>8.1f}% | "
              f"{ours.correlation:>9.3f} | {fresh.rmae:>15.1f}%")

    print(
        "\nEach rebuild cost 32 simulations to characterise under the "
        "architecture-centric\nmodel; a program-specific model given the "
        "same 32 simulations cannot find the\ntrend — recompilation is "
        "exactly the cheap event the paper promises."
    )


if __name__ == "__main__":
    main()
