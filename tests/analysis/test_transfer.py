"""Tests for response-space transfer analysis."""

import numpy as np
import pytest

from repro.analysis import (
    nearest_pool_programs,
    response_space_distances,
    transferability_score,
)
from repro.sim import Metric


@pytest.fixture(scope="module")
def setting(cycles_pool, small_dataset):
    models = cycles_pool.models(exclude=["swim"])
    response_idx, _ = small_dataset.split_indices(32, seed=55)
    configs = small_dataset.subset_configs(response_idx)
    values = small_dataset.subset_values("swim", Metric.CYCLES, response_idx)
    return models, configs, values


class TestDistances:
    def test_one_distance_per_pool_program(self, setting):
        models, configs, values = setting
        distances = response_space_distances(models, configs, values)
        assert set(distances) == {m.program for m in models}
        assert all(d >= 0 for d in distances.values())

    def test_self_distance_is_smallest(self, cycles_pool, small_dataset):
        """A program's own responses are closest to its own model."""
        models = cycles_pool.models()  # includes gzip
        response_idx, _ = small_dataset.split_indices(32, seed=56)
        configs = small_dataset.subset_configs(response_idx)
        values = small_dataset.subset_values(
            "gzip", Metric.CYCLES, response_idx
        )
        distances = response_space_distances(models, configs, values)
        assert min(distances, key=distances.get) == "gzip"

    def test_memory_streamer_matches_memory_streamer(self, setting):
        """swim's nearest behavioural neighbour in this subset should be
        the other memory-streaming fp code (applu), not mesa/crafty."""
        models, configs, values = setting
        nearest = nearest_pool_programs(models, configs, values, count=2)
        names = [name for name, _ in nearest]
        assert "applu" in names

    def test_validation(self, setting):
        models, configs, values = setting
        with pytest.raises(ValueError):
            response_space_distances([], configs, values)
        with pytest.raises(ValueError):
            response_space_distances(models, configs, values[:-1])
        with pytest.raises(ValueError):
            response_space_distances(models, configs, np.zeros_like(values))


class TestScore:
    def test_score_in_unit_interval(self, setting):
        models, configs, values = setting
        score = transferability_score(models, configs, values)
        assert 0.0 < score <= 1.0

    def test_own_model_in_pool_raises_the_score(
        self, cycles_pool, small_dataset
    ):
        """Perfect coverage (the program's own model in the pool) must
        score higher than leave-one-out coverage."""
        response_idx, _ = small_dataset.split_indices(32, seed=57)
        configs = small_dataset.subset_configs(response_idx)
        values = small_dataset.subset_values(
            "gzip", Metric.CYCLES, response_idx
        )
        with_self = transferability_score(
            cycles_pool.models(), configs, values
        )
        without_self = transferability_score(
            cycles_pool.models(exclude=["gzip"]), configs, values
        )
        assert with_self > without_self

    def test_nearest_count_validated(self, setting):
        models, configs, values = setting
        with pytest.raises(ValueError):
            nearest_pool_programs(models, configs, values, count=0)
