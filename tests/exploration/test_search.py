"""Tests for the predictor-guided search strategies."""

import numpy as np
import pytest

from repro.exploration import (
    dominated_fraction,
    hill_climb,
    pareto_front,
    predicted_best,
)
from repro.search import TradeOffPoint
from repro.sim import Metric


class _OraclePredictor:
    """Predictor backed directly by the interval simulator."""

    def __init__(self, simulator, profile, metric):
        self._simulator = simulator
        self._profile = profile
        self._metric = metric

    def predict(self, configs):
        batch = self._simulator.simulate_batch(self._profile, list(configs))
        return batch.metric(self._metric)


@pytest.fixture(scope="module")
def oracle(simulator, small_suite):
    return _OraclePredictor(simulator, small_suite["gzip"], Metric.CYCLES)


@pytest.fixture(scope="module")
def energy_oracle(simulator, small_suite):
    return _OraclePredictor(simulator, small_suite["gzip"], Metric.ENERGY)


class TestPredictedBest:
    def test_best_is_best_of_shortlist(self, oracle, space):
        result = predicted_best(oracle, space, candidates=300, shortlist=5,
                                seed=1)
        values = [c.predicted for c in result.shortlist]
        assert result.best.predicted == min(values)
        assert result.candidates_scanned == 300
        assert result.simulations_spent == 0

    def test_shortlist_sorted(self, oracle, space):
        result = predicted_best(oracle, space, candidates=300, shortlist=5,
                                seed=1)
        predicted = [c.predicted for c in result.shortlist]
        assert predicted == sorted(predicted)

    def test_verification_reranks(self, oracle, space, simulator,
                                  small_suite):
        profile = small_suite["gzip"]

        def verify(config):
            return simulator.simulate(profile, config).cycles

        result = predicted_best(oracle, space, candidates=300, shortlist=5,
                                seed=1, verify=verify)
        assert result.simulations_spent == 5
        simulated = [c.simulated for c in result.shortlist]
        assert simulated == sorted(simulated)
        # Oracle predictions equal simulations, so ordering is stable.
        assert result.best.simulated == pytest.approx(result.best.predicted)

    def test_beats_baseline(self, oracle, space, simulator, small_suite):
        result = predicted_best(oracle, space, candidates=500, shortlist=3,
                                seed=2)
        baseline = simulator.simulate(
            small_suite["gzip"], space.baseline
        ).cycles
        assert result.best.predicted < baseline

    def test_invalid_shortlist_rejected(self, oracle, space):
        with pytest.raises(ValueError):
            predicted_best(oracle, space, candidates=10, shortlist=11)


class TestHillClimb:
    def test_never_worsens(self, oracle, space):
        result = hill_climb(oracle, space, max_steps=15)
        values = [c.predicted for c in result.shortlist]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_path_starts_at_baseline(self, oracle, space):
        result = hill_climb(oracle, space, max_steps=5)
        assert result.shortlist[0].configuration == space.baseline

    def test_improves_on_start(self, oracle, space):
        result = hill_climb(oracle, space, max_steps=30)
        assert result.best.predicted < result.shortlist[0].predicted

    def test_path_configurations_legal(self, oracle, space):
        result = hill_climb(oracle, space, max_steps=10)
        for candidate in result.shortlist:
            assert space.is_legal(candidate.configuration)

    def test_zero_simulations(self, oracle, space):
        assert hill_climb(oracle, space, max_steps=3).simulations_spent == 0

    def test_invalid_steps_rejected(self, oracle, space):
        with pytest.raises(ValueError):
            hill_climb(oracle, space, max_steps=0)


class TestParetoFront:
    def test_front_is_non_dominated(self, oracle, energy_oracle, space):
        front = pareto_front(oracle, energy_oracle, space, candidates=400,
                             seed=3)
        assert front
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.cycles <= a.cycles and b.energy <= a.energy
                    and (b.cycles < a.cycles or b.energy < a.energy)
                )
                assert not dominates

    def test_front_sorted_by_cycles(self, oracle, energy_oracle, space):
        front = pareto_front(oracle, energy_oracle, space, candidates=400,
                             seed=3)
        cycles = [p.cycles for p in front]
        assert cycles == sorted(cycles)

    def test_energy_decreases_along_front(self, oracle, energy_oracle, space):
        front = pareto_front(oracle, energy_oracle, space, candidates=400,
                             seed=3)
        energies = [p.energy for p in front]
        assert energies == sorted(energies, reverse=True)


class TestDominatedFraction:
    def test_full_domination(self):
        front = [TradeOffPoint(None, 1.0, 1.0)]
        points = [TradeOffPoint(None, 2.0, 2.0), TradeOffPoint(None, 3.0, 1.5)]
        assert dominated_fraction(front, points) == 1.0

    def test_no_domination(self):
        front = [TradeOffPoint(None, 5.0, 5.0)]
        points = [TradeOffPoint(None, 1.0, 1.0)]
        assert dominated_fraction(front, points) == 0.0

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            dominated_fraction([], [])


class TestSimulatedAnnealing:
    def test_never_returns_worse_than_start(self, oracle, space):
        from repro.exploration import simulated_annealing
        start_value = float(oracle.predict([space.baseline])[0])
        result = simulated_annealing(oracle, space, steps=150, seed=1)
        assert result.best.predicted <= start_value

    def test_beats_or_matches_hill_climbing_on_average(self, oracle, space):
        from repro.exploration import simulated_annealing
        hill = hill_climb(oracle, space, max_steps=40)
        annealed = min(
            simulated_annealing(oracle, space, steps=300, seed=s).best.predicted
            for s in (1, 2, 3)
        )
        assert annealed <= hill.best.predicted * 1.1

    def test_deterministic_given_seed(self, oracle, space):
        from repro.exploration import simulated_annealing
        a = simulated_annealing(oracle, space, steps=100, seed=9)
        b = simulated_annealing(oracle, space, steps=100, seed=9)
        assert a.best.predicted == b.best.predicted

    def test_zero_simulations(self, oracle, space):
        from repro.exploration import simulated_annealing
        result = simulated_annealing(oracle, space, steps=50, seed=2)
        assert result.simulations_spent == 0

    def test_invalid_arguments_rejected(self, oracle, space):
        from repro.exploration import simulated_annealing
        import pytest as _pytest
        with _pytest.raises(ValueError):
            simulated_annealing(oracle, space, steps=0)
        with _pytest.raises(ValueError):
            simulated_annealing(oracle, space, initial_temperature=0.0)

    def test_legal_result(self, oracle, space):
        from repro.exploration import simulated_annealing
        result = simulated_annealing(oracle, space, steps=80, seed=4)
        assert space.is_legal(result.best.configuration)


class TestDeprecationShim:
    """repro.exploration.search moved to repro.search.strategies."""

    def test_shim_import_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.exploration.search", None)
        with pytest.warns(DeprecationWarning, match="repro.search"):
            shim = importlib.import_module("repro.exploration.search")
        import repro.search.strategies as strategies

        assert shim.hill_climb is strategies.hill_climb
        assert shim.pareto_front is strategies.pareto_front
        assert shim.TradeOffPoint is strategies.TradeOffPoint

    def test_package_reexports_stay_silent(self):
        import warnings

        import repro.exploration as exploration

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert callable(exploration.hill_climb)
            assert callable(exploration.dominated_fraction)

    def test_frontier_rejects_nan(self, space):
        class _NaNPredictor:
            def predict(self, configs):
                values = np.ones(len(configs))
                values[0] = np.nan
                return values

        class _OnePredictor:
            def predict(self, configs):
                return np.ones(len(configs))

        with pytest.raises(ValueError, match="non-finite cycles"):
            pareto_front(
                _NaNPredictor(), _OnePredictor(), space,
                candidates=16, seed=0,
            )

    def test_dominated_fraction_rejects_nan(self, space):
        good = TradeOffPoint(space.baseline, 1.0, 1.0)
        bad = TradeOffPoint(space.baseline, float("nan"), 1.0)
        with pytest.raises(ValueError, match="non-finite"):
            dominated_fraction([good], [bad])
