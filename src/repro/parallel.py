"""Shared helpers for the process-parallel execution knobs.

Several layers fan work out over a ``ProcessPoolExecutor`` — the
offline training pool, the campaign runner, the CLI — and they all
speak the same ``n_jobs`` dialect, resolved here so every layer agrees
on what ``None`` and ``-1`` mean.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["resolve_jobs"]


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial (no worker processes at all);
    ``-1`` means one worker per CPU; any other positive integer is
    taken literally.

    Raises:
        ValueError: for zero or negative counts other than -1.
    """
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(
            f"n_jobs must be a positive integer or -1, got {n_jobs}"
        )
    return n_jobs
