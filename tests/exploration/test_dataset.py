"""Tests for the shared simulated dataset."""

import numpy as np
import pytest

from repro.exploration import DesignSpaceDataset
from repro.sim import Metric


class TestConstruction:
    def test_sampled_constructor(self, small_suite):
        dataset = DesignSpaceDataset.sampled(small_suite, sample_size=50,
                                             seed=1)
        assert len(dataset) == 50
        assert dataset.programs == small_suite.programs

    def test_empty_configs_rejected(self, small_suite, simulator):
        with pytest.raises(ValueError):
            DesignSpaceDataset(small_suite, [], simulator)


class TestValues:
    def test_values_shape(self, small_dataset):
        values = small_dataset.values("gzip", Metric.CYCLES)
        assert values.shape == (len(small_dataset),)
        assert np.all(values > 0)

    def test_values_cached(self, small_dataset):
        a = small_dataset.values("gzip", Metric.CYCLES)
        b = small_dataset.values("gzip", Metric.CYCLES)
        assert a is b

    def test_all_metrics_cached_together(self, small_dataset):
        small_dataset.values("crafty", Metric.CYCLES)
        assert ("crafty", Metric.EDD) in small_dataset._cache

    def test_matrix_shape_and_order(self, small_dataset):
        matrix = small_dataset.matrix(Metric.ENERGY)
        assert matrix.shape == (
            len(small_dataset.programs), len(small_dataset),
        )
        gzip_row = list(small_dataset.programs).index("gzip")
        assert np.allclose(
            matrix[gzip_row], small_dataset.values("gzip", Metric.ENERGY)
        )

    def test_values_match_direct_simulation(self, small_dataset):
        direct = small_dataset.simulator.simulate(
            small_dataset.suite["gzip"], small_dataset.configs[7]
        )
        assert small_dataset.values("gzip", Metric.CYCLES)[7] == pytest.approx(
            direct.cycles
        )


class TestSubsets:
    def test_subset_configs(self, small_dataset):
        subset = small_dataset.subset_configs([0, 2, 4])
        assert subset == [
            small_dataset.configs[0],
            small_dataset.configs[2],
            small_dataset.configs[4],
        ]

    def test_subset_values(self, small_dataset):
        values = small_dataset.subset_values("gzip", Metric.CYCLES, [1, 3])
        full = small_dataset.values("gzip", Metric.CYCLES)
        assert np.allclose(values, full[[1, 3]])

    def test_split_indices_disjoint(self, small_dataset):
        first, rest = small_dataset.split_indices(32, seed=5)
        assert len(first) == 32
        assert len(rest) == len(small_dataset) - 32
        assert set(first.tolist()).isdisjoint(rest.tolist())

    def test_split_deterministic(self, small_dataset):
        a, _ = small_dataset.split_indices(10, seed=6)
        b, _ = small_dataset.split_indices(10, seed=6)
        assert np.array_equal(a, b)

    def test_split_within_universe(self, small_dataset):
        universe = list(range(50))
        first, rest = small_dataset.split_indices(10, seed=7,
                                                  universe=universe)
        assert set(first.tolist()) <= set(universe)
        assert set(rest.tolist()) <= set(universe)

    def test_split_out_of_range_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split_indices(len(small_dataset) + 1)


class TestHydrate:
    """The public cache-hydration API (used by persistence/campaigns)."""

    def _fresh(self, small_suite, small_dataset):
        from repro.exploration import DesignSpaceDataset

        return DesignSpaceDataset(
            small_suite, small_dataset.configs, small_dataset.simulator
        )

    def test_hydrated_values_served_without_simulation(self, small_suite,
                                                       small_dataset):
        dataset = self._fresh(small_suite, small_dataset)
        values = np.linspace(1.0, 2.0, len(dataset))
        dataset.hydrate("gzip", Metric.CYCLES, values)
        assert dataset.hydrated("gzip", Metric.CYCLES)
        assert np.array_equal(dataset.values("gzip", Metric.CYCLES), values)

    def test_unknown_program_rejected(self, small_suite, small_dataset):
        dataset = self._fresh(small_suite, small_dataset)
        with pytest.raises(ValueError, match="not in suite"):
            dataset.hydrate(
                "doom", Metric.CYCLES, np.ones(len(dataset))
            )

    def test_wrong_shape_rejected(self, small_suite, small_dataset):
        dataset = self._fresh(small_suite, small_dataset)
        with pytest.raises(ValueError, match="shape"):
            dataset.hydrate(
                "gzip", Metric.CYCLES, np.ones(len(dataset) - 1)
            )
        with pytest.raises(ValueError, match="shape"):
            dataset.hydrate(
                "gzip", Metric.CYCLES,
                np.ones((len(dataset), 2)),
            )

    def test_non_finite_values_rejected(self, small_suite, small_dataset):
        dataset = self._fresh(small_suite, small_dataset)
        poisoned = np.ones(len(dataset))
        poisoned[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            dataset.hydrate("gzip", Metric.CYCLES, poisoned)

    def test_not_hydrated_until_computed(self, small_suite, small_dataset):
        dataset = self._fresh(small_suite, small_dataset)
        assert not dataset.hydrated("gzip", Metric.CYCLES)
