"""Tests for the one-call suite report."""

from repro.analysis import suite_report
from repro.sim import Metric


class TestSuiteReport:
    def test_contains_all_sections(self, small_dataset):
        report = suite_report(small_dataset, Metric.CYCLES)
        for needle in (
            "design-space report",
            "per-program space statistics",
            "outliers",
            "best 1%",
            "worst 1%",
            "main effects",
            "hierarchical clustering",
        ):
            assert needle in report

    def test_mentions_every_program(self, small_dataset):
        report = suite_report(small_dataset, Metric.CYCLES)
        for program in small_dataset.programs:
            assert program in report

    def test_dendrogram_optional(self, small_dataset):
        report = suite_report(small_dataset, Metric.CYCLES,
                              include_dendrogram=False)
        assert "hierarchical clustering" not in report

    def test_metric_in_header(self, small_dataset):
        report = suite_report(small_dataset, Metric.EDD)
        assert "metric=edd" in report
