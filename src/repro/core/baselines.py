"""Program-specific baseline family from the paper's related work.

Section 9.4 groups the prior program-specific predictors into three
families; this module wraps the two non-ANN ones behind the same
interface as :class:`~repro.core.program_model.ProgramSpecificPredictor`
so the comparison bench can pit them all against the
architecture-centric model under equal simulation budgets:

* :class:`LinearBaselinePredictor` — linear regression on the raw
  parameter vector (Joseph et al., HPCA 2006; the paper notes it is
  mainly used to identify key parameters).
* :class:`SplineBaselinePredictor` — additive restricted cubic spline
  regression (Lee & Brooks, ASPLOS 2006 / HPCA 2007).

Both learn log10 targets, like the ANN wrapper, so their errors are
directly comparable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.designspace.configuration import Configuration
from repro.designspace.space import DesignSpace
from repro.ml.linear import LinearRegressor
from repro.ml.spline import SplineRegressor
from repro.sim.metrics import Metric


class _RegressionPredictor:
    """Shared scaffolding: encode configs, learn log10 targets."""

    def __init__(
        self,
        space: DesignSpace,
        metric: Metric,
        program: str = "",
    ) -> None:
        self.space = space
        self.metric = metric
        self.program = program
        self._model = self._build()
        self._trained = False
        self.training_size_ = 0

    def _build(self):
        raise NotImplementedError

    def fit(
        self, configs: Sequence[Configuration], values: np.ndarray
    ) -> "_RegressionPredictor":
        """Train on simulated (configuration, metric value) pairs."""
        values = np.asarray(values, dtype=float).reshape(-1)
        if len(configs) != values.shape[0]:
            raise ValueError("configs and values disagree on sample count")
        if np.any(values <= 0.0):
            raise ValueError("metric values must be positive")
        features = self.space.encode_many(list(configs))
        self._model.fit(features, np.log10(values))
        self._trained = True
        self.training_size_ = len(configs)
        return self

    def predict(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Predict the metric for a batch of configurations."""
        if not self._trained:
            raise RuntimeError(
                f"{type(self).__name__} for {self.program!r} is untrained"
            )
        features = self.space.encode_many(list(configs))
        log_prediction = self._model.predict(features)
        return np.power(10.0, np.clip(log_prediction, -30.0, 30.0))

    def predict_one(self, config: Configuration) -> float:
        """Predict a single configuration."""
        return float(self.predict([config])[0])


class LinearBaselinePredictor(_RegressionPredictor):
    """Linear regression on the raw 13-parameter vector."""

    def _build(self) -> LinearRegressor:
        return LinearRegressor(fit_intercept=True, ridge=1e-6)


class SplineBaselinePredictor(_RegressionPredictor):
    """Additive restricted cubic spline regression (Lee & Brooks)."""

    def __init__(
        self,
        space: DesignSpace,
        metric: Metric,
        program: str = "",
        knots: int = 4,
    ) -> None:
        self._knots = knots
        super().__init__(space, metric, program)

    def _build(self) -> SplineRegressor:
        return SplineRegressor(knots=self._knots, ridge=1e-6)
