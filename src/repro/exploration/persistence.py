"""Saving and loading simulated datasets.

Simulating a dataset is cheap with the interval model but not free, and
downstream users may want to version, share or diff the exact data an
experiment ran on.  A dataset round-trips through a single ``.npz``
archive holding the raw configuration matrix and every cached metric
matrix; loading restores a fully usable
:class:`~repro.exploration.dataset.DesignSpaceDataset` whose values are
served from the archive instead of being re-simulated.

Archives carry a SHA-256 content checksum over the configurations and
every metric matrix.  A truncated download, a bit flip or a hand-edited
matrix therefore fails loudly at load time with :class:`ValueError` —
a corrupted archive can never hydrate into a plausible-looking dataset.
"""

from __future__ import annotations

import pathlib
import zipfile
from typing import Union

import numpy as np

from repro.designspace.configuration import PARAMETER_ORDER, Configuration
from repro.runtime.integrity import array_checksum
from repro.sim.interval import IntervalSimulator
from repro.sim.metrics import Metric
from repro.workloads.suite import BenchmarkSuite

from .dataset import DesignSpaceDataset

#: Version 2 added the mandatory content checksum.
_FORMAT_VERSION = 2


def _content_checksum(configs: np.ndarray, matrices) -> str:
    """Digest over the configuration matrix and all metric matrices."""
    return array_checksum(configs, *matrices)


def save_dataset(
    dataset: DesignSpaceDataset, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write a dataset (configurations + all metric matrices) to ``.npz``.

    Every program's metrics are materialised first, so the archive is
    complete regardless of what the caller already touched, and a
    content checksum is embedded so corruption is caught on load.
    """
    path = pathlib.Path(path)
    configs = np.array(
        [list(config.values()) for config in dataset.configs], dtype=np.int64
    )
    matrices = [dataset.matrix(metric) for metric in Metric.all()]
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "suite_name": np.array(dataset.suite.name),
        "programs": np.array(list(dataset.programs)),
        "configs": configs,
        "checksum": np.array(_content_checksum(configs, matrices)),
    }
    for metric, matrix in zip(Metric.all(), matrices):
        payload[f"metric_{metric.value}"] = matrix
    np.savez_compressed(path, **payload)
    return path


def load_dataset(
    path: Union[str, pathlib.Path],
    suite: BenchmarkSuite,
    simulator: IntervalSimulator | None = None,
) -> DesignSpaceDataset:
    """Load a dataset saved by :func:`save_dataset`.

    Args:
        path: The ``.npz`` archive.
        suite: The suite the archive was built from (profiles are not
            serialised; the caller must supply the same suite, which is
            validated by name and program list).
        simulator: Optional simulator for the restored dataset (used
            only for the design space / any future re-simulation).

    Raises:
        ValueError: if the archive is truncated or otherwise unreadable,
            fails its content checksum, or does not match the supplied
            suite.
    """
    path = pathlib.Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            return _hydrate_from_archive(archive, suite, simulator, path)
    except (zipfile.BadZipFile, EOFError, OSError, KeyError) as error:
        raise ValueError(
            f"corrupt or truncated dataset archive {path}: {error}"
        ) from error


def _hydrate_from_archive(
    archive, suite: BenchmarkSuite, simulator, path: pathlib.Path
) -> DesignSpaceDataset:
    version = int(archive["format_version"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version {version}")
    suite_name = str(archive["suite_name"])
    programs = [str(name) for name in archive["programs"]]
    if suite.name != suite_name:
        raise ValueError(
            f"archive was built from suite {suite_name!r}, "
            f"got {suite.name!r}"
        )
    if list(suite.programs) != programs:
        raise ValueError(
            "archive program list does not match the supplied suite"
        )
    config_matrix = archive["configs"]
    matrices = []
    for metric in Metric.all():
        matrix = archive[f"metric_{metric.value}"]
        if matrix.shape != (len(programs), len(config_matrix)):
            raise ValueError(
                f"metric matrix {metric.value} has shape {matrix.shape}, "
                f"expected {(len(programs), len(config_matrix))}"
            )
        matrices.append(matrix)
    expected = str(archive["checksum"])
    actual = _content_checksum(config_matrix, matrices)
    if actual != expected:
        raise ValueError(
            f"dataset archive {path} failed its content checksum "
            "(the file was corrupted or tampered with)"
        )
    configs = [
        Configuration(**dict(zip(PARAMETER_ORDER, row)))
        for row in config_matrix.tolist()
    ]
    dataset = DesignSpaceDataset(suite, configs, simulator)
    for metric, matrix in zip(Metric.all(), matrices):
        for row, program in enumerate(programs):
            dataset.hydrate(program, metric, matrix[row])
    return dataset
