"""Synthetic stand-ins for the MiBench embedded benchmark suite.

MiBench programs are small embedded kernels: working sets of a few tens
of kilobytes, compact code, regular loop-dominated control flow and
integer-heavy computation.  The suite covers the six MiBench categories
(automotive, consumer, network, office, security, telecomm); as in the
paper, ``ghostscript`` is omitted.  A few programs (``tiff2rgba``,
``patricia``) are given characteristics outside the SPEC CPU 2000
envelope — large streaming copies and pointer-trie chasing respectively —
because Section 7.3 observes exactly those programs resist cross-suite
prediction from SPEC-trained models.  In our synthetic substrate the
tiny hyper-regular security/telecom kernels (sha, blowfish, adpcm, ...)
are *also* far outside the SPEC envelope and show up among the hardest
cross-suite targets; what the experiments preserve is the mechanism —
the predictor's own training error flags exactly these programs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .builders import make_profile
from .profile import WorkloadProfile
from .suite import BenchmarkSuite

#: knobs per program: (category, memory, branch, fp, ilp_max, window_scale,
#: working sets [(KB, weight)...], cold, ifootprint KB, mispred floor,
#: mispred scale, mlp_max, idiosyncrasy)
_MIBENCH_KNOBS: Dict[str, Tuple] = {
    # automotive
    "basicmath": ("automotive", 0.26, 0.10, 0.45, 2.8, 40,
                  [(8, 0.02), (64, 0.01)], 0.001, 16, 0.020, 0.020, 2.0, 0.05),
    "bitcount": ("automotive", 0.18, 0.18, 0.00, 3.2, 30,
                 [(4, 0.01), (16, 0.01)], 0.001, 8, 0.040, 0.040, 1.5, 0.05),
    "qsort": ("automotive", 0.34, 0.16, 0.02, 2.2, 45,
              [(16, 0.03), (512, 0.04)], 0.002, 12, 0.080, 0.070, 2.0, 0.05),
    "susan": ("automotive", 0.32, 0.11, 0.12, 2.9, 45,
              [(24, 0.03), (384, 0.03)], 0.002, 24, 0.030, 0.030, 2.5, 0.05),
    # consumer
    "jpeg": ("consumer", 0.31, 0.12, 0.08, 2.8, 45,
             [(16, 0.03), (256, 0.02)], 0.002, 48, 0.035, 0.035, 2.4, 0.05),
    "lame": ("consumer", 0.30, 0.09, 0.38, 3.0, 55,
             [(32, 0.03), (640, 0.03)], 0.002, 96, 0.025, 0.025, 2.8, 0.05),
    "mad": ("consumer", 0.29, 0.11, 0.20, 2.9, 45,
            [(16, 0.03), (192, 0.02)], 0.002, 48, 0.030, 0.030, 2.2, 0.05),
    "tiff2bw": ("consumer", 0.37, 0.09, 0.05, 2.5, 50,
                [(32, 0.04), (2048, 0.06)], 0.003, 24, 0.025, 0.025, 3.5, 0.05),
    "tiff2rgba": ("consumer", 0.47, 0.05, 0.04, 2.0, 150,
                  [(150, 0.04), (30000, 0.26)], 0.008, 20, 0.012, 0.012, 7.5, 0.45),
    "tiffdither": ("consumer", 0.34, 0.12, 0.08, 2.5, 45,
                   [(24, 0.03), (1024, 0.04)], 0.003, 24, 0.035, 0.035, 2.8, 0.05),
    "tiffmedian": ("consumer", 0.36, 0.10, 0.05, 2.5, 50,
                   [(40, 0.04), (1536, 0.05)], 0.003, 24, 0.030, 0.030, 3.0, 0.05),
    "typeset": ("office", 0.34, 0.16, 0.02, 2.3, 50,
                [(32, 0.04), (1024, 0.04)], 0.003, 256, 0.055, 0.055, 2.0, 0.06),
    # network
    "dijkstra": ("network", 0.35, 0.15, 0.00, 2.2, 50,
                 [(12, 0.03), (384, 0.04)], 0.002, 12, 0.060, 0.055, 1.8, 0.05),
    "patricia": ("network", 0.38, 0.20, 0.00, 1.4, 110,
                 [(8, 0.02), (6000, 0.16)], 0.006, 16, 0.150, 0.090, 1.15, 0.60),
    # office
    "ispell": ("office", 0.33, 0.16, 0.00, 2.3, 45,
               [(24, 0.03), (512, 0.03)], 0.002, 64, 0.055, 0.055, 1.9, 0.05),
    "stringsearch": ("office", 0.30, 0.18, 0.00, 2.5, 35,
                     [(8, 0.02), (64, 0.01)], 0.001, 8, 0.050, 0.050, 1.8, 0.05),
    # security
    "blowfish": ("security", 0.27, 0.08, 0.00, 3.3, 35,
                 [(6, 0.01), (32, 0.01)], 0.001, 8, 0.015, 0.015, 1.8, 0.05),
    "rijndael": ("security", 0.29, 0.07, 0.00, 3.4, 35,
                 [(8, 0.01), (48, 0.01)], 0.001, 12, 0.012, 0.012, 2.0, 0.05),
    "sha": ("security", 0.24, 0.09, 0.00, 3.3, 30,
            [(4, 0.01), (24, 0.01)], 0.001, 8, 0.015, 0.015, 1.6, 0.05),
    "pgp": ("security", 0.30, 0.12, 0.02, 2.8, 40,
            [(16, 0.02), (256, 0.02)], 0.002, 96, 0.035, 0.035, 2.0, 0.05),
    # telecomm
    "adpcm": ("telecomm", 0.25, 0.13, 0.00, 2.7, 30,
              [(4, 0.01), (16, 0.01)], 0.001, 6, 0.030, 0.030, 1.5, 0.05),
    "crc32": ("telecomm", 0.33, 0.14, 0.00, 2.6, 30,
              [(4, 0.01), (48, 0.02)], 0.001, 4, 0.010, 0.010, 2.2, 0.05),
    "fft": ("telecomm", 0.31, 0.08, 0.48, 3.1, 55,
            [(24, 0.03), (512, 0.03)], 0.002, 16, 0.015, 0.015, 3.0, 0.05),
    "gsm": ("telecomm", 0.28, 0.11, 0.12, 2.9, 40,
            [(8, 0.02), (96, 0.01)], 0.001, 24, 0.025, 0.025, 2.0, 0.05),
}


def mibench_profile(name: str) -> WorkloadProfile:
    """Build the synthetic profile for one MiBench program."""
    try:
        knobs = _MIBENCH_KNOBS[name]
    except KeyError:
        raise KeyError(
            f"unknown MiBench program {name!r}; known: {sorted(_MIBENCH_KNOBS)}"
        ) from None
    (category, memory, branch, fp, ilp, window, working_sets, cold,
     ifootprint, floor, scale, mlp, idiosyncrasy) = knobs
    return make_profile(
        name,
        "mibench",
        category,
        memory_fraction=memory,
        branch_fraction=branch,
        fp_fraction=fp,
        ilp_max=ilp,
        ilp_window_scale=window,
        working_sets_kb=working_sets,
        cold_miss=cold,
        instruction_footprint_kb=ifootprint,
        mispredict_floor=floor,
        mispredict_scale=scale,
        mlp_max=mlp,
        idiosyncrasy=idiosyncrasy,
        static_branches=96,
    )


def mibench_suite() -> BenchmarkSuite:
    """The synthetic MiBench suite (24 programs, ghostscript omitted)."""
    return BenchmarkSuite(
        "mibench", tuple(mibench_profile(name) for name in _MIBENCH_KNOBS)
    )
