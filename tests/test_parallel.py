"""Tests for the shared ``n_jobs`` resolver (one dialect everywhere)."""

import pytest

from repro.parallel import JOBS_ENV, resolve_jobs


class TestResolveJobs:
    def test_none_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_count_taken_literally(self):
        assert resolve_jobs(3) == 3

    def test_minus_one_means_all_cpus(self):
        assert resolve_jobs(-1) >= 1

    def test_zero_and_negatives_rejected(self):
        for bad in (0, -2, -17):
            with pytest.raises(ValueError):
                resolve_jobs(bad)

    def test_env_supplies_the_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_env_minus_one_means_all_cpus(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "-1")
        assert resolve_jobs(None) >= 1

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(2) == 2

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "  ")
        assert resolve_jobs(None) == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_zero_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "0")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_caller_default_used_without_env(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None, default=4) == 4

    def test_env_beats_caller_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "2")
        assert resolve_jobs(None, default=4) == 2
