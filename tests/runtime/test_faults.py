"""Tests for deterministic fault injection."""

import numpy as np
import pytest

from repro.runtime import (
    FaultInjectingBackend,
    PermanentSimulationError,
    TransientSimulationError,
    VirtualClock,
)


def _drive(backend, profile, configs, attempts):
    """Call the backend repeatedly, recording each attempt's outcome."""
    outcomes = []
    for _ in range(attempts):
        try:
            result = backend.simulate_batch(profile, configs)
        except (TransientSimulationError, PermanentSimulationError) as error:
            outcomes.append(type(error).__name__)
        else:
            finite = bool(
                np.all(np.isfinite(result.cycles))
                and np.all(np.isfinite(result.energy))
                and np.all(np.isfinite(result.ed))
                and np.all(np.isfinite(result.edd))
            )
            outcomes.append("ok" if finite else "corrupt")
    return outcomes


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self, backend, tiny_suite,
                                           tiny_configs):
        profile = tiny_suite["gzip"]
        first = _drive(
            FaultInjectingBackend(backend, seed=3, transient_rate=0.5),
            profile, tiny_configs, 20,
        )
        second = _drive(
            FaultInjectingBackend(backend, seed=3, transient_rate=0.5),
            profile, tiny_configs, 20,
        )
        assert first == second
        assert "TransientSimulationError" in first  # rate 0.5 must fire

    def test_different_seeds_differ(self, backend, tiny_suite, tiny_configs):
        profile = tiny_suite["gzip"]
        schedules = {
            tuple(_drive(
                FaultInjectingBackend(backend, seed=s, transient_rate=0.5),
                profile, tiny_configs, 20,
            ))
            for s in range(4)
        }
        assert len(schedules) > 1

    def test_fault_depends_on_attempt_number(self, backend, tiny_suite,
                                             tiny_configs):
        """Transients clear on retry: the same cell eventually succeeds."""
        faulty = FaultInjectingBackend(backend, seed=0, transient_rate=0.5)
        outcomes = _drive(faulty, tiny_suite["gzip"], tiny_configs, 20)
        assert "ok" in outcomes and "TransientSimulationError" in outcomes

    def test_successful_result_is_uncorrupted(self, backend, tiny_suite,
                                              tiny_configs):
        """Whatever faults fire, a clean attempt equals the inner truth."""
        profile = tiny_suite["applu"]
        truth = backend.simulate_batch(profile, tiny_configs)
        faulty = FaultInjectingBackend(
            backend, seed=1, transient_rate=0.3, corrupt_rate=0.3
        )
        for _ in range(30):
            try:
                result = faulty.simulate_batch(profile, tiny_configs)
            except TransientSimulationError:
                continue
            if np.all(np.isfinite(result.cycles)) and np.all(
                np.isfinite(result.energy)
            ) and np.all(np.isfinite(result.ed)) and np.all(
                np.isfinite(result.edd)
            ):
                assert np.array_equal(result.cycles, truth.cycles)
                assert np.array_equal(result.edd, truth.edd)
                return
        pytest.fail("no clean attempt in 30 tries at 30% rates")


class TestFaultKinds:
    def test_zero_rates_are_transparent(self, backend, tiny_suite,
                                        tiny_configs):
        faulty = FaultInjectingBackend(backend, seed=0)
        profile = tiny_suite["gzip"]
        truth = backend.simulate_batch(profile, tiny_configs)
        result = faulty.simulate_batch(profile, tiny_configs)
        assert np.array_equal(result.cycles, truth.cycles)
        assert faulty.calls == 1
        assert faulty.injected_transients == 0

    def test_corruption_injects_nan_or_inf(self, backend, tiny_suite,
                                           tiny_configs):
        faulty = FaultInjectingBackend(backend, seed=2, corrupt_rate=1.0)
        result = faulty.simulate_batch(tiny_suite["gzip"], tiny_configs)
        arrays = np.concatenate(
            [result.cycles, result.energy, result.ed, result.edd]
        )
        assert np.any(~np.isfinite(arrays))
        assert faulty.injected_corruptions == 1

    def test_permanent_failure_persists_across_attempts(self, backend,
                                                        tiny_suite,
                                                        tiny_configs):
        faulty = FaultInjectingBackend(backend, seed=0, permanent_rate=1.0)
        for _ in range(5):
            with pytest.raises(PermanentSimulationError):
                faulty.simulate_batch(tiny_suite["gzip"], tiny_configs)

    def test_stall_advances_the_clock(self, backend, tiny_suite,
                                      tiny_configs):
        clock = VirtualClock()
        faulty = FaultInjectingBackend(
            backend, seed=0, stall_rate=1.0, stall_seconds=45.0,
            sleep=clock.sleep,
        )
        faulty.simulate_batch(tiny_suite["gzip"], tiny_configs)
        assert clock.now == pytest.approx(45.0)
        assert faulty.injected_stalls == 1

    def test_invalid_rate_rejected(self, backend):
        with pytest.raises(ValueError, match="transient_rate"):
            FaultInjectingBackend(backend, transient_rate=1.5)

    def test_reset_clears_counters(self, backend, tiny_suite, tiny_configs):
        faulty = FaultInjectingBackend(backend, seed=0, transient_rate=1.0)
        with pytest.raises(TransientSimulationError):
            faulty.simulate_batch(tiny_suite["gzip"], tiny_configs)
        faulty.reset()
        assert faulty.calls == 0 and faulty.injected_transients == 0


class TestVirtualClock:
    def test_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(2.5)
        clock.sleep(1.5)
        assert clock() == pytest.approx(4.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1.0)
