"""Deprecated shim — the search strategies moved to ``repro.search``.

The classic predictor-guided strategies (:func:`predicted_best`,
:func:`hill_climb`, :func:`simulated_annealing`, :func:`pareto_front`,
:func:`dominated_fraction`) now live in
:mod:`repro.search.strategies`, beside their gym-style successors.
Importing this module re-exports them unchanged but emits a
``DeprecationWarning``; update imports to ``repro.search`` (or keep
using ``repro.exploration``'s package-level re-exports, which stay
silent).
"""

from __future__ import annotations

import warnings

from repro.search.strategies import (
    Predictor,
    RankedCandidate,
    SearchResult,
    TradeOffPoint,
    dominated_fraction,
    hill_climb,
    pareto_front,
    predicted_best,
    simulated_annealing,
)

__all__ = [
    "Predictor",
    "RankedCandidate",
    "SearchResult",
    "TradeOffPoint",
    "dominated_fraction",
    "hill_climb",
    "pareto_front",
    "predicted_best",
    "simulated_annealing",
]

warnings.warn(
    "repro.exploration.search moved to repro.search.strategies; this "
    "shim will be removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
