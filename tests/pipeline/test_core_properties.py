"""Property-based tests for the pipeline simulator.

Hand-built micro-traces exercise the pipeline mechanics precisely, and
hypothesis-generated random traces check the global invariants
(conservation, boundedness, determinism) over arbitrary instruction
streams.
"""

from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import DesignSpace
from repro.sim.pipeline import PipelineSimulator
from repro.workloads.tracegen import OpClass, TraceInstruction

_SPACE = DesignSpace()


def _instruction(
    index: int,
    op: OpClass,
    pc: Optional[int] = None,
    dest: Optional[int] = None,
    sources: Tuple[int, ...] = (0,),
    address: Optional[int] = None,
    taken: Optional[bool] = None,
) -> TraceInstruction:
    if dest is None and op not in (OpClass.STORE, OpClass.BRANCH):
        dest = index % 32
    if address is None and op.is_memory:
        address = 0x1000 + (index % 16) * 32
    branch_id = index % 8 if op is OpClass.BRANCH else None
    if op is OpClass.BRANCH and taken is None:
        taken = False
    return TraceInstruction(
        index=index,
        op=op,
        pc=pc if pc is not None else index * 4,
        dest=dest,
        sources=sources,
        address=address,
        branch_id=branch_id,
        taken=taken,
    )


class TestMicroTraces:
    def test_single_instruction(self, space):
        trace = [_instruction(0, OpClass.INT_ALU)]
        result = PipelineSimulator(space.baseline).run(trace)
        assert result.stats.committed == 1
        assert result.cycles >= 1

    def test_serial_dependency_chain_is_latency_bound(self, space):
        """A pure chain of dependent ALU ops commits ~1 per cycle."""
        trace = []
        for i in range(200):
            trace.append(
                _instruction(i, OpClass.INT_ALU, pc=(i % 64) * 4,
                             dest=i % 32, sources=((i - 1) % 32,))
            )
        result = PipelineSimulator(space.baseline).run(trace)
        # Each op waits for its predecessor: >= ~1 cycle per instruction.
        assert result.cycles >= 190

    def test_independent_ops_reach_high_ipc(self, space):
        """Fully independent ALU ops in a hot loop flow at multiple per
        cycle (looping PCs keep the I-cache warm)."""
        trace = [
            _instruction(i, OpClass.INT_ALU, pc=(i % 64) * 4,
                         dest=i % 32, sources=())
            for i in range(800)
        ]
        result = PipelineSimulator(space.baseline).run(trace, warmup=200)
        assert result.ipc > 1.5

    def test_hot_loads_hit_after_first_touch(self, space):
        trace = [
            _instruction(i, OpClass.LOAD, address=0x1000, sources=())
            for i in range(100)
        ]
        result = PipelineSimulator(space.baseline).run(trace)
        assert result.stats.dcache_misses == 1

    def test_streaming_loads_all_miss(self, space):
        trace = [
            _instruction(i, OpClass.LOAD, address=0x100000 + i * 4096,
                         sources=())
            for i in range(60)
        ]
        result = PipelineSimulator(space.baseline).run(trace)
        assert result.stats.dcache_misses == 60

    def test_never_taken_branches_learned(self, space):
        trace = []
        for i in range(300):
            op = OpClass.BRANCH if i % 4 == 3 else OpClass.INT_ALU
            trace.append(_instruction(i, op, pc=(i % 40) * 4, taken=False))
        result = PipelineSimulator(space.baseline).run(trace, warmup=150)
        assert result.stats.mispredict_ratio < 0.2


_ops = st.sampled_from(list(OpClass))


@st.composite
def random_traces(draw):
    length = draw(st.integers(min_value=5, max_value=120))
    trace: List[TraceInstruction] = []
    for i in range(length):
        op = draw(_ops)
        sources = tuple(
            draw(st.lists(st.integers(0, 31), min_size=0, max_size=2))
        )
        taken = draw(st.booleans()) if op is OpClass.BRANCH else None
        address = (
            draw(st.integers(0, 1 << 20)) * 32 if op.is_memory else None
        )
        trace.append(
            _instruction(
                i, op, pc=draw(st.integers(0, 4096)) * 4,
                sources=sources, address=address, taken=taken,
            )
        )
    return trace


class TestRandomTraces:
    @given(trace=random_traces())
    @settings(max_examples=25, deadline=None)
    def test_everything_commits(self, trace):
        result = PipelineSimulator(_SPACE.baseline).run(trace)
        assert result.stats.committed == len(trace)

    @given(trace=random_traces())
    @settings(max_examples=25, deadline=None)
    def test_ipc_bounded(self, trace):
        result = PipelineSimulator(_SPACE.baseline).run(trace)
        assert 0.0 < result.ipc <= _SPACE.baseline.width

    @given(trace=random_traces())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, trace):
        a = PipelineSimulator(_SPACE.baseline).run(trace)
        b = PipelineSimulator(_SPACE.baseline).run(trace)
        assert a.cycles == b.cycles

    @given(trace=random_traces())
    @settings(max_examples=15, deadline=None)
    def test_counters_consistent(self, trace):
        result = PipelineSimulator(_SPACE.baseline).run(trace)
        stats = result.stats
        memory_ops = sum(1 for t in trace if t.op.is_memory)
        assert stats.loads + stats.stores == memory_ops
        assert stats.branches == sum(
            1 for t in trace if t.op is OpClass.BRANCH
        )
        assert stats.mispredicts <= stats.branches
        assert stats.dcache_misses <= stats.dcache_accesses

    @given(trace=random_traces())
    @settings(max_examples=10, deadline=None)
    def test_tiny_machine_still_completes(self, trace):
        tiny = _SPACE.baseline.replace(
            width=2, rob_size=32, iq_size=8, lsq_size=8, rf_size=40,
            rf_read_ports=4, rf_write_ports=2, max_branches=8,
            icache_kb=8, dcache_kb=8, l2cache_kb=256,
        )
        result = PipelineSimulator(tiny).run(trace)
        assert result.stats.committed == len(trace)
