"""repro.load — the open-loop load plane for the serving subsystem.

The paper's pitch is answering design-space queries 4–5 orders of
magnitude faster than simulation; this package proves the serving
layer can absorb that query volume.  It is the load-generation
counterpart to :mod:`repro.distrib.chaos`: a seeded declarative JSON
plan (:class:`LoadPlan`) drives deterministic arrival processes
(:mod:`~repro.load.arrivals` — constant, Poisson, burst, ramp) and
traffic mixes (zipf-skewed hot configurations, cold-miss floods,
mixed ``/predict`` + ``/search`` suites), and an **open-loop**
generator (:class:`LoadGenerator`) replays the schedule without ever
waiting for completions — so measured latency includes queueing delay
instead of hiding it (no coordinated omission).

Per-request outcomes land in the process metrics registry
(``load_requests{stage,kind,outcome}``, ``load_request_seconds``), so
``repro slo check`` gates a load run the same way it gates a campaign.
``repro load --plan`` is the CLI entry; ``benchmarks/bench_load.py``
sweeps offered load through saturation with it.
"""

from .arrivals import ARRIVAL_KINDS, arrival_offsets
from .generator import (
    LoadGenerator,
    LoadReport,
    RequestRecord,
    ScheduledRequest,
    StageSummary,
    build_schedule,
)
from .plan import MIX_KINDS, LoadPlan, LoadStage

__all__ = [
    "ARRIVAL_KINDS",
    "LoadGenerator",
    "LoadPlan",
    "LoadReport",
    "LoadStage",
    "MIX_KINDS",
    "RequestRecord",
    "ScheduledRequest",
    "StageSummary",
    "arrival_offsets",
    "build_schedule",
]
