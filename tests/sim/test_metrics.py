"""Tests for the target metric definitions."""

import numpy as np
import pytest

from repro.sim import Metric, derive_metrics


class TestMetricEnum:
    def test_all_four_in_paper_order(self):
        assert [m.value for m in Metric.all()] == [
            "cycles", "energy", "ed", "edd",
        ]

    def test_from_name(self):
        assert Metric.from_name("EDD") is Metric.EDD
        assert Metric.from_name("cycles") is Metric.CYCLES

    def test_from_name_unknown(self):
        with pytest.raises(ValueError, match="unknown metric"):
            Metric.from_name("ipc")


class TestDeriveMetrics:
    def test_products(self):
        metrics = derive_metrics(10.0, 3.0)
        assert metrics[Metric.ED] == pytest.approx(30.0)
        assert metrics[Metric.EDD] == pytest.approx(300.0)

    def test_vectorised(self):
        cycles = np.array([10.0, 20.0])
        energy = np.array([2.0, 4.0])
        metrics = derive_metrics(cycles, energy)
        assert metrics[Metric.EDD] == pytest.approx([200.0, 1600.0])

    def test_edd_emphasises_delay(self):
        """Doubling delay at constant energy quadruples... no: doubles ED
        and quadruples EDD."""
        base = derive_metrics(10.0, 3.0)
        slow = derive_metrics(20.0, 3.0)
        assert slow[Metric.ED] / base[Metric.ED] == pytest.approx(2.0)
        assert slow[Metric.EDD] / base[Metric.EDD] == pytest.approx(4.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            derive_metrics(0.0, 1.0)
        with pytest.raises(ValueError):
            derive_metrics(1.0, -1.0)
