"""Tests for compiler-optimisation profile variants."""

import pytest

from repro.sim import IntervalSimulator
from repro.workloads import (
    OPTIMIZATION_LEVELS,
    optimization_family,
    optimization_variant,
    spec2000_profile,
)


@pytest.fixture(scope="module")
def base():
    return spec2000_profile("gzip")


class TestVariants:
    def test_o2_is_near_identity(self, base):
        variant = optimization_variant(base, "O2")
        assert variant.instructions == base.instructions
        assert variant.ilp_max == pytest.approx(base.ilp_max)
        assert variant.name == "gzip-O2"

    def test_o0_runs_more_instructions(self, base):
        o0 = optimization_variant(base, "O0")
        assert o0.instructions > 1.4 * base.instructions

    def test_o0_is_more_memory_bound(self, base):
        o0 = optimization_variant(base, "O0")
        assert o0.mix.memory > base.mix.memory

    def test_unrolling_removes_branches(self, base):
        unrolled = optimization_variant(base, "unrolled")
        assert unrolled.mix.branch < 0.7 * base.mix.branch

    def test_unrolling_grows_code(self, base):
        unrolled = optimization_variant(base, "unrolled")
        assert (unrolled.instruction_locality.footprint
                > base.instruction_locality.footprint)

    def test_mix_stays_normalised(self, base):
        for level in OPTIMIZATION_LEVELS:
            mix = optimization_variant(base, level).mix
            assert sum(mix.as_tuple()) == pytest.approx(1.0)

    def test_unknown_level_rejected(self, base):
        with pytest.raises(ValueError, match="unknown"):
            optimization_variant(base, "Ofast")

    def test_family_covers_levels(self, base):
        family = optimization_family(base)
        assert set(family) == set(OPTIMIZATION_LEVELS)

    def test_variants_are_distinct_programs(self, base):
        """Each variant has its own idiosyncrasy (same source, new
        binary: similar but not identical behaviour)."""
        o0 = optimization_variant(base, "O0")
        assert (o0.idiosyncrasy_performance.seed
                != base.idiosyncrasy_performance.seed)


class TestSimulatedEffects:
    def test_o0_is_slower(self, base, space):
        simulator = IntervalSimulator(space)
        o0 = optimization_variant(base, "O0")
        baseline_cycles = simulator.simulate(base, space.baseline).cycles
        o0_cycles = simulator.simulate(o0, space.baseline).cycles
        assert o0_cycles > 1.3 * baseline_cycles

    def test_o3_not_slower(self, base, space):
        simulator = IntervalSimulator(space)
        o3 = optimization_variant(base, "O3")
        baseline_cycles = simulator.simulate(base, space.baseline).cycles
        o3_cycles = simulator.simulate(o3, space.baseline).cycles
        assert o3_cycles < 1.05 * baseline_cycles
