"""Documentation-quality gates over the public API.

The deliverable promises doc comments on every public item; these tests
enforce it mechanically: every public module, class, function and
method reachable from the ``repro`` subpackages carries a docstring.
A second gate keeps the library observable rather than chatty: no bare
``print(`` outside the CLI — diagnostics go through ``repro.obs``.
"""

import importlib
import inspect
import pathlib
import re

import pytest

PACKAGES = (
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.designspace",
    "repro.distrib",
    "repro.exploration",
    "repro.ml",
    "repro.obs",
    "repro.runtime",
    "repro.search",
    "repro.serve",
    "repro.sim",
    "repro.sim.pipeline",
    "repro.workloads",
)


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("package", PACKAGES)
class TestDocstrings:
    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"

    def test_public_members_documented(self, package):
        module = importlib.import_module(package)
        undocumented = [
            name
            for name, member in _public_members(module)
            if not inspect.getdoc(member)
        ]
        assert not undocumented, (
            f"{package} exports undocumented members: {undocumented}"
        )

    def test_public_methods_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name, member in _public_members(module):
            if not inspect.isclass(member):
                continue
            for method_name, method in inspect.getmembers(
                member, inspect.isfunction
            ):
                if method_name.startswith("_"):
                    continue
                # Skip members inherited from outside the project.
                if "repro" not in (method.__module__ or ""):
                    continue
                if not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, (
            f"{package} has undocumented public methods: {undocumented}"
        )


class TestNoBarePrints:
    """Library code reports through ``repro.obs``, never ``print``.

    The CLI is the one legitimate stdout producer and is exempt.  The
    pattern requires a word boundary so identifiers merely ending in
    ``print`` (``fingerprint(``, ``footprint(``) don't trip it.
    """

    EXEMPT = ("cli.py",)
    BARE_PRINT = re.compile(r"(?<![\w.])print\(")

    def test_no_print_calls_in_library_code(self):
        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.name in self.EXEMPT:
                continue
            for number, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                code = line.split("#", 1)[0]
                if self.BARE_PRINT.search(code):
                    offenders.append(f"{path.relative_to(src)}:{number}")
        assert not offenders, (
            "bare print( in library code (use repro.obs logging): "
            f"{offenders}"
        )


class TestExportHygiene:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_lists_are_sorted_sets(self, package):
        module = importlib.import_module(package)
        names = getattr(module, "__all__", None)
        if names is None:
            pytest.skip("no __all__")
        assert len(set(names)) == len(names), f"duplicates in {package}.__all__"
        for name in names:
            assert hasattr(module, name), f"{package}.{name} missing"
