"""Tests for the model registry: publish/load, versions, integrity."""

import json

import numpy as np
import pytest

from repro.core import ArchitectureCentricPredictor
from repro.serve import ModelRegistry, RECORD_SCHEMA


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


@pytest.fixture()
def published(registry, fitted_predictor):
    record = registry.publish(
        fitted_predictor, "gzip-cycles", seed=7, notes="test fixture"
    )
    return record


class TestPublish:
    def test_record_fields(self, published, fitted_predictor):
        assert published.name == "gzip-cycles"
        assert published.version == 1
        assert published.metric == "cycles"
        assert published.programs == tuple(
            m.program for m in fitted_predictor.program_models
        )
        assert published.response_count == 24
        assert published.training_error == pytest.approx(
            fitted_predictor.training_error
        )
        assert published.schema == RECORD_SCHEMA
        assert published.notes == "test fixture"
        assert published.run["seed"] == 7
        assert published.run["run_id"]

    def test_layout_on_disk(self, registry, published):
        version_dir = registry.root / "gzip-cycles" / "v0001"
        assert (version_dir / "artifact.npz").is_file()
        assert (version_dir / "record.json").is_file()
        record = json.loads(
            (version_dir / "record.json").read_text(encoding="utf-8")
        )
        assert record["name"] == "gzip-cycles"
        assert record["schema"] == RECORD_SCHEMA

    def test_versions_increment(self, registry, fitted_predictor,
                                published):
        again = registry.publish(fitted_predictor, "gzip-cycles")
        assert again.version == 2
        assert registry.versions("gzip-cycles") == [1, 2]
        assert registry.latest("gzip-cycles") == 2

    def test_models_listing(self, registry, fitted_predictor, published):
        registry.publish(fitted_predictor, "another")
        assert registry.models() == ["another", "gzip-cycles"]

    def test_bad_name_rejected(self, registry, fitted_predictor):
        for name in ("", "Has Spaces", "UPPER", "../escape", ".dotfirst"):
            with pytest.raises(ValueError, match="name"):
                registry.publish(fitted_predictor, name)

    def test_unfitted_predictor_rejected(self, registry, cycles_pool):
        unfitted = ArchitectureCentricPredictor(cycles_pool.models())
        with pytest.raises(RuntimeError, match="fit"):
            registry.publish(unfitted, "unfitted")

    def test_no_staging_leftovers(self, registry, published):
        leftovers = [
            entry
            for entry in (registry.root / "gzip-cycles").iterdir()
            if entry.name.startswith(".staging")
        ]
        assert leftovers == []


class TestLoad:
    def test_round_trip_bit_identical(
        self, registry, fitted_predictor, published, holdout_configs
    ):
        loaded, record = registry.load("gzip-cycles")
        assert record.version == published.version
        batch = holdout_configs[:40]
        assert np.array_equal(
            loaded.predict_invariant(batch),
            fitted_predictor.predict_invariant(batch),
        )
        assert np.array_equal(
            loaded.predict(batch), fitted_predictor.predict(batch)
        )

    def test_load_specific_version(self, registry, fitted_predictor,
                                   published):
        registry.publish(fitted_predictor, "gzip-cycles")
        _, record = registry.load("gzip-cycles", version=1)
        assert record.version == 1

    def test_latest_by_default(self, registry, fitted_predictor, published):
        registry.publish(fitted_predictor, "gzip-cycles")
        _, record = registry.load("gzip-cycles")
        assert record.version == 2

    def test_unknown_model(self, registry):
        with pytest.raises(KeyError):
            registry.load("nonexistent")

    def test_unknown_version(self, registry, published):
        with pytest.raises(KeyError):
            registry.load("gzip-cycles", version=99)

    def test_training_error_survives(self, registry, fitted_predictor,
                                     published):
        loaded, _ = registry.load("gzip-cycles")
        assert loaded.training_error == fitted_predictor.training_error
        assert loaded.response_count_ == fitted_predictor.response_count_


class TestIntegrity:
    def test_corrupt_artifact_rejected(self, registry, published):
        artifact = registry.root / "gzip-cycles" / "v0001" / "artifact.npz"
        raw = bytearray(artifact.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        artifact.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="checksum"):
            registry.load("gzip-cycles")

    def test_truncated_artifact_rejected(self, registry, published):
        artifact = registry.root / "gzip-cycles" / "v0001" / "artifact.npz"
        artifact.write_bytes(artifact.read_bytes()[:-500])
        with pytest.raises(ValueError, match="checksum"):
            registry.load("gzip-cycles")

    def test_swapped_artifact_rejected(self, registry, fitted_predictor,
                                       published):
        """An internally valid but different artifact fails the record."""
        registry.publish(fitted_predictor, "gzip-cycles")
        v1 = registry.root / "gzip-cycles" / "v0001" / "artifact.npz"
        v2 = registry.root / "gzip-cycles" / "v0002" / "artifact.npz"
        # Make v1's bytes differ from v2's (archives embed timestamps,
        # but be explicit: re-publish only if identical).
        if v1.read_bytes() != v2.read_bytes():
            v1.write_bytes(v2.read_bytes())
            with pytest.raises(ValueError, match="checksum"):
                registry.load("gzip-cycles", version=1)

    def test_corrupt_record_rejected(self, registry, published):
        record_path = registry.root / "gzip-cycles" / "v0001" / "record.json"
        record_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="record"):
            registry.load("gzip-cycles")

    def test_future_record_schema_rejected(self, registry, published):
        record_path = registry.root / "gzip-cycles" / "v0001" / "record.json"
        payload = json.loads(record_path.read_text(encoding="utf-8"))
        payload["schema"] = RECORD_SCHEMA + 1
        record_path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            registry.load("gzip-cycles")

    def test_missing_artifact_rejected(self, registry, published):
        artifact = registry.root / "gzip-cycles" / "v0001" / "artifact.npz"
        artifact.unlink()
        with pytest.raises(ValueError, match="artifact"):
            registry.load("gzip-cycles")


class TestEmptyRegistry:
    def test_lists_nothing(self, registry):
        assert registry.models() == []
        assert registry.versions("anything") == []

    def test_latest_raises(self, registry):
        with pytest.raises(KeyError):
            registry.latest("anything")
