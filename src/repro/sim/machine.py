"""The full machine specification: varied + fixed parameters (Table 2).

A :class:`~repro.designspace.configuration.Configuration` covers the 13
varied parameters of Table 1.  Everything else about the simulated core —
latencies, associativities, line sizes, and the functional-unit counts
that Table 2(b) derives from the pipeline width — lives here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.designspace.configuration import Configuration


@dataclass(frozen=True)
class FixedParameters:
    """Table 2(a): core parameters held constant across the space.

    Latencies are in cycles; line sizes in bytes.
    """

    frontend_depth: int = 10
    int_alu_latency: int = 1
    int_mul_latency: int = 3
    fp_alu_latency: int = 2
    fp_mul_latency: int = 4
    l1_latency: int = 2
    l2_latency: int = 12
    memory_latency: int = 200
    l1_line_bytes: int = 32
    l2_line_bytes: int = 64
    l1_associativity: int = 2
    l2_associativity: int = 8
    mshr_entries: int = 8
    fetch_buffer_entries: int = 8
    architected_registers: int = 32
    branch_redirect_penalty: int = 2

    def as_rows(self) -> List[Tuple[str, str]]:
        """(name, value) rows for Table 2(a) rendering."""
        return [
            ("Front-end pipeline depth", f"{self.frontend_depth} stages"),
            ("Int ALU / Int multiply latency",
             f"{self.int_alu_latency} / {self.int_mul_latency} cycles"),
            ("FP ALU / FP multiply latency",
             f"{self.fp_alu_latency} / {self.fp_mul_latency} cycles"),
            ("L1 hit / L2 hit / memory latency",
             f"{self.l1_latency} / {self.l2_latency} / "
             f"{self.memory_latency} cycles"),
            ("L1 / L2 line size",
             f"{self.l1_line_bytes} / {self.l2_line_bytes} bytes"),
            ("L1 / L2 associativity",
             f"{self.l1_associativity} / {self.l2_associativity} way"),
            ("MSHR entries", str(self.mshr_entries)),
            ("Fetch buffer", f"{self.fetch_buffer_entries} entries"),
            ("Architected registers per file",
             str(self.architected_registers)),
        ]


def functional_units(width: int) -> Dict[str, int]:
    """Table 2(b): functional-unit counts scaled from the width.

    The paper's example: a four-way machine has four integer ALUs, two
    integer multipliers, two FP ALUs and one FP multiplier/divider.
    Data-cache ports scale as width/2.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    return {
        "int_alu": width,
        "int_mul": max(1, math.ceil(width / 2)),
        "fp_alu": max(1, math.ceil(width / 2)),
        "fp_mul": max(1, math.ceil(width / 4)),
        "dcache_ports": max(1, math.ceil(width / 2)),
    }


def width_scaling_rows() -> List[Tuple[str, str]]:
    """(unit, rule) rows for Table 2(b) rendering."""
    return [
        ("Integer ALUs", "width"),
        ("Integer multipliers", "ceil(width / 2)"),
        ("FP ALUs", "ceil(width / 2)"),
        ("FP multiplier/dividers", "ceil(width / 4)"),
        ("D-cache ports", "ceil(width / 2)"),
    ]


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: one configuration plus the fixed parameters."""

    configuration: Configuration
    fixed: FixedParameters = field(default_factory=FixedParameters)

    @property
    def units(self) -> Dict[str, int]:
        """Functional-unit counts for this machine's width."""
        return functional_units(self.configuration.width)

    @property
    def rename_registers(self) -> int:
        """Physical registers available for renaming (per file)."""
        return max(
            0, self.configuration.rf_size - self.fixed.architected_registers
        )

    def mispredict_penalty(self, resolve_cycles: float) -> float:
        """Cycles lost to one mispredicted branch.

        Front-end refill plus the time the wrong-path speculation lived
        (``resolve_cycles``) and the redirect bubble.
        """
        return (
            self.fixed.frontend_depth
            + self.fixed.branch_redirect_penalty
            + resolve_cycles
        )
