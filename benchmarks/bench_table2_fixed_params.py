"""Table 2: constant parameters and width-scaled functional units."""

from repro.designspace import render_table2
from repro.exploration import scale_banner
from repro.sim import FixedParameters, functional_units
from repro.sim.machine import width_scaling_rows


def test_table2_fixed_params(benchmark, record_artifact):
    fixed = FixedParameters()

    def regenerate() -> str:
        return render_table2(fixed.as_rows(), width_scaling_rows())

    table = benchmark(regenerate)
    banner = scale_banner("Table 2 — parameters not explicitly varied")
    record_artifact("table2_fixed_params", f"{banner}\n{table}")

    # The paper's example: a four-way machine has four integer ALUs, two
    # integer multipliers, two FP ALUs and one FP multiplier/divider.
    units = functional_units(4)
    assert (units["int_alu"], units["int_mul"], units["fp_alu"],
            units["fp_mul"]) == (4, 2, 2, 1)
